//! # ambipla — programmable logic circuits based on ambipolar CNFETs
//!
//! Facade crate for the reproduction of *Ben Jamaa, Atienza, Leblebici, De
//! Micheli, "Programmable Logic Circuits Based on Ambipolar CNFET", DAC
//! 2008*. It re-exports the workspace's subsystems under one roof:
//!
//! * [`device`] — ambipolar CNFET device model and programming matrix,
//! * [`logic`] — two-level logic: cubes, covers, ESPRESSO, `.pla` I/O,
//! * [`benchmarks`] — MCNC-style benchmark functions and workload generators,
//! * [`core`] — GNOR gates, GNOR-PLA / WPLA architecture, crossbar
//!   interconnect, area model (the paper's contribution),
//! * [`phase`] — output/product-term phase optimization and
//!   Doppio-Espresso WPLA synthesis,
//! * [`fpga`] — island-style FPGA model used for the Table 2 emulation,
//! * [`fault`] — defect injection, repair and yield analysis (with
//!   deterministic parallel Monte-Carlo),
//! * [`serve`] — the request-batching simulation service: lane-packing
//!   batchers sharded across threads, sharded result cache, worker-pool
//!   bulk sweeps,
//! * [`net`] — the multi-tenant TCP front end over [`serve`]:
//!   length-prefixed wire protocol, per-tenant token-bucket quotas,
//!   deficit-round-robin fair queueing,
//! * [`obs`] — the observability layer: structured-event ring buffer,
//!   [`Recorder`](obs::Recorder) sink trait, Prometheus-text and JSON
//!   metric exporters (per-registration serve metrics plug in via
//!   `serve::metric_families`).
//!
//! ## Quickstart
//!
//! ```
//! use ambipla::core::{GnorPla, Simulator, Technology};
//! use ambipla::logic::Cover;
//!
//! // A full adder: sum and carry from a, b, cin.
//! let f = Cover::parse(
//!     "110 01\n101 01\n011 01\n111 01\n\
//!      100 10\n010 10\n001 10\n111 10",
//!     3,
//!     2,
//! )
//! .unwrap();
//! let pla = GnorPla::from_cover(&f);
//! assert_eq!(pla.simulate_bits(0b011), vec![false, true]); // a+b = 10
//! let area = Technology::CnfetGnor.pla_area(pla.dimensions());
//! assert!(area > 0.0);
//! ```

pub use ambipla_core as core;
pub use ambipla_net as net;
pub use ambipla_obs as obs;
pub use ambipla_serve as serve;
pub use cnfet as device;
pub use fault;
pub use fpga;
pub use logic;
pub use mcnc as benchmarks;
pub use phaseopt as phase;
