//! Property test: the aggregate [`StatsSnapshot`] is *exactly* the fold
//! of the per-registration snapshots — no counter invented, none lost.
//!
//! Arbitrary op sequences (requests, rejections, epoch bumps, flushes
//! with arbitrary cause / lanes / latency / cache counts) are replayed
//! into [`RegStats`] registries while an independent tally tracks what
//! went in. [`StatsSnapshot::fold`] over the per-registration snapshots
//! must reproduce the tally to the last unit, and its derived fields
//! (occupancy, hit rate, latency quantiles) must agree with the merged
//! histogram.

use ambipla::serve::{FlushCause, HistogramSnapshot, RegStats, StatsSnapshot};
use proptest::prelude::*;

/// One recorded operation against a single registration.
#[derive(Debug, Clone)]
enum Op {
    Request,
    QueueFull,
    /// Bump the registration to its next epoch (a completed hot swap).
    Swap,
    Flush {
        cause: FlushCause,
        lanes: usize,
        words: usize,
        latency_ns: u64,
        cache_hits: usize,
        cache_misses: usize,
    },
}

fn arb_cause() -> impl Strategy<Value = FlushCause> {
    prop_oneof![
        Just(FlushCause::Full),
        Just(FlushCause::Deadline),
        Just(FlushCause::Swap),
        Just(FlushCause::Shutdown),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Request),
        1 => Just(Op::QueueFull),
        1 => Just(Op::Swap),
        3 => (
            arb_cause(),
            1..257usize,
            1..5usize,
            0..5_000_000u64,
            0..8usize,
            0..8usize,
        )
            .prop_map(|(cause, lanes, words, latency_ns, cache_hits, cache_misses)| {
                Op::Flush {
                    cause,
                    lanes,
                    words,
                    latency_ns,
                    cache_hits,
                    cache_misses,
                }
            }),
    ]
}

/// The independent tally: plain sums, no shared code with the fold.
#[derive(Default)]
struct Tally {
    requests: u64,
    queue_full: u64,
    swaps: u64,
    blocks: u64,
    by_cause: [u64; 4],
    lanes_filled: u64,
    lane_capacity: u64,
    cache_hits: u64,
    cache_misses: u64,
    latencies: Vec<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_registration_stats_fold_exactly_to_aggregate(
        regs in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..60),
            1..5,
        ),
    ) {
        let mut tally = Tally::default();
        let mut snapshots = Vec::new();
        for (slot, ops) in regs.iter().enumerate() {
            let reg = RegStats::new(slot as u32);
            for op in ops {
                match *op {
                    Op::Request => {
                        reg.record_request();
                        tally.requests += 1;
                    }
                    Op::QueueFull => {
                        reg.record_queue_full();
                        tally.queue_full += 1;
                    }
                    Op::Swap => {
                        reg.begin_epoch();
                        tally.swaps += 1;
                    }
                    Op::Flush { cause, lanes, words, latency_ns, cache_hits, cache_misses } => {
                        reg.current_epoch()
                            .record_flush(cause, lanes, words, latency_ns, cache_hits, cache_misses);
                        tally.blocks += 1;
                        tally.by_cause[match cause {
                            FlushCause::Full => 0,
                            FlushCause::Deadline => 1,
                            FlushCause::Swap => 2,
                            FlushCause::Shutdown => 3,
                        }] += 1;
                        tally.lanes_filled += lanes as u64;
                        tally.lane_capacity += words as u64 * 64;
                        tally.cache_hits += cache_hits as u64;
                        tally.cache_misses += cache_misses as u64;
                        tally.latencies.push(latency_ns);
                    }
                }
            }
            snapshots.push(reg.snapshot(0));
        }

        let agg = StatsSnapshot::fold(&snapshots, 7);

        // Every counter in the aggregate is the tally, to the last unit.
        prop_assert_eq!(agg.requests, tally.requests);
        prop_assert_eq!(agg.queue_full, tally.queue_full);
        prop_assert_eq!(agg.swaps, tally.swaps);
        prop_assert_eq!(agg.blocks, tally.blocks);
        prop_assert_eq!(agg.full_flushes, tally.by_cause[0]);
        prop_assert_eq!(agg.deadline_flushes, tally.by_cause[1]);
        prop_assert_eq!(agg.swap_flushes, tally.by_cause[2]);
        prop_assert_eq!(agg.shutdown_flushes, tally.by_cause[3]);
        prop_assert_eq!(agg.lanes_filled, tally.lanes_filled);
        prop_assert_eq!(agg.lane_capacity, tally.lane_capacity);
        prop_assert_eq!(agg.cache_hits, tally.cache_hits);
        prop_assert_eq!(agg.cache_misses, tally.cache_misses);
        prop_assert_eq!(agg.cache_evictions, 7, "evictions pass through the fold");

        // Derived fields agree with plain recomputation.
        if tally.lane_capacity > 0 {
            let occ = tally.lanes_filled as f64 / tally.lane_capacity as f64;
            prop_assert!((agg.lane_occupancy - occ).abs() < 1e-12);
        } else {
            prop_assert_eq!(agg.lane_occupancy, 0.0);
        }
        let lookups = tally.cache_hits + tally.cache_misses;
        if lookups > 0 {
            let rate = tally.cache_hits as f64 / lookups as f64;
            prop_assert!((agg.cache_hit_rate - rate).abs() < 1e-12);
        } else {
            prop_assert_eq!(agg.cache_hit_rate, 0.0);
        }

        // The merged latency histogram saw exactly the recorded flushes,
        // and the quantiles bracket the true values at bucket precision:
        // the reported log2-bucket upper bound is >= the exact quantile
        // and within one bucket (2x) of it.
        let mut merged = HistogramSnapshot::default();
        for snap in &snapshots {
            for e in &snap.epochs {
                merged.merge(&e.latency);
            }
        }
        prop_assert_eq!(merged.count(), tally.latencies.len() as u64);
        prop_assert_eq!(merged.sum_ns, tally.latencies.iter().sum::<u64>());
        if !tally.latencies.is_empty() {
            let mut sorted = tally.latencies.clone();
            sorted.sort_unstable();
            for (q, reported) in [(0.50, agg.p50_flush_ns), (0.99, agg.p99_flush_ns)] {
                let rank = ((sorted.len() as f64 * q).ceil() as usize)
                    .clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                prop_assert!(
                    reported >= exact,
                    "q{q}: bucket bound {reported} below exact {exact}"
                );
                prop_assert!(
                    reported <= exact.next_power_of_two().max(1) * 2,
                    "q{q}: bucket bound {reported} more than one bucket above exact {exact}"
                );
            }
        }
    }
}
