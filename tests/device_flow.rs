//! Integration: device-level models driving architecture-level outcomes —
//! variability feeding yield, activity feeding energy, retention feeding
//! refresh scheduling.

use ambipla::core::{analyze_activity, pla_energy_exact, GnorPla, Simulator};
use ambipla::device::{DeviceParams, EnergyModel, PgLevel, VariabilityModel};
use ambipla::fault::yield_curve_biased;
use ambipla::logic::Cover;

/// The variability model's metallic fraction, used as the stuck-on defect
/// rate, produces the yield ordering the device statistics predict.
#[test]
fn metallic_fraction_drives_yield() {
    let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
    // Stuck-on-only processes at two metallic fractions (bias 0 = shorts).
    let clean = yield_curve_biased(&f, 2, &[0.01], 120, 3, 0.0);
    let dirty = yield_curve_biased(&f, 2, &[0.10], 120, 3, 0.0);
    assert!(
        clean[0].repaired_yield >= dirty[0].repaired_yield,
        "1% metallic must beat 10%: {} vs {}",
        clean[0].repaired_yield,
        dirty[0].repaired_yield
    );
    // The device model agrees on which process is worse.
    let a = VariabilityModel::nominal().with_metallic_fraction(0.01);
    let b = VariabilityModel::nominal().with_metallic_fraction(0.10);
    assert!(a.expected_stuck_on_rate() < b.expected_stuck_on_rate());
}

/// Exact activity-based energy is bounded by the worst-case estimate and
/// above the zero-activity floor, for every registry benchmark that fits.
#[test]
fn exact_energy_bounded_across_registry() {
    let model = EnergyModel::nominal();
    for b in ambipla::benchmarks::registry() {
        if b.on.n_inputs() > 16 {
            continue;
        }
        let pla = GnorPla::from_cover(&b.on);
        let d = pla.dimensions();
        let exact = pla_energy_exact(&pla, &b.on, &model);
        let worst = model.pla_cycle_energy(d.inputs, d.outputs, d.products, 1.0, 1.0);
        assert!(exact > 0.0, "{}", b.name);
        assert!(exact <= worst + 1e-30, "{}", b.name);
    }
}

/// Product-line activities are high for literal-heavy covers (dynamic NOR
/// lines usually discharge), matching the energy model's assumptions.
#[test]
fn activity_reflects_literal_density() {
    let dense = Cover::parse("1111 1\n0000 1", 4, 1).unwrap();
    let sparse = Cover::parse("1--- 1\n-0-- 1", 4, 1).unwrap();
    let a_dense = analyze_activity(&dense).mean_product_activity();
    let a_sparse = analyze_activity(&sparse).mean_product_activity();
    assert!(a_dense > a_sparse);
    assert!(a_dense > 0.9, "4-literal rows discharge 15/16 of the time");
}

/// Retention scheduling: the refresh period that keeps one node alive also
/// keeps a whole programmed PLA alive, and the deadline scales linearly
/// with tau.
#[test]
fn refresh_scheduling_scales_with_tau() {
    use ambipla::device::ChargeNode;
    let short = ChargeNode::new(1e-4);
    let long = ChargeNode::new(1e-2);
    assert!((long.retention_deadline() / short.retention_deadline() - 100.0).abs() < 1e-6);

    let f = Cover::parse("10- 10\n-01 01", 3, 2).unwrap();
    let pla = GnorPla::from_cover(&f);
    for tau in [1e-4, 1e-3] {
        let (mut m1, mut m2) = pla.program(tau);
        let node = ChargeNode::new(tau);
        let period = node.retention_deadline() * 0.8;
        for _ in 0..5 {
            m1.advance(period);
            m2.advance(period);
            m1.refresh_all();
            m2.refresh_all();
        }
        let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
        assert!(back.implements(&f), "tau={tau}: refresh schedule failed");
    }
}

/// The paper's off-state guarantee at the device level propagates to the
/// array level: a PG at V0 never conducts, so an unprogrammed plane never
/// asserts an output.
#[test]
fn v0_guarantee_propagates_to_arrays() {
    let params = DeviceParams::nominal();
    // Device level: V0 current is within a decade of the floor leakage.
    for v_cg in [0.0, 0.5, 1.0] {
        assert!(params.current(PgLevel::VZero.voltage(), v_cg) < 10.0 * params.i_off);
    }
    // Array level: fresh matrices decode to a PLA with constant-0 outputs.
    let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
    let pla = GnorPla::from_cover(&f);
    let (mut m1, mut m2) = pla.program(1e-9);
    m1.advance(1.0);
    m2.advance(1.0); // everything decays to V0
    let dead = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    for bits in 0..4u64 {
        assert_eq!(dead.simulate_bits(bits), vec![false]);
    }
}
