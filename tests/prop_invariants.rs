//! Property-based invariants over the whole stack (proptest).
//!
//! Strategy: generate random multi-output covers (bounded arity so
//! equivalence checks stay exhaustive) and assert the contracts every
//! transformation promises.

use ambipla::core::{analyze_activity, ClassicalPla, Crossbar, GnorPla, Simulator, Wpla};
use ambipla::fault::{repair, DefectMap, FaultyGnorPla, RepairOutcome};
use ambipla::logic::ops::{disjoint_cover, intersect, minterm_count, sharp};
use ambipla::logic::{
    bdd_equivalent, espresso, eval::check_implements, exact_minimize, Cover, Cube, Tri,
};
use proptest::prelude::*;

/// A random cube over `n` inputs and `o` outputs.
fn arb_cube(n: usize, o: usize) -> impl Strategy<Value = Cube> {
    (
        proptest::collection::vec(0..3u8, n),
        proptest::collection::vec(any::<bool>(), o),
        0..o,
    )
        .prop_map(move |(tris, mut outs, force)| {
            outs[force] = true; // at least one output
            let tris: Vec<Tri> = tris
                .iter()
                .map(|&t| match t {
                    0 => Tri::Zero,
                    1 => Tri::One,
                    _ => Tri::DontCare,
                })
                .collect();
            Cube::from_tris(&tris, &outs)
        })
}

/// A random cover with 1..=max_cubes cubes.
fn arb_cover(n: usize, o: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(n, o), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, o, cubes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ESPRESSO output implements exactly the same function (no DC set).
    #[test]
    fn espresso_preserves_function(f in arb_cover(5, 2, 10)) {
        let (min, stats) = espresso(&f);
        prop_assert!(stats.final_cubes <= stats.initial_cubes.max(1));
        prop_assert_eq!(check_implements(&f, &Cover::new(5, 2), &min), None);
        for bits in 0..32u64 {
            prop_assert_eq!(min.eval_bits(bits), f.eval_bits(bits));
        }
    }

    /// URP complement is the pointwise negation, and double complement is
    /// the identity (as a function).
    #[test]
    fn complement_is_involutive(f in arb_cover(6, 1, 8)) {
        let slice = f.output_slice(0);
        let comp = slice.complement();
        let back = comp.complement();
        for bits in 0..64u64 {
            prop_assert_eq!(comp.eval_bits(bits)[0], !slice.eval_bits(bits)[0]);
            prop_assert_eq!(back.eval_bits(bits)[0], slice.eval_bits(bits)[0]);
        }
    }

    /// Tautology check agrees with exhaustive evaluation.
    #[test]
    fn tautology_agrees_with_eval(f in arb_cover(5, 1, 8)) {
        let slice = f.output_slice(0);
        let taut = slice.is_tautology();
        let exhaustive = (0..32u64).all(|b| slice.eval_bits(b)[0]);
        prop_assert_eq!(taut, exhaustive);
    }

    /// The GNOR PLA and the classical PLA implement every cover
    /// identically (the architectural equivalence behind Table 1).
    #[test]
    fn gnor_equals_classical(f in arb_cover(5, 2, 8)) {
        let gnor = GnorPla::from_cover(&f);
        let classical = ClassicalPla::from_cover(&f);
        for bits in 0..32u64 {
            prop_assert_eq!(gnor.simulate_bits(bits), f.eval_bits(bits));
            prop_assert_eq!(classical.simulate_bits(bits), f.eval_bits(bits));
        }
    }

    /// Charge programming is a lossless round trip.
    #[test]
    fn programming_roundtrip(f in arb_cover(4, 2, 6)) {
        let pla = GnorPla::from_cover(&f);
        let (m1, m2) = pla.program(1.0);
        let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
        prop_assert_eq!(back, pla);
    }

    /// The buffered WPLA reference construction is always equivalent to
    /// the two-level PLA.
    #[test]
    fn wpla_buffered_equals_two_level(f in arb_cover(4, 2, 6)) {
        let two = GnorPla::from_cover(&f);
        let four = Wpla::buffered_from_cover(&f);
        for bits in 0..16u64 {
            prop_assert_eq!(four.simulate_bits(bits), two.simulate_bits(bits));
        }
    }

    /// Crossbar routing: a programmed permutation routes every signal to
    /// exactly its target, regardless of the driven values.
    #[test]
    fn crossbar_permutation_routes(
        perm in proptest::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6),
        values in proptest::collection::vec(any::<bool>(), 6),
    ) {
        // `perm` is 0..6 in order — build an actual permutation by rotating.
        let n = 6;
        let mut xbar = Crossbar::new(n, n);
        for (h, &v) in perm.iter().enumerate() {
            let _ = v;
            xbar.connect(h, (h + 2) % n);
        }
        let routed = xbar.route(&values).expect("permutation has no shorts");
        for h in 0..n {
            prop_assert_eq!(routed[(h + 2) % n], Some(values[h]));
        }
    }

    /// Fault repair, when it succeeds, always yields a verified array.
    #[test]
    fn repair_success_implies_verified(seed in 0u64..500) {
        let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
        let defects = DefectMap::sample(4, 2, 1, 0.08, 0.7, seed);
        if let RepairOutcome::Repaired { pla, .. } = repair(&f, &defects) {
            let faulty = FaultyGnorPla::new(pla, defects);
            prop_assert!(faulty.implements(&f));
        }
    }

    /// SCC minimality never changes the function.
    #[test]
    fn scc_preserves_function(f in arb_cover(5, 2, 10)) {
        let mut g = f.clone();
        g.make_scc_minimal();
        prop_assert!(g.len() <= f.len());
        for bits in 0..32u64 {
            prop_assert_eq!(g.eval_bits(bits), f.eval_bits(bits));
        }
    }

    /// BDD equivalence agrees with exhaustive evaluation on random covers.
    #[test]
    fn bdd_agrees_with_exhaustive(f in arb_cover(5, 2, 8), g in arb_cover(5, 2, 8)) {
        let exhaustive = (0..32u64).all(|b| f.eval_bits(b) == g.eval_bits(b));
        prop_assert_eq!(bdd_equivalent(&f, &g), exhaustive);
        prop_assert!(bdd_equivalent(&f, &f));
    }

    /// BDD proves every espresso run (independent of the eval checker).
    #[test]
    fn bdd_proves_espresso(f in arb_cover(6, 2, 10)) {
        let (min, _) = espresso(&f);
        prop_assert!(bdd_equivalent(&f, &min));
    }

    /// Sharp, intersect and disjoint covers behave pointwise.
    #[test]
    fn cover_algebra_pointwise(a in arb_cover(5, 1, 6), b in arb_cover(5, 1, 6)) {
        let meet = intersect(&a, &b);
        let diff = sharp(&a, &b);
        let disj = disjoint_cover(&a);
        for bits in 0..32u64 {
            let (va, vb) = (a.eval_bits(bits)[0], b.eval_bits(bits)[0]);
            prop_assert_eq!(meet.eval_bits(bits)[0], va && vb);
            prop_assert_eq!(diff.eval_bits(bits)[0], va && !vb);
            prop_assert_eq!(disj.eval_bits(bits)[0], va);
        }
        // Disjointness of the disjoint cover.
        for (i, x) in disj.iter().enumerate() {
            for y in disj.cubes().iter().skip(i + 1) {
                prop_assert!(!x.intersects(y));
            }
        }
        // Minterm counting agrees with exhaustive counting.
        let count = (0..32u64).filter(|&m| a.eval_bits(m)[0]).count() as u64;
        prop_assert_eq!(minterm_count(&a), count);
    }

    /// Exact minimization is equivalent and never beaten by espresso.
    #[test]
    fn exact_is_sound_and_minimal(f in arb_cover(4, 2, 6)) {
        let dc = Cover::new(4, 2);
        let exact = exact_minimize(&f, &dc);
        prop_assert_eq!(check_implements(&f, &dc, &exact), None);
        let (heur, _) = espresso(&f);
        prop_assert!(exact.len() <= heur.len());
    }

    /// Activity analysis matches exhaustive switching counts.
    #[test]
    fn activity_matches_exhaustive(f in arb_cover(5, 2, 6)) {
        let act = analyze_activity(&f);
        let space = 32.0;
        for (r, c) in f.iter().enumerate() {
            let hits = (0..32u64).filter(|&m| c.covers_bits(m)).count() as f64;
            prop_assert!((act.product_activity[r] - (1.0 - hits / space)).abs() < 1e-9);
        }
        for j in 0..2 {
            let hits = (0..32u64).filter(|&m| f.eval_bits(m)[j]).count() as f64;
            prop_assert!((act.output_activity[j] - hits / space).abs() < 1e-9);
        }
    }

    /// Cover cofactor evaluated inside the cofactor space agrees with the
    /// original cover (Shannon expansion sanity).
    #[test]
    fn cofactor_agrees_on_subspace(f in arb_cover(5, 1, 8), var in 0usize..5, phase in any::<bool>()) {
        let mut p = Cube::universe(5, 1);
        p.set_input(var, if phase { Tri::One } else { Tri::Zero });
        let cf = f.cofactor(&p);
        for bits in 0..32u64 {
            let in_subspace = (bits >> var & 1 == 1) == phase;
            if in_subspace {
                prop_assert_eq!(cf.eval_bits(bits)[0], f.eval_bits(bits)[0]);
            }
        }
    }
}
