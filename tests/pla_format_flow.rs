//! Integration: `.pla` exchange format → minimizer → architecture. Real
//! MCNC files follow exactly this path.

use ambipla::core::{GnorPla, Simulator};
use ambipla::logic::{check_equivalent, espresso_with_dc, parse_pla, write_pla, Pla};

const SAMPLE: &str = "\
# a hand-written multi-output PLA in espresso format
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
.p 5
1--0 10
-11- 11
0--1 01
11-- 1-
0000 01
.e
";

#[test]
fn parse_minimize_map_verify() {
    let pla = parse_pla(SAMPLE).expect("sample parses");
    assert_eq!(pla.n_inputs(), 4);
    assert_eq!(pla.n_outputs(), 2);
    assert_eq!(pla.on.len(), 5);
    assert_eq!(pla.dc.len(), 1, "the 1- output row contributes a DC cube");

    let (min, stats) = espresso_with_dc(&pla.on, &pla.dc);
    assert!(stats.final_cubes <= stats.initial_cubes);
    // Minimization must stay inside [ON, ON ∪ DC].
    assert_eq!(
        ambipla::logic::eval::check_implements(&pla.on, &pla.dc, &min),
        None
    );

    let mapped = GnorPla::from_cover(&min);
    // The PLA realizes the minimized cover exactly.
    for bits in 0..16u64 {
        assert_eq!(mapped.simulate_bits(bits), min.eval_bits(bits));
    }
}

#[test]
fn roundtrip_through_writer_preserves_function() {
    let pla = parse_pla(SAMPLE).expect("sample parses");
    let text = write_pla(&pla);
    let back = parse_pla(&text).expect("writer output parses");
    assert!(check_equivalent(&pla.on, &back.on).is_equivalent());
    assert!(check_equivalent(&pla.dc, &back.dc).is_equivalent());
    assert_eq!(back.input_labels, pla.input_labels);
    assert_eq!(back.output_labels, pla.output_labels);
}

#[test]
fn generated_benchmarks_roundtrip_as_pla_files() {
    for b in ambipla::benchmarks::table1_benchmarks() {
        let pla = Pla::from_cover(b.on.clone());
        let text = write_pla(&pla);
        let back = parse_pla(&text).expect("generated file parses");
        assert_eq!(back.on.len(), b.on.len(), "{}", b.name);
        assert_eq!(back.on.n_inputs(), b.on.n_inputs());
        // Spot-check function preservation on sampled points.
        for bits in [0u64, 1, 0b1010, 0b110011, (1 << b.on.n_inputs()) - 1] {
            let bits = bits & ((1 << b.on.n_inputs()) - 1);
            assert_eq!(back.on.eval_bits(bits), b.on.eval_bits(bits), "{}", b.name);
        }
    }
}

#[test]
fn fr_type_off_set_is_respected() {
    let text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n";
    let pla = parse_pla(text).expect("fr file parses");
    assert_eq!(pla.on.len(), 1);
    assert_eq!(pla.off.len(), 1);
    // The OFF cube pins 00 to 0; minimization with the implied DC set
    // ({01, 10}) may expand but must keep 11 on and 00 off.
    let dc = pla.off.complement(); // everything not OFF…
    let _ = dc; // (full DC computation is the caller's concern; parse only)
    assert!(pla.on.eval_bits(0b11)[0]);
    assert!(!pla.on.eval_bits(0b00)[0]);
}
