//! Integration: defect injection → repair → fault-simulation verification
//! across many seeds, plus the yield-monotonicity claims.

use ambipla::benchmarks::RandomPla;
use ambipla::core::sim::equivalent_to_cover;
use ambipla::core::{GnorPla, Simulator};
use ambipla::fault::{
    repair, repair_with_columns, yield_curve, yield_curve_biased, ColumnRepairOutcome, DefectMap,
    FaultyGnorPla, RepairOutcome,
};
use ambipla::logic::Cover;

/// Whenever repair reports success, the repaired array must verify by
/// fault simulation — across functions, rates and seeds.
#[test]
fn successful_repairs_always_verify() {
    let mut successes = 0;
    for seed in 0..30u64 {
        let f = RandomPla::new(5, 2, 10)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let defects = DefectMap::sample(f.len() + 3, 5, 2, 0.04, 0.7, seed * 31 + 1);
        if let RepairOutcome::Repaired {
            pla, assignment, ..
        } = repair(&f, &defects)
        {
            successes += 1;
            // Assignment is a valid injection into physical rows.
            let mut seen = vec![false; defects.rows()];
            for &r in &assignment {
                assert!(!seen[r], "seed {seed}: row {r} double-assigned");
                seen[r] = true;
            }
            let faulty = FaultyGnorPla::new(pla, defects);
            assert!(faulty.implements(&f), "seed {seed}: repair verified false");
        }
    }
    assert!(successes > 10, "repair should succeed often at 4% defects");
}

/// A clean array needs no repair and an intact mapping simulates exactly
/// like the ideal PLA.
#[test]
fn clean_fault_simulation_is_transparent() {
    for seed in 0..5u64 {
        let f = RandomPla::new(6, 2, 12).seed(seed).build();
        let pla = GnorPla::from_cover(&f);
        let d = pla.dimensions();
        let faulty = FaultyGnorPla::new(
            pla.clone(),
            DefectMap::clean(d.products, d.inputs, d.outputs),
        );
        for bits in 0..64u64 {
            assert_eq!(faulty.simulate_bits(bits), pla.simulate_bits(bits));
        }
    }
}

/// In an open-dominated process (all defects stuck-off) more spares never
/// reduce yield: extra rows only add re-assignment freedom. (With stuck-on
/// shorts the trade-off is real — spare rows enlarge the output plane — so
/// monotonicity is only promised for opens.)
#[test]
fn yield_is_monotone_in_spares_for_open_defects() {
    let f = Cover::parse(
        "110 01\n101 01\n011 01\n111 11\n100 10\n010 10\n001 10",
        3,
        2,
    )
    .unwrap();
    let rates = [0.02, 0.05];
    let y2 = yield_curve_biased(&f, 2, &rates, 60, 5, 1.0);
    let y6 = yield_curve_biased(&f, 6, &rates, 60, 5, 1.0);
    for (a, b) in y2.iter().zip(&y6) {
        assert!(
            b.repaired_yield >= a.repaired_yield - 0.05,
            "rate {}: yield dropped with more spares ({} -> {})",
            a.defect_rate,
            a.repaired_yield,
            b.repaired_yield
        );
    }
}

/// Column repair round-trips on the chaos harness's configurations (the
/// full-adder spec under sampled defect maps, the same shapes
/// `tests/chaos_flow.rs` hot-swaps into its service): whenever 2D repair
/// succeeds, the repaired array *fault-simulated under the very defects
/// it was repaired around* — the `RepairedView` the chaos mutator serves
/// — must reproduce the original truth table exactly.
#[test]
fn column_repair_round_trips_on_chaos_configs() {
    let spec = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let mut repaired_count = 0;
    for seed in 0..40u64 {
        // Two spare rows, two spare columns, the chaos rates.
        let defects = DefectMap::sample(
            spec.len() + 2,
            spec.n_inputs() + 2,
            2,
            0.05,
            0.8,
            0xc0de ^ seed,
        );
        if let ColumnRepairOutcome::Repaired(r) = repair_with_columns(&spec, &defects) {
            repaired_count += 1;
            let view = r.faulty_view(&defects);
            assert_eq!(view.n_inputs(), spec.n_inputs(), "logical arity survives");
            assert!(
                equivalent_to_cover(&view, &spec, spec.n_inputs()),
                "seed {seed}: re-injecting the repaired-around defects must \
                 yield the original truth table"
            );
        }
    }
    assert!(
        repaired_count > 20,
        "5% defects with 2+2 spares should usually repair ({repaired_count}/40)"
    );
}

/// `FaultyGnorPla::with_defects` re-injection round-trips: clearing the
/// defects restores the ideal truth table, re-injecting the original map
/// restores the faulty one — all three views sharing one physical array.
#[test]
fn defect_reinjection_round_trips_on_a_shared_array() {
    let f = RandomPla::new(5, 2, 10)
        .seed(11)
        .literal_density(0.5)
        .build();
    let pla = GnorPla::from_cover(&f);
    let d = pla.dimensions();
    for seed in 0..10u64 {
        let defects = DefectMap::sample(d.products, d.inputs, d.outputs, 0.08, 0.7, seed);
        let faulty = FaultyGnorPla::new(pla.clone(), defects.clone());
        let cleaned = faulty.with_defects(DefectMap::clean(d.products, d.inputs, d.outputs));
        let reinjected = cleaned.with_defects(defects);
        for bits in 0..32u64 {
            assert_eq!(
                cleaned.simulate_bits(bits),
                pla.simulate_bits(bits),
                "seed {seed}: clearing defects restores the ideal array"
            );
            assert_eq!(
                reinjected.simulate_bits(bits),
                faulty.simulate_bits(bits),
                "seed {seed}: re-injection restores the faulty behavior"
            );
        }
    }
}

/// Repaired yield dominates raw yield at every rate (the paper's §5
/// fault-tolerance claim, end to end).
#[test]
fn repair_dominates_raw_yield() {
    let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
    for pt in yield_curve(&f, 3, &[0.01, 0.05, 0.15], 80, 17) {
        assert!(
            pt.repaired_yield >= pt.raw_yield,
            "rate {}: repair hurt yield",
            pt.defect_rate
        );
    }
}
