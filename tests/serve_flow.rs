//! Property contracts of the `ambipla_serve` request-batching service.
//!
//! For random covers and arbitrary interleavings of requests — mixed
//! across covers, mixed between per-request tickets and shared reply
//! channels, with block boundaries and deadline flushes landing wherever
//! they land — every reply must equal the direct scalar
//! `GnorPla::simulate_bits` answer for that request. Batching, packing,
//! caching and flush timing are pure throughput mechanics; they must
//! never be observable in the results.

use ambipla::core::GnorPla;
use ambipla::logic::{Cover, Cube, Tri};
use ambipla::serve::{reply_channel, ServeConfig, SimService};
use proptest::prelude::*;
use std::time::Duration;

/// A random cube over `n` inputs and `o` outputs.
fn arb_cube(n: usize, o: usize) -> impl Strategy<Value = Cube> {
    (
        proptest::collection::vec(0..3u8, n),
        proptest::collection::vec(any::<bool>(), o),
        0..o,
    )
        .prop_map(move |(tris, mut outs, force)| {
            outs[force] = true; // at least one output
            let tris: Vec<Tri> = tris
                .iter()
                .map(|&t| match t {
                    0 => Tri::Zero,
                    1 => Tri::One,
                    _ => Tri::DontCare,
                })
                .collect();
            Cube::from_tris(&tris, &outs)
        })
}

/// A random cover with 1..=max_cubes cubes.
fn arb_cover(n: usize, o: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(n, o), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, o, cubes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_service_matches_scalar_simulate_bits(
        covers in (arb_cover(4, 2, 6), arb_cover(6, 3, 10), arb_cover(3, 1, 4)),
        schedule in proptest::collection::vec(
            (0..3usize, any::<u64>(), any::<bool>()),
            1..300,
        ),
    ) {
        let covers = [covers.0, covers.1, covers.2];
        let plas: Vec<GnorPla> = covers.iter().map(GnorPla::from_cover).collect();
        // A short deadline so runs exercise deadline flushes alongside
        // full-block flushes (schedules longer than 64 per cover), and a
        // tiny cache so eviction happens under load too.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            cache_capacity: 8,
            cache_shards: 2,
        });
        let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();

        // Interleave the two submission styles in schedule order: shared
        // reply channel (tagged with the schedule index) and per-request
        // tickets.
        let (sink, stream) = reply_channel();
        let mut tagged = 0usize;
        let mut tickets = Vec::new();
        for (i, &(cover, bits, use_ticket)) in schedule.iter().enumerate() {
            if use_ticket {
                tickets.push((i, service.submit(ids[cover], bits)));
            } else {
                service.submit_tagged(ids[cover], bits, i as u64, &sink);
                tagged += 1;
            }
        }

        let expected = |i: usize| {
            let (cover, bits, _) = schedule[i];
            plas[cover].simulate_bits(bits)
        };
        for _ in 0..tagged {
            let reply = stream.recv();
            prop_assert_eq!(&reply.outputs, &expected(reply.tag as usize));
        }
        for (i, ticket) in tickets {
            prop_assert_eq!(&ticket.wait(), &expected(i));
        }

        let snap = service.shutdown();
        prop_assert_eq!(snap.requests, schedule.len() as u64);
        prop_assert_eq!(snap.lanes_filled, schedule.len() as u64);
        prop_assert_eq!(
            snap.cache_hits + snap.cache_misses,
            snap.blocks,
            "every flushed block consults the cache exactly once"
        );
    }
}

/// The service's per-cover queues must not leak results across covers
/// even when the same bit patterns are in flight for all of them.
#[test]
fn identical_bits_to_different_covers_stay_separate() {
    let service = SimService::with_defaults();
    let covers: Vec<Cover> = ambipla::benchmarks::classics()
        .into_iter()
        .map(|b| b.on)
        .collect();
    let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();
    let tickets: Vec<_> = (0..3 * covers.len())
        .map(|i| {
            let c = i % covers.len();
            (
                c,
                (i / covers.len()) as u64,
                service.submit(ids[c], (i / covers.len()) as u64),
            )
        })
        .collect();
    for (c, bits, ticket) in tickets {
        assert_eq!(
            ticket.wait(),
            covers[c].eval_bits(bits),
            "cover {c} bits {bits}"
        );
    }
}
