//! Property contracts of the `ambipla_serve` request-batching service.
//!
//! For random covers and arbitrary interleavings of requests — mixed
//! across covers, mixed between per-request tickets and shared reply
//! channels, with block boundaries and deadline flushes landing wherever
//! they land — every reply must equal the direct scalar
//! `GnorPla::simulate_bits` answer for that request. Batching, packing,
//! caching and flush timing are pure throughput mechanics; they must
//! never be observable in the results.

use ambipla::core::{GnorPla, Simulator};
use ambipla::fault::{DefectKind, DefectMap, FaultyGnorPla};
use ambipla::logic::{Cover, Cube, Tri};
use ambipla::serve::{reply_channel, ServeConfig, SimKey, SimService, Tier, TierPolicy};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A random cube over `n` inputs and `o` outputs.
fn arb_cube(n: usize, o: usize) -> impl Strategy<Value = Cube> {
    (
        proptest::collection::vec(0..3u8, n),
        proptest::collection::vec(any::<bool>(), o),
        0..o,
    )
        .prop_map(move |(tris, mut outs, force)| {
            outs[force] = true; // at least one output
            let tris: Vec<Tri> = tris
                .iter()
                .map(|&t| match t {
                    0 => Tri::Zero,
                    1 => Tri::One,
                    _ => Tri::DontCare,
                })
                .collect();
            Cube::from_tris(&tris, &outs)
        })
}

/// A random cover with 1..=max_cubes cubes.
fn arb_cover(n: usize, o: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(n, o), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, o, cubes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_service_matches_scalar_simulate_bits(
        covers in (arb_cover(4, 2, 6), arb_cover(6, 3, 10), arb_cover(3, 1, 4)),
        schedule in proptest::collection::vec(
            (0..3usize, any::<u64>(), any::<bool>()),
            1..300,
        ),
        block_words in 1..4usize,
    ) {
        let covers = [covers.0, covers.1, covers.2];
        let plas: Vec<GnorPla> = covers.iter().map(GnorPla::from_cover).collect();
        // A short deadline so runs exercise deadline flushes alongside
        // full-block flushes (schedules longer than 64 per cover), and a
        // tiny cache so eviction happens under load too. block_words > 1
        // additionally exercises multi-word packing, the per-sub-block
        // cache keys and multi-word tail masking.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            cache_capacity: 8,
            cache_shards: 2,
            block_words,
            ..ServeConfig::default()
        })
    .expect("valid config");
        let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();

        // Interleave the two submission styles in schedule order: shared
        // reply channel (tagged with the schedule index) and per-request
        // tickets.
        let (sink, stream) = reply_channel();
        let mut tagged = 0usize;
        let mut tickets = Vec::new();
        for (i, &(cover, bits, use_ticket)) in schedule.iter().enumerate() {
            if use_ticket {
                tickets.push((i, service.submit(ids[cover], bits)));
            } else {
                service.submit_tagged(ids[cover], bits, i as u64, &sink);
                tagged += 1;
            }
        }

        let expected = |i: usize| {
            let (cover, bits, _) = schedule[i];
            plas[cover].simulate_bits(bits)
        };
        for _ in 0..tagged {
            let reply = stream.recv();
            prop_assert_eq!(&reply.outputs, &expected(reply.tag as usize));
        }
        for (i, ticket) in tickets {
            prop_assert_eq!(&ticket.wait(), &expected(i));
        }

        let snap = service.shutdown();
        prop_assert_eq!(snap.requests, schedule.len() as u64);
        prop_assert_eq!(snap.lanes_filled, schedule.len() as u64);
        // Every flushed block consults the cache once per 64-lane
        // sub-block: at least once, at most block_words times.
        prop_assert!(snap.cache_hits + snap.cache_misses >= snap.blocks);
        prop_assert!(
            snap.cache_hits + snap.cache_misses <= snap.blocks * block_words as u64
        );
    }

    /// Mixed tiers on one service: with a forced policy bounded at 4
    /// inputs, the 4- and 3-input registrations serve from materialized
    /// truth tables while the 6-input one stays on the batched path —
    /// and under an arbitrary interleaving of requests across all three
    /// (tickets and tagged replies mixed, flush boundaries wherever they
    /// land), every reply must still equal the scalar answer. The tier
    /// is throughput mechanics; it must never be observable in the
    /// results.
    #[test]
    fn tiered_and_batched_registrations_interleave_transparently(
        covers in (arb_cover(4, 2, 6), arb_cover(6, 3, 10), arb_cover(3, 1, 4)),
        schedule in proptest::collection::vec(
            (0..3usize, any::<u64>(), any::<bool>()),
            1..300,
        ),
    ) {
        let covers = [covers.0, covers.1, covers.2];
        let plas: Vec<GnorPla> = covers.iter().map(GnorPla::from_cover).collect();
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_micros(200),
            tier_policy: TierPolicy::Forced,
            tier_max_inputs: 4,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();

        let (sink, stream) = reply_channel();
        let mut tagged = 0usize;
        let mut tickets = Vec::new();
        for (i, &(cover, bits, use_ticket)) in schedule.iter().enumerate() {
            if use_ticket {
                tickets.push((i, service.submit(ids[cover], bits)));
            } else {
                service.submit_tagged(ids[cover], bits, i as u64, &sink);
                tagged += 1;
            }
        }

        let expected = |i: usize| {
            let (cover, bits, _) = schedule[i];
            plas[cover].simulate_bits(bits)
        };
        for _ in 0..tagged {
            let reply = stream.recv();
            prop_assert_eq!(&reply.outputs, &expected(reply.tag as usize));
        }
        for (i, ticket) in tickets {
            prop_assert_eq!(&ticket.wait(), &expected(i));
        }

        // Registration (and forced promotion) is processed FIFO on the
        // shard ahead of every flush above, so after the drain the tier
        // split is settled: the ≤ 4-input registrations materialized,
        // the 6-input one batched.
        prop_assert_eq!(service.stats_for(ids[0]).tier, Tier::Materialized);
        prop_assert_eq!(service.stats_for(ids[1]).tier, Tier::Batched);
        prop_assert_eq!(service.stats_for(ids[2]).tier, Tier::Materialized);

        let snap = service.shutdown();
        prop_assert_eq!(snap.requests, schedule.len() as u64);
        prop_assert_eq!(
            snap.lanes_filled, schedule.len() as u64,
            "materialized flushes account their lanes like batched ones"
        );
        prop_assert_eq!(snap.materialized, 2);
        // Only the batched 6-input registration may touch the LRU: the
        // materialized flush path answers by indexed load alone. Each of
        // its flushes serves ≥ 1 lane, so its own request count bounds
        // the cache consults.
        let batched_requests =
            schedule.iter().filter(|&&(c, _, _)| c == 1).count() as u64;
        prop_assert!(snap.cache_hits + snap.cache_misses <= batched_requests);
    }
}

/// The redesigned registration API end to end through the facade: a
/// specification cover and its defective twin served side by side, with
/// identical bit patterns in flight for both, must scatter each reply to
/// the right backend — and the cache, keyed on distinct `SimKey`s, must
/// never serve one twin's block to the other.
#[test]
fn cover_and_faulty_twin_are_served_side_by_side() {
    let service = SimService::with_defaults();
    let spec = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let pla = GnorPla::from_cover(&spec);
    let d = pla.dimensions();
    let mut defects = DefectMap::clean(d.products, d.inputs, d.outputs);
    defects.set_input_defect(0, 1, DefectKind::StuckOff);
    let faulty = FaultyGnorPla::new(pla, defects);
    assert!(
        (0..8u64).any(|b| faulty.simulate_bits(b) != spec.eval_bits(b)),
        "the defect must corrupt the function for this test to mean anything"
    );

    let cid = service.register(spec.clone());
    let fid = service.register_sim(
        Arc::new(faulty.clone()),
        SimKey::new(SimKey::of_cover(&spec).raw() ^ 0xdef),
    );
    // Three rounds of every assignment to both backends: identical input
    // blocks, distinct SimKeys, so the cache must keep them apart.
    for _ in 0..3 {
        let tickets: Vec<_> = (0..8u64)
            .map(|bits| (bits, service.submit(cid, bits), service.submit(fid, bits)))
            .collect();
        for (bits, ct, ft) in tickets {
            assert_eq!(ct.wait(), spec.eval_bits(bits), "cover bits {bits:03b}");
            assert_eq!(
                ft.wait(),
                faulty.simulate_bits(bits),
                "faulty bits {bits:03b}"
            );
        }
    }
    let snap = service.shutdown();
    assert_eq!(snap.requests, 48);
    assert_eq!(
        snap.cache_hits + snap.cache_misses,
        snap.blocks,
        "every flushed block consults the cache exactly once"
    );
}

/// Backpressure and hot swaps compose: a queue filled to `queue_depth`
/// refuses further `try_submit`s, a swap *drains* that queue (answering
/// every accepted request under the outgoing epoch), and the freed
/// capacity is immediately usable under the new epoch — with the
/// `queue_full` / `swap_flushes` counters accounting for all of it.
#[test]
fn try_submit_composes_with_swap_drains() {
    let service = SimService::start(ServeConfig {
        max_wait: Duration::from_secs(10), // only swaps and shutdown flush
        queue_depth: 4,
        ..ServeConfig::default()
    })
    .expect("valid config");
    let spec = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let id = service.register(spec.clone());
    let before: Vec<_> = (0..4u64)
        .map(|bits| {
            (
                bits % 4,
                service.try_submit(id, bits % 4).expect("below depth"),
            )
        })
        .collect();
    assert!(service.try_submit(id, 0).is_err(), "queue is full");

    // The swap drains all four: they resolve under epoch 0, and the queue
    // has room again without any deadline ever firing.
    assert_eq!(service.swap_sim(id, Arc::new(spec.clone())), 1);
    for (bits, ticket) in before {
        let reply = ticket.wait_reply();
        assert_eq!(reply.epoch, 0, "drained under the outgoing epoch");
        assert_eq!(reply.outputs, spec.eval_bits(bits));
    }
    let after = service
        .try_submit(id, 1)
        .expect("the swap drain freed the queue");
    let snap = service.shutdown();
    let reply = after.wait_reply();
    assert_eq!(
        reply.epoch, 1,
        "post-swap requests serve under the new epoch"
    );
    assert_eq!(reply.outputs, spec.eval_bits(1));
    assert_eq!(snap.queue_full, 1);
    assert_eq!(snap.swaps, 1);
    assert_eq!(snap.swap_flushes, 1);
    assert_eq!(snap.lanes_filled, 5, "every accepted request was answered");
}

/// Bounded submitters hammering `try_submit` while another thread swaps
/// repeatedly must never deadlock, and the books must balance: every
/// accepted ticket resolves (under some epoch ≤ the swap count), every
/// rejection is counted.
#[test]
fn concurrent_try_submit_during_swaps_never_deadlocks() {
    const SWAPS: u64 = 20;
    const SUBMITTERS: u64 = 2;
    const ATTEMPTS: u64 = 200;
    let service = SimService::start(ServeConfig {
        max_wait: Duration::from_micros(100),
        queue_depth: 16,
        ..ServeConfig::default()
    })
    .expect("valid config");
    let spec = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let id = service.register(spec.clone());

    let accepted: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let service = &service;
                let spec = &spec;
                s.spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..ATTEMPTS {
                        let bits = (t + i) % 4;
                        if let Ok(ticket) = service.try_submit(id, bits) {
                            accepted += 1;
                            let reply = ticket.wait_reply();
                            assert_eq!(reply.outputs, spec.eval_bits(bits));
                            assert!(reply.epoch <= SWAPS);
                        }
                    }
                    accepted
                })
            })
            .collect();
        for k in 1..=SWAPS {
            assert_eq!(service.swap_sim(id, Arc::new(spec.clone())), k);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter panicked"))
            .sum()
    });

    let snap = service.shutdown();
    assert_eq!(snap.swaps, SWAPS);
    assert_eq!(snap.requests, accepted);
    assert_eq!(
        snap.lanes_filled, accepted,
        "every accepted request flushed"
    );
    assert_eq!(
        snap.requests + snap.queue_full,
        SUBMITTERS * ATTEMPTS,
        "every attempt either served or counted as a rejection"
    );
}

/// The service's per-cover queues must not leak results across covers
/// even when the same bit patterns are in flight for all of them.
#[test]
fn identical_bits_to_different_covers_stay_separate() {
    let service = SimService::with_defaults();
    let covers: Vec<Cover> = ambipla::benchmarks::classics()
        .into_iter()
        .map(|b| b.on)
        .collect();
    let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();
    let tickets: Vec<_> = (0..3 * covers.len())
        .map(|i| {
            let c = i % covers.len();
            (
                c,
                (i / covers.len()) as u64,
                service.submit(ids[c], (i / covers.len()) as u64),
            )
        })
        .collect();
    for (c, bits, ticket) in tickets {
        assert_eq!(
            ticket.wait(),
            covers[c].eval_bits(bits),
            "cover {c} bits {bits}"
        );
    }
}
