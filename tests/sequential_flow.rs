//! Integration: sequential (FSM) kernels through the full stack —
//! minimization, bitstream deployment, defect injection and 2D repair.

use ambipla::core::fsm::{counter_cover, PlaFsm};
use ambipla::core::{from_bitstream, to_bitstream, GnorPla, Simulator};
use ambipla::fault::{
    bist_sequence, measure_coverage, repair_with_columns, verify_column_repair,
    ColumnRepairOutcome, DefectKind, DefectMap, FaultyGnorPla,
};
use ambipla::logic::{espresso, Cover};

/// An FSM kernel survives the bitstream round trip: serialize the PLA,
/// reload, rebuild the FSM, and get identical traces.
#[test]
fn fsm_kernel_through_bitstream() {
    let kernel = counter_cover(3);
    let (min, _) = espresso(&kernel);
    let pla = GnorPla::from_cover(&min);
    let bits = to_bitstream(&pla);
    let reloaded = from_bitstream(&bits).expect("valid stream");
    assert_eq!(reloaded, pla);

    let mut original = PlaFsm::new(&min, 1, 3).unwrap();
    let restored_cover = reloaded.extract_cover().expect("standard mapping");
    let mut restored = PlaFsm::new(&restored_cover, 1, 3).unwrap();
    let trace: Vec<u64> = (0..50).map(|i| u64::from(i % 4 != 2)).collect();
    assert_eq!(original.run(&trace), restored.run(&trace));
    assert_eq!(original.state(), restored.state());
}

/// Defects in the FSM kernel corrupt counting; repair restores it.
#[test]
fn defective_fsm_kernel_repairs() {
    let kernel = counter_cover(2);
    let (min, _) = espresso(&kernel);
    let dims = GnorPla::from_cover(&min).dimensions();

    // Kill one physical row and one column; give the array spares of each.
    let mut defects = DefectMap::clean(dims.products + 2, dims.inputs + 1, dims.outputs);
    defects.set_input_defect(0, 0, DefectKind::StuckOn);
    for r in 0..defects.rows() {
        defects.set_input_defect(r, 1, DefectKind::StuckOff);
    }
    match repair_with_columns(&min, &defects) {
        ColumnRepairOutcome::Repaired(r) => {
            assert!(verify_column_repair(&min, &r, &defects));
            // Run the repaired kernel as an FSM through fault simulation.
            let faulty = FaultyGnorPla::new(r.pla.clone(), defects);
            let mut state = 0u64;
            for step in 0..12u64 {
                let en = u64::from(step % 3 != 0);
                let logical: Vec<bool> = {
                    let packed = en | state << 1;
                    (0..min.n_inputs()).map(|i| packed >> i & 1 == 1).collect()
                };
                let out = faulty.simulate(&r.physical_inputs(&logical));
                let mut next = 0u64;
                for k in 0..2 {
                    if out[1 + k] {
                        next |= 1 << k;
                    }
                }
                let expect = if en == 1 { (state + 1) & 3 } else { state };
                assert_eq!(next, expect, "step {step}");
                state = next;
            }
        }
        ColumnRepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
    }
}

/// BIST walking patterns achieve measurable coverage on the FSM kernel's
/// combinational core, and never beat complete ATPG.
#[test]
fn fsm_kernel_bist_coverage() {
    let kernel = counter_cover(2);
    let (min, _) = espresso(&kernel);
    let bist = measure_coverage(&min, &bist_sequence(min.n_inputs()));
    assert!(bist.fraction() > 0.5, "BIST fraction {}", bist.fraction());
    let atpg = ambipla::fault::generate_tests(&min);
    assert!(bist.fraction() <= atpg.coverage() + 1e-9);
    assert_eq!(atpg.coverage(), 1.0);
}

/// Phase-optimized combinational kernels keep working as FSM next-state
/// logic once the driver polarities are accounted for.
#[test]
fn counter_counts_after_minimization_variants() {
    for bits in [1usize, 2, 3, 4] {
        let kernel = counter_cover(bits);
        let (min, _) = espresso(&kernel);
        let mut fsm = PlaFsm::new(&min, 1, bits).unwrap();
        let steps = 2 * (1 << bits) + 3;
        for _ in 0..steps {
            fsm.step(1);
        }
        assert_eq!(
            fsm.state(),
            (steps as u64) % (1 << bits),
            "{bits}-bit counter"
        );
    }
}

/// Cross-checking eval paths: functional, dynamic, fault-free injection and
/// extraction all agree on the same kernel.
#[test]
fn all_simulation_paths_agree() {
    let kernel = counter_cover(2);
    let (min, _) = espresso(&kernel);
    let pla = GnorPla::from_cover(&min);
    let dims = pla.dimensions();
    let clean = FaultyGnorPla::new(
        pla.clone(),
        DefectMap::clean(dims.products, dims.inputs, dims.outputs),
    );
    let mut dynamic = ambipla::core::DynamicPla::new(&pla);
    let extracted: Cover = pla.extract_cover().expect("standard mapping");
    for bits in 0..(1u64 << dims.inputs) {
        let functional = pla.simulate_bits(bits);
        assert_eq!(clean.simulate_bits(bits), functional, "inject @ {bits:b}");
        assert_eq!(dynamic.cycle_bits(bits), functional, "dynamic @ {bits:b}");
        assert_eq!(extracted.eval_bits(bits), functional, "extract @ {bits:b}");
    }
}
