//! Integration: logic function → Shannon CLB mapping → place & route →
//! timing, plus the bitstream and BDD flows that glue the stack together.

use ambipla::core::{from_bitstream, to_bitstream, GnorPla};
use ambipla::fpga::{
    critical_path, emulate, mapping::MappedNetwork, place, route, FpgaArch, FpgaFlavor,
};
use ambipla::logic::{bdd_equivalent, espresso, Cover};

/// A wide function mapped to 4-input CLBs, placed and routed on both
/// flavors, with the CNFET flavor at least as fast.
#[test]
fn cover_to_clbs_to_routed_fpga() {
    let f = Cover::parse(
        "111111 1\n000000 1\n110000 1\n001100 1\n000011 1\n101010 1",
        6,
        1,
    )
    .unwrap();
    let net = MappedNetwork::decompose(&f, 4);
    assert!(net.implements(&f), "mapping must preserve the function");
    assert!(net.n_blocks() > 1, "6 inputs at k=4 must split");

    let circuit = net.to_circuit(0.9);
    let arch = FpgaArch::sized_for(circuit.n_blocks(), 0.99);
    let mut timings = Vec::new();
    for flavor in [FpgaFlavor::Standard, FpgaFlavor::CnfetPla] {
        let placement = place(&circuit, &arch, flavor, 3);
        let routing = route(&circuit, &placement, &arch);
        let timing = critical_path(&circuit, &routing, &arch);
        assert!(timing.frequency > 0.0);
        timings.push(timing.frequency);
    }
    assert!(
        timings[1] >= timings[0] * 0.99,
        "CNFET flavor should not be slower"
    );
}

/// The full Table 2 emulation on a mapped (rather than synthetic) circuit.
#[test]
fn mapped_circuit_through_table2_harness() {
    let f = Cover::parse(
        "11111111 1\n00000000 1\n10101010 1\n01010101 1\n11110000 1",
        8,
        1,
    )
    .unwrap();
    let net = MappedNetwork::decompose(&f, 3);
    assert!(net.implements(&f));
    let circuit = net.to_circuit(0.9);
    let arch = FpgaArch::sized_for(circuit.n_blocks(), 0.99);
    let std_r = emulate(&circuit, &arch, FpgaFlavor::Standard, 1);
    let cn_r = emulate(&circuit, &arch, FpgaFlavor::CnfetPla, 1);
    assert!(std_r.occupancy >= cn_r.occupancy);
    assert!(cn_r.wirelength <= std_r.wirelength);
}

/// Bitstream round-trip across the registry: serialize, corrupt-check,
/// reload, and re-verify the function.
#[test]
fn bitstream_roundtrip_across_registry() {
    for b in ambipla::benchmarks::registry() {
        let pla = GnorPla::from_cover(&b.on);
        let bits = to_bitstream(&pla);
        let back = from_bitstream(&bits).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(back, pla, "{}", b.name);
        // Flip one code bit → must be rejected, never mis-programmed.
        let mut bad = bits.clone();
        let idx = bits.len() - 6; // inside the code section
        bad[idx] ^= 0b01;
        assert!(
            from_bitstream(&bad).is_err(),
            "{}: corruption accepted",
            b.name
        );
    }
}

/// BDD equivalence proves the t2 pipeline completely (17 inputs — beyond
/// practical exhaustive checking for multi-output covers).
#[test]
fn t2_minimization_proved_by_bdd() {
    let b = ambipla::benchmarks::t2();
    let (min, _) = espresso(&b.on);
    assert!(
        bdd_equivalent(&b.on, &min),
        "espresso(t2) proved equivalent"
    );
}

/// BDD and exhaustive checkers agree on small functions.
#[test]
fn bdd_agrees_with_exhaustive_checker() {
    use ambipla::logic::check_equivalent;
    let a = Cover::parse("1-0 10\n011 01\n--1 11", 3, 2).unwrap();
    let (min, _) = espresso(&a);
    assert!(bdd_equivalent(&a, &min));
    assert!(check_equivalent(&a, &min).is_equivalent());
    // And on a non-equivalent pair.
    let c = Cover::parse("1-0 10\n011 01", 3, 2).unwrap();
    assert!(!bdd_equivalent(&a, &c));
    assert!(!check_equivalent(&a, &c).is_equivalent());
}

/// Dynamic (cycle-accurate) simulation matches the functional simulator on
/// a programmed-and-read-back array.
#[test]
fn dynamic_simulation_of_programmed_array() {
    use ambipla::core::DynamicPla;
    let f = Cover::parse("10- 10\n-01 01\n11- 11", 3, 2).unwrap();
    let pla = GnorPla::from_cover(&f);
    let (m1, m2) = pla.program(1e-3);
    let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    let mut dynamic = DynamicPla::new(&back);
    for bits in 0..8u64 {
        assert_eq!(
            dynamic.cycle_bits(bits),
            f.eval_bits(bits),
            "bits {bits:03b}"
        );
    }
}
