//! Chaos harness: epoch-versioned hot swaps under sustained concurrent
//! load.
//!
//! Issue 6's acceptance scenario, end to end: a [`SimService`] serves a
//! PLA while client threads hammer it and a mutator thread keeps
//! replacing the backend — injecting fresh defects into a
//! [`FaultyGnorPla`], applying `fault::repair_with_columns` and serving
//! the repaired view, and swapping in re-minimized covers — for at least
//! 50 hot swaps. The harness asserts the full epoch contract:
//!
//! * **(a)** every reply bit-matches the scalar truth of the epoch it was
//!   served under (checked against an [`EpochOracle`] that records every
//!   generation *before* its swap lands),
//! * **(b)** a superseded epoch's cache entries never serve a reply after
//!   the swap — instrumented with counting backends that observe every
//!   real evaluation,
//! * **(c)** the service's `stats()` swap/epoch counters reconcile
//!   exactly with the driver's own swap log,
//! * **(d)** the structured event log is consistent: an [`EventRing`]
//!   recorder drained by a concurrent collector thread sees every swap
//!   in the driver's log exactly once, with the correct
//!   `(from_epoch, to_epoch)` pair, and — the ring being drained faster
//!   than it fills — loses nothing (`dropped() == 0`).
//!
//! Zero requests may be dropped: every submission must produce exactly
//! one reply. `AMBIPLA_CHAOS_ITERS` overrides the default 60 swaps (CI
//! runs a bounded smoke with it; soak locally with a larger value).
//!
//! The network-mode run repeats the scenario through the full TCP stack
//! (`ambipla::net`): two tenants over loopback connections against a
//! two-shard service, with the mutator swapping both registrations and
//! every wire reply checked against its serving epoch's oracle truth.
//!
//! The tiered-evaluation run puts the same contract under the
//! materialized truth-table tier: a small (12-input) registration
//! auto-promotes *mid-run* under concurrent load, is hot-swapped after
//! promotion (dropping and rebuilding its table under each new epoch),
//! and every reply still matches its serving epoch's oracle with zero
//! drops — the tier must be invisible in the results, before, during
//! and after promotion.

use ambipla::core::{EpochOracle, GnorPla, Simulator};
use ambipla::fault::{repair_with_columns, ColumnRepairOutcome, DefectMap, FaultyGnorPla};
use ambipla::logic::espresso::espresso;
use ambipla::logic::Cover;
use ambipla::obs::{Event, EventKind, EventRing};
use ambipla::serve::{reply_channel, ServeConfig, SharedSim, SimKey, SimService};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The harness's specification: the 3-input full adder (sum, carry).
fn spec() -> Cover {
    Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover")
}

/// Number of hot swaps the chaos runs drive (`AMBIPLA_CHAOS_ITERS`
/// overrides; the acceptance floor is 50).
fn chaos_iters() -> u64 {
    std::env::var("AMBIPLA_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// A pass-through backend that counts how many lane words it actually
/// evaluated — the probe for assertion (b): a cache hit never reaches
/// the backend, so the counter separates real evaluations from replays.
struct Counting {
    inner: SharedSim,
    words: AtomicUsize,
}

impl Counting {
    fn over(inner: SharedSim) -> Arc<Counting> {
        Arc::new(Counting {
            inner,
            words: AtomicUsize::new(0),
        })
    }

    fn words_evaluated(&self) -> usize {
        self.words.load(Ordering::Relaxed)
    }
}

impl Simulator for Counting {
    fn n_inputs(&self) -> usize {
        self.inner.n_inputs()
    }

    fn n_outputs(&self) -> usize {
        self.inner.n_outputs()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        self.words.fetch_add(words, Ordering::Relaxed);
        self.inner.eval_words(inputs, out, words);
    }
}

/// Build swap candidate number `k` (all share the spec's 3×2 arity):
/// cycling through a re-minimized cover, a freshly defect-injected
/// faulty array, and a column-repaired view of a defective array —
/// the three reconfiguration shapes the issue's mutator must exercise.
fn swap_candidate(k: u64, spec: &Cover, base_faulty: &FaultyGnorPla) -> SharedSim {
    let d = base_faulty.shared_pla().dimensions();
    match k % 3 {
        0 => Arc::new(espresso(spec).0),
        1 => Arc::new(base_faulty.with_defects(DefectMap::sample(
            d.products,
            d.inputs,
            d.outputs,
            0.08,
            0.7,
            0x9e37 ^ k,
        ))),
        _ => {
            // Two spare rows and two spare columns; if this particular
            // defect draw is unrepairable, fall back to a clean ideal
            // array — the harness cares that swaps keep landing, not
            // that every draw is repairable.
            let defects = DefectMap::sample(
                spec.len() + 2,
                spec.n_inputs() + 2,
                2,
                0.05,
                0.8,
                0xc0de ^ k,
            );
            match repair_with_columns(spec, &defects) {
                ColumnRepairOutcome::Repaired(r) => Arc::new(r.faulty_view(&defects)),
                ColumnRepairOutcome::Unrepairable { .. } => Arc::new(GnorPla::from_cover(spec)),
            }
        }
    }
}

/// The tentpole scenario: ≥ `chaos_iters()` hot swaps under sustained
/// multi-threaded load, with every reply verified against the epoch that
/// served it, zero drops, exact cache invalidation and reconciled
/// counters.
#[test]
fn chaos_hot_swaps_under_load_keep_every_reply_epoch_consistent() {
    const CLIENTS: u64 = 4;
    const BURST: u64 = 32;
    let swaps = chaos_iters();
    assert!(swaps >= 50, "acceptance floor: at least 50 hot swaps");

    let spec = spec();
    let nominal = GnorPla::from_cover(&spec);
    let dims = nominal.dimensions();
    let base_faulty = FaultyGnorPla::new(
        nominal.clone(),
        DefectMap::clean(dims.products, dims.inputs, dims.outputs),
    );

    // (d) the event recorder: a lock-free ring drained by a concurrent
    // collector thread, so the producers never see a full ring and the
    // chaos run's complete structured-event history is available for the
    // consistency checks at the end.
    let ring = Arc::new(EventRing::with_capacity(1 << 14));
    let collector_stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&collector_stop);
        std::thread::spawn(move || {
            let mut events: Vec<Event> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                match ring.pop() {
                    Some(e) => events.push(e),
                    None => std::thread::yield_now(),
                }
            }
            events.extend(ring.drain());
            events
        })
    };

    let service = SimService::start_with_recorder(
        ServeConfig {
            max_wait: Duration::from_micros(100),
            cache_capacity: 256,
            cache_shards: 4,
            block_words: 2,
            ..ServeConfig::default()
        },
        Arc::clone(&ring) as Arc<dyn ambipla::obs::Recorder>,
    )
    .expect("valid config");
    let initial: SharedSim = Arc::new(nominal);
    let oracle = EpochOracle::new(Arc::clone(&initial));
    let fid = service.register_sim(initial, SimKey::new(0xfad));

    let running = AtomicBool::new(true);
    let mut swap_log = Vec::new();
    let (client_submitted, epochs_seen) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let oracle = &oracle;
                let running = &running;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xabad1dea ^ c);
                    let (sink, stream) = reply_channel();
                    let mut submitted = 0u64;
                    let mut epochs = BTreeSet::new();
                    while running.load(Ordering::Relaxed) {
                        // Burst-submit, then drain the burst: the input
                        // bits ride in the tag, so each reply is
                        // self-describing and order never matters.
                        for _ in 0..BURST {
                            let bits = rng.gen_range(0..8u64);
                            service.submit_tagged(fid, bits, submitted << 3 | bits, &sink);
                            submitted += 1;
                        }
                        for _ in 0..BURST {
                            let reply = stream.recv();
                            let bits = reply.tag & 0b111;
                            assert!(
                                oracle.matches(reply.epoch, bits, &reply.outputs),
                                "client {c}: reply for bits {bits:03b} does not match \
                                 the truth of epoch {} that served it",
                                reply.epoch
                            );
                            epochs.insert(reply.epoch);
                        }
                    }
                    (submitted, epochs)
                })
            })
            .collect();

        // The mutator: push each generation into the oracle *before* its
        // swap lands, so a concurrent client can always resolve whatever
        // epoch its reply names.
        for k in 1..=swaps {
            let candidate = swap_candidate(k, &spec, &base_faulty);
            let promised = oracle.push(Arc::clone(&candidate));
            let installed = service.swap_sim(fid, candidate);
            assert_eq!(installed, promised, "oracle and service disagree on epochs");
            assert_eq!(installed, k, "epochs count completed swaps");
            swap_log.push(installed);
        }
        running.store(false, Ordering::Relaxed);

        let mut total = 0u64;
        let mut seen = BTreeSet::new();
        for h in handles {
            let (submitted, epochs) = h.join().expect("client thread panicked");
            total += submitted;
            seen.extend(epochs);
        }
        (total, seen)
    });

    // Traffic genuinely straddled swaps: replies were served under many
    // generations, starting at 0 (pre-first-swap) and reaching the final
    // epoch (clients keep submitting after the mutator stops).
    assert!(
        epochs_seen.len() >= 2,
        "chaos run never interleaved a swap with traffic: {epochs_seen:?}"
    );
    assert_eq!(*epochs_seen.last().expect("some epoch"), swaps);
    assert!(epochs_seen.iter().all(|&e| e <= swaps));

    // (b) instrumented: after quiesce, swap in a counting probe. The
    // chaos run cached plenty of blocks under epochs 0..=swaps, yet none
    // of them may serve the probe's epoch: its traffic must reach the
    // probe backend for real, and every answer must be the probe's truth
    // under the probe's epoch. (The *exact* per-block evaluation count is
    // proven by the deterministic regression test below — here deadline
    // flushes may legitimately split blocks, so only the reach-through
    // and correctness are asserted.)
    let probe = Counting::over(Arc::new(spec.clone()));
    let probe_epoch = oracle.push(Arc::clone(&probe) as SharedSim);
    assert_eq!(
        service.swap_sim(fid, Arc::clone(&probe) as SharedSim),
        probe_epoch
    );
    let (sink, stream) = reply_channel();
    let mut probed = 0u64;
    for tag in 0..128u64 {
        service.submit_tagged(fid, tag % 8, tag, &sink);
        probed += 1;
    }
    for _ in 0..128 {
        let reply = stream.recv();
        assert_eq!(reply.epoch, probe_epoch, "no reply predates the probe swap");
        assert_eq!(reply.outputs, spec.eval_bits(reply.tag % 8));
    }
    assert!(
        probe.words_evaluated() >= 1,
        "post-swap traffic must evaluate on the new backend — a superseded \
         epoch's cache entry can never serve it"
    );

    // (c) the service's counters reconcile with the driver's log.
    let snap = service.shutdown();
    assert_eq!(swap_log.len() as u64, swaps);
    assert_eq!(
        snap.swaps,
        swaps + 1,
        "every logged swap plus the counting probe bumped an epoch"
    );
    assert!(snap.swap_flushes <= snap.swaps);
    let submitted = client_submitted + probed;
    assert_eq!(snap.requests, submitted, "every submission was counted");
    assert_eq!(
        snap.lanes_filled, submitted,
        "zero dropped requests: every submission left through a flush"
    );

    // (d) event-log consistency. The shutdown above flushed the final
    // events, so the collector now holds the complete history.
    collector_stop.store(true, Ordering::Relaxed);
    let events = collector.join().expect("collector thread panicked");
    assert_eq!(
        ring.dropped(),
        0,
        "the drained ring never filled: no event may be lost below capacity"
    );
    assert_eq!(ring.pushed(), events.len() as u64);

    // Exactly one Register for the chaos registration.
    let registers = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Register { slot: 0 }))
        .count();
    assert_eq!(registers, 1);

    // Every swap in the driver's log — plus the counting-probe swap —
    // appears in the ring exactly once, with the correct epoch pair.
    let mut swap_pairs: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Swap {
                slot: 0,
                from_epoch,
                to_epoch,
                ..
            } => Some((from_epoch, to_epoch)),
            _ => None,
        })
        .collect();
    // Swap events are emitted by the single batcher thread in order, so
    // the ring preserves their sequence — but sort anyway so the check
    // only relies on "exactly once", not on FIFO.
    swap_pairs.sort_unstable();
    let expected: Vec<(u64, u64)> = (1..=swaps + 1).map(|k| (k - 1, k)).collect();
    assert_eq!(
        swap_pairs, expected,
        "each driver-logged swap k must appear exactly once as (k-1, k)"
    );

    // Flush events reconcile with the counter fold: same lane total,
    // every flush stamped with an epoch the driver actually created.
    let mut flush_lanes = 0u64;
    for e in &events {
        if let EventKind::Flush {
            slot, epoch, lanes, ..
        } = e.kind
        {
            assert_eq!(slot, 0);
            assert!(epoch <= swaps + 1);
            flush_lanes += lanes as u64;
        }
    }
    assert_eq!(
        flush_lanes, snap.lanes_filled,
        "the event log and the counters tell the same lane story"
    );
}

/// Satellite (b) regression, fully deterministic: a swap invalidates
/// exactly the swapped registration's cache entries. The swapped slot's
/// next identical block re-evaluates (its counting probe fires), while a
/// bystander registration — same function, same traffic, different
/// [`SimKey`] — keeps replaying its warm entries untouched.
#[test]
fn swap_invalidates_exactly_the_swapped_registrations_entries() {
    let spec = spec();
    let service = SimService::start(ServeConfig {
        max_wait: Duration::from_secs(10), // only full blocks flush
        ..ServeConfig::default()
    })
    .expect("valid config");
    let swapped_gen0 = Counting::over(Arc::new(spec.clone()));
    let bystander_gen = Counting::over(Arc::new(spec.clone()));
    let sid = service.register_sim(Arc::clone(&swapped_gen0) as SharedSim, SimKey::new(1));
    let bid = service.register_sim(Arc::clone(&bystander_gen) as SharedSim, SimKey::new(2));

    let (sink, stream) = reply_channel();
    let fill = |id| {
        for tag in 0..64u64 {
            service.submit_tagged(id, tag % 8, tag, &sink);
        }
        for _ in 0..64 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, spec.eval_bits(reply.tag % 8));
        }
    };

    // Warm both registrations and prove the pattern is warm: the second
    // identical block replays from cache, the probes never fire again.
    for _ in 0..2 {
        fill(sid);
        fill(bid);
    }
    assert_eq!(swapped_gen0.words_evaluated(), 1);
    assert_eq!(bystander_gen.words_evaluated(), 1);

    // Swap one registration. Its next identical block must be a real
    // evaluation on the *new* backend; the old generation's probe stays
    // quiet forever, and the bystander's warm entry still replays.
    let swapped_gen1 = Counting::over(Arc::new(spec.clone()));
    assert_eq!(
        service.swap_sim(sid, Arc::clone(&swapped_gen1) as SharedSim),
        1
    );
    fill(sid);
    fill(bid);
    assert_eq!(
        swapped_gen1.words_evaluated(),
        1,
        "the swapped slot's first post-swap block is a real evaluation"
    );
    assert_eq!(
        swapped_gen0.words_evaluated(),
        1,
        "the superseded backend is never consulted again"
    );
    assert_eq!(
        bystander_gen.words_evaluated(),
        1,
        "the bystander's warm entries survived the other slot's swap"
    );
    // And the new epoch's own entry is warm from here on.
    fill(sid);
    assert_eq!(swapped_gen1.words_evaluated(), 1);

    let snap = service.shutdown();
    assert_eq!(snap.swaps, 1);
    assert_eq!(snap.cache_misses, 3, "gen0, bystander, gen1 — one each");
    assert_eq!(snap.cache_hits, 4);
}

/// Tiered-evaluation chaos: a 12-input registration under the *auto*
/// policy promotes to the materialized truth-table tier mid-run, while
/// client threads hammer it with unique-pattern bursts, and is then
/// hot-swapped twice — through a different function and a different
/// backend type — after promotion. Asserts:
///
/// * every reply bit-matches its serving epoch's oracle truth, across
///   the batched phase, the promotion, and both post-promotion swaps,
/// * zero drops (`requests == lanes_filled`),
/// * each swap drops and rebuilds the table (the registration is
///   materialized again after every swap), and the event ring carries
///   exactly one `TierPromote` per build — the mid-run promotion plus
///   one re-materialization per swap.
#[test]
fn promotion_mid_run_and_post_promotion_swaps_stay_epoch_consistent() {
    use ambipla::benchmarks::RandomPla;
    use ambipla::serve::{Tier, TierPolicy};

    const CLIENTS: u64 = 2;
    const BURST: u64 = 32;
    const N: usize = 12;

    let gen0_cover = RandomPla::new(N, 4, 48)
        .seed(21)
        .literal_density(0.4)
        .build();
    let gen1_cover = RandomPla::new(N, 4, 48)
        .seed(22)
        .literal_density(0.4)
        .build();

    let ring = Arc::new(EventRing::with_capacity(1 << 16));
    let service = SimService::start_with_recorder(
        ServeConfig {
            max_wait: Duration::from_micros(100),
            // A low traffic floor so the run promotes quickly; the eval
            // floor (observed spend ≥ the 2^12-lane build cost) still
            // applies and is what the unique-pattern bursts must earn.
            tier_min_requests: 256,
            tier_policy: TierPolicy::Auto,
            ..ServeConfig::default()
        },
        Arc::clone(&ring) as Arc<dyn ambipla::obs::Recorder>,
    )
    .expect("valid config");

    let initial: SharedSim = Arc::new(GnorPla::from_cover(&gen0_cover));
    let oracle = EpochOracle::new(Arc::clone(&initial));
    let tid = service.register_sim(initial, SimKey::new(0x71e5));

    let running = AtomicBool::new(true);
    let client_submitted = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let oracle = &oracle;
                let running = &running;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x7ab1e ^ c);
                    let (sink, stream) = reply_channel();
                    let mut submitted = 0u64;
                    while running.load(Ordering::Relaxed) {
                        // Fresh 12-bit patterns every burst: the block
                        // cache cannot absorb them, so the batched phase
                        // pays real evaluations and earns the promotion.
                        for _ in 0..BURST {
                            let bits = rng.gen_range(0..1u64 << N);
                            service.submit_tagged(tid, bits, submitted << N | bits, &sink);
                            submitted += 1;
                        }
                        for _ in 0..BURST {
                            let reply = stream.recv();
                            let bits = reply.tag & ((1 << N) - 1);
                            assert!(
                                oracle.matches(reply.epoch, bits, &reply.outputs),
                                "client {c}: reply for bits {bits:012b} does not match \
                                 the truth of epoch {} that served it",
                                reply.epoch
                            );
                        }
                    }
                    submitted
                })
            })
            .collect();

        // Wait for the mid-run promotion under live traffic.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while service.stats_for(tid).tier != Tier::Materialized {
            assert!(
                std::time::Instant::now() < deadline,
                "the 12-input registration never promoted under sustained load"
            );
            std::thread::sleep(Duration::from_millis(1));
        }

        // Two post-promotion hot swaps: a different function, then a
        // different backend type (the raw cover, same function as gen1).
        // Auto policy re-materializes a previously-promoted registration
        // as part of the swap, so the tier must read Materialized as
        // soon as swap_sim acks.
        let candidates: [SharedSim; 2] = [
            Arc::new(GnorPla::from_cover(&gen1_cover)),
            Arc::new(gen1_cover.clone()),
        ];
        for (k, candidate) in candidates.into_iter().enumerate() {
            let promised = oracle.push(Arc::clone(&candidate));
            assert_eq!(service.swap_sim(tid, candidate), promised);
            assert_eq!(promised, k as u64 + 1);
            assert_eq!(
                service.stats_for(tid).tier,
                Tier::Materialized,
                "swap {promised} must rebuild the table under the new epoch"
            );
        }
        running.store(false, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum::<u64>()
    });

    let snap = service.shutdown();
    assert_eq!(snap.swaps, 2);
    assert_eq!(snap.materialized, 1);
    assert_eq!(snap.requests, client_submitted, "every submission counted");
    assert_eq!(
        snap.lanes_filled, client_submitted,
        "zero dropped requests across promotion and both swaps"
    );

    // Exactly one table build per generation that earned one: the
    // mid-run promotion plus one re-materialization per swap.
    let events = ring.drain();
    assert_eq!(ring.dropped(), 0, "the ring never filled");
    let promotes: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TierPromote {
                slot: 0,
                epoch,
                inputs,
                ..
            } => Some((epoch, inputs)),
            _ => None,
        })
        .collect();
    assert_eq!(
        promotes,
        vec![(0, N as u32), (1, N as u32), (2, N as u32)],
        "one TierPromote per build, stamped with its epoch"
    );
}

/// Network-mode chaos: the same mutator pressure, but through the full
/// TCP stack — wire codec, hello authentication, per-tenant admission,
/// DRR scheduling, dispatch into a **two-shard** service — with two
/// tenants on separate loopback connections and the two target
/// registrations pinned to *different* batcher shards. Asserts:
///
/// * every wire reply bit-matches the scalar truth of the epoch that
///   served it (per-registration [`EpochOracle`]s),
/// * zero drops and zero error frames: each tenant gets exactly one
///   `Reply` per request, and the service counters agree,
/// * per-tenant counters reconcile with the driver's own log
///   (accepted == submitted == replies, no quota/queue rejects),
/// * the server's event recorder saw exactly one `Accept` and one
///   `Disconnect` per tenant and no `QuotaReject`.
#[test]
fn chaos_over_tcp_two_tenants_two_shards_stays_epoch_consistent() {
    use ambipla::net::{Frame, NetClient, NetConfig, NetServer, TenantId};
    use ambipla::serve::shard_for_key;

    const TENANTS: u64 = 2;
    const BURST: u64 = 32;
    let swaps = chaos_iters();

    let spec = spec();
    let nominal = GnorPla::from_cover(&spec);
    let dims = nominal.dimensions();
    let base_faulty = FaultyGnorPla::new(
        nominal.clone(),
        DefectMap::clean(dims.products, dims.inputs, dims.outputs),
    );

    let service = Arc::new(
        SimService::start(ServeConfig {
            shards: 2,
            max_wait: Duration::from_micros(100),
            cache_capacity: 256,
            cache_shards: 4,
            block_words: 2,
            ..ServeConfig::default()
        })
        .expect("valid config"),
    );

    // Pick one key per shard so the chaos provably spans both batcher
    // threads.
    let key_a = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 0)
        .expect("a key hashing to shard 0");
    let key_b = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 1)
        .expect("a key hashing to shard 1");

    // The server's recorder only sees connection-lifecycle events here
    // (the service itself runs unrecorded), so the ring stays tiny.
    let ring = Arc::new(EventRing::with_capacity(1024));
    let server = NetServer::bind_with_recorder(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig::default(),
        Arc::clone(&ring) as Arc<dyn ambipla::obs::Recorder>,
    )
    .expect("bind loopback");

    let initial_a: SharedSim = Arc::new(nominal.clone());
    let initial_b: SharedSim = Arc::new(nominal.clone());
    let oracle_a = EpochOracle::new(Arc::clone(&initial_a));
    let oracle_b = EpochOracle::new(Arc::clone(&initial_b));
    let id_a = server.register_sim(initial_a, key_a);
    let id_b = server.register_sim(initial_b, key_b);
    assert_ne!(
        service.shard_of(id_a),
        service.shard_of(id_b),
        "the two chaos registrations must live on different shards"
    );

    let addr = server.local_addr();
    let running = AtomicBool::new(true);
    let mut swap_log: Vec<(u64, u64)> = Vec::new(); // (registration index, epoch)
    let per_tenant_submitted = std::thread::scope(|s| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let oracle_a = &oracle_a;
                let oracle_b = &oracle_b;
                let running = &running;
                s.spawn(move || {
                    let mut client =
                        NetClient::connect(addr, TenantId::new(t)).expect("connect tenant");
                    let mut rng = StdRng::seed_from_u64(0x7cb ^ t);
                    let mut submitted = 0u64;
                    let mut epochs = BTreeSet::new();
                    while running.load(Ordering::Relaxed) {
                        // Pipeline a burst across BOTH registrations, then
                        // drain it. The request id encodes (serial, bits,
                        // sim), so out-of-order replies self-describe.
                        for _ in 0..BURST {
                            let bits = rng.gen_range(0..8u64);
                            let sim_idx = submitted & 1;
                            let key = if sim_idx == 0 { key_a } else { key_b };
                            client.queue_request(key, submitted << 4 | bits << 1 | sim_idx, bits);
                            submitted += 1;
                        }
                        client.flush().expect("flush burst");
                        for _ in 0..BURST {
                            match client.recv().expect("recv reply") {
                                Frame::Reply {
                                    req_id,
                                    epoch,
                                    outputs,
                                } => {
                                    let bits = req_id >> 1 & 0b111;
                                    let oracle = if req_id & 1 == 0 { oracle_a } else { oracle_b };
                                    assert!(
                                        oracle.matches(epoch, bits, &outputs),
                                        "tenant {t}: wire reply for bits {bits:03b} does \
                                         not match the truth of epoch {epoch}"
                                    );
                                    epochs.insert(epoch);
                                }
                                other => panic!("tenant {t}: unexpected frame {other:?}"),
                            }
                        }
                    }
                    assert!(
                        epochs.len() >= 2,
                        "tenant {t} never saw a swap straddle its traffic"
                    );
                    submitted
                })
            })
            .collect();

        // The mutator alternates between the two registrations, pushing
        // each generation into its oracle before the swap lands.
        for k in 1..=swaps {
            let candidate = swap_candidate(k, &spec, &base_faulty);
            let (idx, id, oracle) = if k % 2 == 0 {
                (0, id_a, &oracle_a)
            } else {
                (1, id_b, &oracle_b)
            };
            let promised = oracle.push(Arc::clone(&candidate));
            let installed = service.swap_sim(id, candidate);
            assert_eq!(installed, promised, "oracle and service disagree on epochs");
            swap_log.push((idx, installed));
        }
        running.store(false, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect::<Vec<u64>>()
    });

    // Per-tenant counters reconcile exactly with the driver's log: every
    // submission was admitted, dispatched and answered — zero drops, no
    // quota or backpressure rejects, no malformed requests.
    let stats = server.tenant_stats();
    assert_eq!(stats.len() as u64, TENANTS);
    for (t, snap) in stats.iter().enumerate() {
        let submitted = per_tenant_submitted[t];
        assert_eq!(snap.id, TenantId::new(t as u64));
        assert_eq!(snap.accepted, submitted, "tenant {t}: admissions");
        assert_eq!(snap.replies, submitted, "tenant {t}: zero drops");
        assert_eq!(snap.quota_rejected, 0);
        assert_eq!(snap.queue_full, 0);
        assert_eq!(snap.unknown_sim + snap.bad_arity, 0);
    }
    server.shutdown();

    // Connection lifecycle in the event log: one Accept and one
    // Disconnect per tenant, and never a QuotaReject.
    let events = ring.drain();
    assert_eq!(ring.dropped(), 0);
    for t in 0..TENANTS {
        let accepts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Accept { tenant, .. } if tenant == t))
            .count();
        let disconnects = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Disconnect { tenant, .. } if tenant == t))
            .count();
        assert_eq!((accepts, disconnects), (1, 1), "tenant {t} lifecycle");
    }
    assert!(!events
        .iter()
        .any(|e| matches!(e.kind, EventKind::QuotaReject { .. })));

    // Service-side reconciliation across both shards.
    let total: u64 = per_tenant_submitted.iter().sum();
    let snap = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("all service handles released"))
        .shutdown();
    assert_eq!(snap.swaps, swaps, "every driver-logged swap landed");
    assert_eq!(swap_log.len() as u64, swaps);
    assert_eq!(snap.requests, total, "every wire request reached a shard");
    assert_eq!(snap.lanes_filled, total, "zero dropped requests");
}

/// One step of the proptest chaos driver: submit a request or hot-swap
/// the backend.
#[derive(Debug, Clone)]
enum ChaosOp {
    Submit { bits: u64 },
    Swap { seed: u64 },
}

fn arb_chaos_op() -> impl Strategy<Value = ChaosOp> {
    prop_oneof![
        4 => (0..8u64).prop_map(|bits| ChaosOp::Submit { bits }),
        1 => any::<u64>().prop_map(|seed| ChaosOp::Swap { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite (1): deterministic single-threaded chaos. For arbitrary
    /// submit/swap interleavings (defect draws seeded through the rand
    /// shim, so every failure replays exactly), every reply must match
    /// the truth of the epoch that served it, requests after the final
    /// swap must be served by the final epoch, and nothing is dropped.
    #[test]
    fn arbitrary_submit_swap_interleavings_stay_epoch_consistent(
        ops in proptest::collection::vec(arb_chaos_op(), 1..120),
    ) {
        let spec = spec();
        let nominal = GnorPla::from_cover(&spec);
        let dims = nominal.dimensions();
        let base_faulty = FaultyGnorPla::new(
            nominal.clone(),
            DefectMap::clean(dims.products, dims.inputs, dims.outputs),
        );
        // A huge deadline makes flush points deterministic: full blocks,
        // swap drains and the shutdown drain — nothing else.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            cache_capacity: 8,
            cache_shards: 2,
            ..ServeConfig::default()
        })
    .expect("valid config");
        let initial: SharedSim = Arc::new(nominal);
        let oracle = EpochOracle::new(Arc::clone(&initial));
        let fid = service.register_sim(initial, SimKey::new(0xfad));

        let mut pending = Vec::new();
        let mut n_swaps = 0u64;
        let mut last_swap_at = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                ChaosOp::Submit { bits } => {
                    pending.push((i, bits, service.submit(fid, bits)));
                }
                ChaosOp::Swap { seed } => {
                    let candidate = swap_candidate(seed, &spec, &base_faulty);
                    let promised = oracle.push(Arc::clone(&candidate));
                    prop_assert_eq!(service.swap_sim(fid, candidate), promised);
                    n_swaps += 1;
                    last_swap_at = i;
                    prop_assert_eq!(promised, n_swaps);
                }
            }
        }
        let submitted = pending.len() as u64;
        // Shut down *first*: the drain answers every still-queued ticket
        // immediately instead of making them sit out the 10 s deadline.
        let snap = service.shutdown();
        for (i, bits, ticket) in pending {
            let reply = ticket.wait_reply();
            prop_assert!(
                oracle.matches(reply.epoch, bits, &reply.outputs),
                "op {}: reply for bits {:03b} does not match epoch {}",
                i, bits, reply.epoch
            );
            prop_assert!(reply.epoch <= n_swaps);
            if i > last_swap_at {
                // Deterministically: nothing flushes a post-final-swap
                // request except a full block or the shutdown drain, both
                // under the final epoch.
                prop_assert_eq!(reply.epoch, n_swaps);
            }
        }
        prop_assert_eq!(snap.swaps, n_swaps);
        prop_assert_eq!(snap.requests, submitted);
        prop_assert_eq!(snap.lanes_filled, submitted, "zero drops");
        prop_assert!(snap.swap_flushes <= snap.swaps);
    }
}
