//! Integration: the §5 synthesis extensions (phase optimization, WPLA) on
//! top of the ESPRESSO + GNOR-PLA stack.

use ambipla::benchmarks::{classics, RandomPla};
use ambipla::core::{GnorPla, Simulator, Wpla};
use ambipla::logic::Cover;
use ambipla::phase::{optimize_output_phases, synthesize_wpla, PhaseStrategy};

/// Phase-optimized PLAs must implement the original function and never use
/// more rows than the direct mapping, across seeds.
#[test]
fn phase_opt_is_sound_and_never_worse() {
    for seed in 0..8u64 {
        let f = RandomPla::new(6, 3, 16)
            .seed(seed)
            .literal_density(0.4)
            .build();
        let dc = Cover::new(6, 3);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Greedy);
        assert!(a.after_products <= a.before_products, "seed {seed}");
        if a.after_products == 0 {
            continue; // constant function after complementation
        }
        let pla = a.to_gnor_pla();
        assert!(pla.implements(&f), "seed {seed}: phase-opt PLA wrong");
        let direct = GnorPla::from_cover(&ambipla::logic::espresso(&f).0);
        assert!(
            pla.dimensions().products <= direct.dimensions().products,
            "seed {seed}: phase-opt grew the PLA"
        );
    }
}

/// Greedy and exhaustive agree on cost for tiny functions (greedy may find
/// a different but equally-sized assignment).
#[test]
fn greedy_matches_exhaustive_on_small_functions() {
    for seed in 0..5u64 {
        let f = RandomPla::new(4, 2, 8)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let dc = Cover::new(4, 2);
        let g = optimize_output_phases(&f, &dc, PhaseStrategy::Greedy);
        let e = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
        assert!(
            g.after_products >= e.after_products,
            "seed {seed}: greedy beat exhaustive?!"
        );
        assert!(
            g.after_products <= e.after_products + 2,
            "seed {seed}: greedy much worse than exhaustive"
        );
    }
}

/// WPLA synthesis is sound on the classics and on random covers, and the
/// buffered reference construction agrees with the Doppio split.
#[test]
fn wpla_synthesis_is_sound() {
    for b in classics() {
        let r = synthesize_wpla(&b.on, &b.dc);
        assert!(r.wpla.implements(&b.on), "{}", b.name);
        let buffered = Wpla::buffered_from_cover(&b.on);
        for bits in 0..(1u64 << b.on.n_inputs()) {
            assert_eq!(
                r.wpla.simulate_bits(bits),
                buffered.simulate_bits(bits),
                "{}: WPLA variants disagree at {bits:b}",
                b.name
            );
        }
    }
    for seed in 0..6u64 {
        let f = RandomPla::new(7, 2, 20)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let dc = Cover::new(7, 2);
        let minimized = ambipla::logic::espresso(&f).0;
        let r = synthesize_wpla(&f, &dc);
        assert!(r.wpla.implements(&minimized), "seed {seed}");
    }
}

/// The WPLA split must never exceed the flat plane width by more than the
/// per-output buffer rows it adds.
#[test]
fn wpla_width_is_bounded() {
    for seed in 0..6u64 {
        let f = RandomPla::new(7, 2, 20)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let dc = Cover::new(7, 2);
        let r = synthesize_wpla(&f, &dc);
        let bound = r.two_level_width.div_ceil(2) + f.n_outputs();
        assert!(
            r.wpla_max_width <= bound,
            "seed {seed}: width {} > bound {bound}",
            r.wpla_max_width
        );
    }
}

/// Phase optimization composes with WPLA synthesis: synthesize the WPLA
/// from the phase-optimized cover, restore polarity at the drivers.
#[test]
fn phase_opt_then_wpla() {
    let f = Cover::parse("1-- 10\n-1- 10\n--1 10\n111 01", 3, 2).unwrap();
    let dc = Cover::new(3, 2);
    let a = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
    let r = synthesize_wpla(&a.cover, &dc);
    // The WPLA realizes the phase-adjusted cover; XOR the phases back.
    for bits in 0..8u64 {
        let got = r.wpla.simulate_bits(bits);
        let want = f.eval_bits(bits);
        for j in 0..2 {
            assert_eq!(got[j] ^ a.phases[j], want[j], "bits {bits:03b} out {j}");
        }
    }
}
