//! Cross-module behaviours not covered by the focused flow tests:
//! format corners, phase/device interactions, floorplan comparisons and
//! the extended benchmark registry.

use ambipla::core::{Floorplan, GnorPla, Technology, Wpla};
use ambipla::logic::kmap::render_kmap;
use ambipla::logic::{espresso, exact_minimize, parse_pla, write_pla, Cover, Pla, PlaType};
use ambipla::phase::balance_input_phases;

/// The `.pla` writer emits `fr`-type files with explicit OFF rows that
/// survive a parse round trip.
#[test]
fn fr_writer_roundtrip() {
    let mut pla = Pla::from_cover(Cover::parse("11 1\n00 1", 2, 1).unwrap());
    pla.off = Cover::parse("10 1", 2, 1).unwrap();
    pla.pla_type = PlaType::Fr;
    let text = write_pla(&pla);
    assert!(text.contains(".type fr"));
    let back = parse_pla(&text).expect("writer output parses");
    assert_eq!(back.on.len(), 2);
    assert_eq!(back.off.len(), 1);
    assert_eq!(back.pla_type, PlaType::Fr);
}

/// Karnaugh rendering works for every small single-output registry entry.
#[test]
fn kmap_renders_registry_classics() {
    for b in ambipla::benchmarks::classics() {
        if (2..=4).contains(&b.on.n_inputs()) {
            for j in 0..b.on.n_outputs() {
                let map = render_kmap(&b.on, Some(&b.dc), j)
                    .unwrap_or_else(|| panic!("{} output {j}", b.name));
                assert!(map.lines().count() >= 3, "{} output {j}", b.name);
            }
        }
    }
}

/// Input-phase balancing reduces the p-type device count of the physical
/// mapping, and the rephased PLA has the same shape.
#[test]
fn input_phases_reduce_ptype_devices() {
    let f = Cover::parse("110 1\n111 1\n1-1 1\n011 1", 3, 1).unwrap();
    let a = balance_input_phases(&f);
    assert!(a.invert_devices_after <= a.invert_devices_before);
    let direct = GnorPla::from_cover(&f);
    let balanced = GnorPla::from_cover(&a.cover);
    assert_eq!(direct.dimensions(), balanced.dimensions());
    assert_eq!(direct.active_devices(), balanced.active_devices());
}

/// Whirlpool floorplans trade area for aspect ratio against the flat strip
/// on a single-output, product-heavy benchmark.
#[test]
fn wpla_floorplan_tradeoff_on_max46() {
    let b = ambipla::benchmarks::max46();
    let flat = Floorplan::of_pla(
        GnorPla::from_cover(&b.on).dimensions(),
        Technology::CnfetGnor,
    );
    let ring = Floorplan::of_wpla(&Wpla::buffered_from_cover(&b.on));
    assert!(ring.aspect_ratio() < flat.aspect_ratio());
}

/// The full adder's exact multi-output minimum is matched (or beaten) by
/// no cover ESPRESSO can find — pinning both tools against each other.
#[test]
fn full_adder_exact_vs_espresso() {
    let f = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .unwrap();
    let exact = exact_minimize(&f, &Cover::new(3, 2));
    let (heur, _) = espresso(&f);
    assert!(exact.len() <= heur.len());
    // The shared 111 row makes 7 the multi-output optimum.
    assert_eq!(exact.len(), 7);
    ambipla::logic::eval::assert_equivalent(&f, &exact);
}

/// Every extended-registry stand-in flows through minimize → map → verify
/// (sampled beyond the exhaustive limit).
#[test]
fn extended_registry_pipeline() {
    for b in ambipla::benchmarks::extended() {
        let (min, stats) = espresso(&b.on);
        assert_eq!(stats.final_cubes, b.on.len(), "{} fixed point", b.name);
        let pla = GnorPla::from_cover(&min);
        assert!(pla.implements(&b.on), "{}", b.name);
        assert!(pla.implements_proved(&b.on), "{} (BDD)", b.name);
    }
}
