//! Cross-crate integration: benchmark → ESPRESSO → GNOR PLA → charge
//! programming → readback → functional equivalence, with the classical
//! PLA as a cross-check at every step.

use ambipla::benchmarks as mcnc;
use ambipla::core::{ClassicalPla, GnorPla, PlaDimensions, Simulator, Technology};
use ambipla::logic::{espresso_with_dc, Cover};

/// The full pipeline on every registry benchmark that is small enough to
/// verify exhaustively.
#[test]
fn registry_pipeline_exhaustive() {
    for b in mcnc::registry() {
        if b.on.n_inputs() > 14 {
            continue; // t2 (17 inputs) covered by the sampled test below
        }
        let (min, stats) = espresso_with_dc(&b.on, &b.dc);
        assert!(
            stats.final_cubes <= stats.initial_cubes,
            "{}: espresso grew the cover",
            b.name
        );
        let gnor = GnorPla::from_cover(&min);
        assert!(gnor.implements(&b.on), "{}: GNOR PLA wrong", b.name);
        let classical = ClassicalPla::from_cover(&min);
        assert!(
            classical.implements(&b.on),
            "{}: classical PLA wrong",
            b.name
        );
        // Architectures agree point-wise.
        for bits in 0..(1u64 << b.on.n_inputs().min(12)) {
            assert_eq!(
                gnor.simulate_bits(bits),
                classical.simulate_bits(bits),
                "{}: architectures disagree at {bits:b}",
                b.name
            );
        }
    }
}

/// The t2 stand-in (17 inputs) through the sampled checker.
#[test]
fn t2_pipeline_sampled() {
    let b = mcnc::t2();
    let (min, _) = espresso_with_dc(&b.on, &b.dc);
    assert_eq!(min.len(), 52, "t2 must stay at 52 products");
    let gnor = GnorPla::from_cover(&min);
    assert!(gnor.implements(&b.on));
}

/// Programming through the charge matrices preserves the function for
/// every Table 1 benchmark.
#[test]
fn table1_benchmarks_survive_programming() {
    for b in mcnc::table1_benchmarks() {
        let pla = GnorPla::from_cover(&b.on);
        let (m1, m2) = pla.program(1e-3);
        let dims = pla.dimensions();
        assert_eq!(
            m1.pulse_count() as usize,
            dims.products * dims.inputs,
            "{}: one pulse per input-plane device",
            b.name
        );
        let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
        assert_eq!(back, pla, "{}: readback mismatch", b.name);
    }
}

/// Area model agrees with the actual mapped PLA dimensions, and the mapped
/// dimensions equal the cover dimensions.
#[test]
fn mapped_dimensions_drive_the_area_model() {
    for b in mcnc::table1_benchmarks() {
        let pla = GnorPla::from_cover(&b.on);
        let dims = pla.dimensions();
        let expect = PlaDimensions {
            inputs: b.on.n_inputs(),
            outputs: b.on.n_outputs(),
            products: b.on.len(),
        };
        assert_eq!(dims, expect, "{}", b.name);
        // CNFET cells = (i+o)·p exactly.
        assert_eq!(
            Technology::CnfetGnor.cells(dims),
            (dims.inputs + dims.outputs) * dims.products
        );
    }
}

/// Retention stress: after leaking past the deadline, a programmed PLA
/// reads back fully unconfigured (fail-safe), never as a wrong function
/// that still asserts outputs.
#[test]
fn leaked_arrays_fail_safe_to_constant_outputs() {
    let f = Cover::parse("10- 10\n-01 01\n111 11", 3, 2).unwrap();
    let pla = GnorPla::from_cover(&f);
    let (mut m1, mut m2) = pla.program(1e-6);
    m1.advance(1.0);
    m2.advance(1.0);
    let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    assert_eq!(back.active_devices(), 0);
    for bits in 0..8u64 {
        assert_eq!(back.simulate_bits(bits), vec![false, false]);
    }
}

/// Refresh within the deadline preserves the function indefinitely.
#[test]
fn refresh_cycles_preserve_function() {
    let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
    let pla = GnorPla::from_cover(&f);
    let (mut m1, mut m2) = pla.program(1e-3);
    for _ in 0..20 {
        m1.advance(2e-4);
        m2.advance(2e-4);
        m1.refresh_all();
        m2.refresh_all();
    }
    let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    assert!(back.implements(&f));
}
