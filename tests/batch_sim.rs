//! Property-based contracts of the 64-lane [`BatchSim`] engine.
//!
//! For random covers, one `simulate_batch` call must agree lane-for-lane
//! with 64 independent `simulate_bits` calls on every architecture that
//! implements the trait — and the GNOR PLA must agree with the classical
//! PLA on every cover (the paper's functional-equivalence claim behind the
//! Table 1 area comparison).

use ambipla::core::batch::{pack_vectors, unpack_lane};
use ambipla::core::{BatchSim, ClassicalPla, DynamicPla, GnorPla, Wpla};
use ambipla::logic::{Cover, Cube, Tri};
use proptest::prelude::*;

/// A random cube over `n` inputs and `o` outputs.
fn arb_cube(n: usize, o: usize) -> impl Strategy<Value = Cube> {
    (
        proptest::collection::vec(0..3u8, n),
        proptest::collection::vec(any::<bool>(), o),
        0..o,
    )
        .prop_map(move |(tris, mut outs, force)| {
            outs[force] = true; // at least one output
            let tris: Vec<Tri> = tris
                .iter()
                .map(|&t| match t {
                    0 => Tri::Zero,
                    1 => Tri::One,
                    _ => Tri::DontCare,
                })
                .collect();
            Cube::from_tris(&tris, &outs)
        })
}

/// A random cover with 1..=max_cubes cubes.
fn arb_cover(n: usize, o: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(n, o), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, o, cubes))
}

/// 64 packed input vectors over `n` inputs.
fn arb_vectors(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 64usize).prop_map(move |vs| {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        vs.into_iter().map(|v| v & mask).collect()
    })
}

/// One batch call must equal 64 scalar `simulate_bits` calls, lane for
/// lane.
fn batch_equals_scalar<S, F>(sim: &S, vectors: &[u64], mut scalar: F)
where
    S: BatchSim,
    F: FnMut(u64) -> Vec<bool>,
{
    let words = sim.simulate_batch(&pack_vectors(vectors, sim.batch_inputs()));
    for (lane, &bits) in vectors.iter().enumerate() {
        assert_eq!(
            unpack_lane(&words, lane),
            scalar(bits),
            "lane {lane}, bits {bits:#b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GnorPla: batch output equals 64 independent simulate_bits calls.
    #[test]
    fn gnor_batch_equals_scalar(f in arb_cover(7, 3, 10), vectors in arb_vectors(7)) {
        let pla = GnorPla::from_cover(&f);
        batch_equals_scalar(&pla, &vectors, |bits| pla.simulate_bits(bits));
    }

    /// ClassicalPla: batch output equals 64 independent simulate_bits calls.
    #[test]
    fn classical_batch_equals_scalar(f in arb_cover(7, 3, 10), vectors in arb_vectors(7)) {
        let pla = ClassicalPla::from_cover(&f);
        batch_equals_scalar(&pla, &vectors, |bits| pla.simulate_bits(bits));
    }

    /// Wpla: batch output equals 64 independent simulate_bits calls.
    #[test]
    fn wpla_batch_equals_scalar(f in arb_cover(6, 2, 8), vectors in arb_vectors(6)) {
        let wpla = Wpla::buffered_from_cover(&f);
        batch_equals_scalar(&wpla, &vectors, |bits| wpla.simulate_bits(bits));
    }

    /// DynamicPla: batch output equals 64 full precharge/evaluate cycles.
    #[test]
    fn dynamic_batch_equals_scalar(f in arb_cover(6, 2, 8), vectors in arb_vectors(6)) {
        let pla = GnorPla::from_cover(&f);
        let dynamic = DynamicPla::new(&pla);
        let mut stepper = dynamic.clone();
        batch_equals_scalar(&dynamic, &vectors, |bits| stepper.cycle_bits(bits));
    }

    /// The GNOR PLA and the classical PLA agree on every cover, both
    /// scalar and batched (the paper's functional-equivalence claim).
    #[test]
    fn gnor_equals_classical_batched(f in arb_cover(7, 3, 10), vectors in arb_vectors(7)) {
        let gnor = GnorPla::from_cover(&f);
        let classical = ClassicalPla::from_cover(&f);
        let packed = pack_vectors(&vectors, 7);
        assert_eq!(
            gnor.simulate_batch(&packed),
            classical.simulate_batch(&packed),
            "architectures disagree on some lane"
        );
        for bits in 0..128u64 {
            assert_eq!(gnor.simulate_bits(bits), classical.simulate_bits(bits));
        }
    }

    /// The batch engine agrees with the cover itself: simulate_batch of a
    /// mapped PLA equals Cover::eval_batch lane-for-lane.
    #[test]
    fn batch_agrees_with_cover_eval(f in arb_cover(6, 2, 8), vectors in arb_vectors(6)) {
        let pla = GnorPla::from_cover(&f);
        let packed = pack_vectors(&vectors, 6);
        assert_eq!(pla.simulate_batch(&packed), f.eval_batch(&packed));
    }
}
