//! Property-based contracts of the [`Simulator`] trait.
//!
//! Every implementor in the workspace — the specification [`Cover`]
//! itself, all four PLA architectures, the interconnect cascade, the
//! fault model and the FPGA mapping — must satisfy the same law: the
//! scalar `simulate_bits` adapter agrees lane-for-lane with the
//! width-generic `eval_words` path at every block width (`words ∈
//! {1, 2, 4}`, with the provided `eval_block` adapter covering `words =
//! 1`) on arbitrary vector streams, **including partial
//! (non-multiple-of-64) blocks**, whose unused lanes are garbage by
//! contract (`logic::eval::lane_mask`) and must never leak into valid
//! lanes — the multi-word sweep below actively poisons them to prove it.
//! The macro stamps out one proptest per implementor.
//!
//! On top of the per-type contract, the GNOR PLA must agree with the
//! classical PLA on every cover (the paper's functional-equivalence claim
//! behind the Table 1 area comparison), and with `Cover::eval_batch`
//! itself.
//!
//! The tiered-evaluation contract gets the same per-implementor
//! treatment: [`TruthTable::from_simulator`] must agree with its source
//! backend on **all** `2^n` assignments (the materialized serving tier
//! is only sound if the table is exact), and the table — itself a
//! [`Simulator`] — must satisfy the full scalar/block/words law,
//! poisoned tail lanes included.

use ambipla::core::sim::{
    lane_mask_words, pack_vectors, pack_vectors_words, unpack_lane, unpack_lane_words, LANES,
};
use ambipla::core::{ClassicalPla, DynamicPla, GnorPla, PlaNetwork, Simulator, TruthTable, Wpla};
use ambipla::fault::{DefectKind, DefectMap, FaultyGnorPla};
use ambipla::fpga::MappedNetwork;
use ambipla::logic::{Cover, Cube, Tri};
use proptest::prelude::*;

/// A random cube over `n` inputs and `o` outputs.
fn arb_cube(n: usize, o: usize) -> impl Strategy<Value = Cube> {
    (
        proptest::collection::vec(0..3u8, n),
        proptest::collection::vec(any::<bool>(), o),
        0..o,
    )
        .prop_map(move |(tris, mut outs, force)| {
            outs[force] = true; // at least one output
            let tris: Vec<Tri> = tris
                .iter()
                .map(|&t| match t {
                    0 => Tri::Zero,
                    1 => Tri::One,
                    _ => Tri::DontCare,
                })
                .collect();
            Cube::from_tris(&tris, &outs)
        })
}

/// A random cover with 1..=max_cubes cubes.
fn arb_cover(n: usize, o: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(n, o), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, o, cubes))
}

/// A stream of 1..=150 packed input vectors over `n` inputs: lengths are
/// drawn so most streams end in a partial block (150 = 2×64 + 22), and
/// many are shorter than one block outright.
fn arb_vector_stream(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 1..=150usize).prop_map(move |vs| {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        vs.into_iter().map(|v| v & mask).collect()
    })
}

/// The trait law: chunk the stream into (partial) blocks, evaluate each
/// through `eval_block`, and require every valid lane to equal the scalar
/// `simulate_bits` answer — plus the `eval_vectors` adapter on the tail.
fn assert_scalar_matches_block(sim: &dyn Simulator, vectors: &[u64]) {
    for chunk in vectors.chunks(LANES) {
        let words = sim.eval_block(&pack_vectors(chunk, sim.n_inputs()));
        assert_eq!(words.len(), sim.n_outputs(), "one word per output");
        for (lane, &bits) in chunk.iter().enumerate() {
            assert_eq!(
                unpack_lane(&words, lane),
                sim.simulate_bits(bits),
                "lane {lane} of a {}-lane block, bits {bits:#b}",
                chunk.len()
            );
        }
        // The provided adapter must implement exactly the same contract.
        let unpacked = sim.eval_vectors(chunk);
        for (lane, &bits) in chunk.iter().enumerate() {
            assert_eq!(
                unpacked[lane],
                sim.simulate_bits(bits),
                "eval_vectors lane {lane}"
            );
        }
    }
}

/// The width-generic law: at `words ∈ {1, 2, 4}`, every valid lane of an
/// `eval_words` block equals the scalar `simulate_bits` answer — with the
/// unused tail lanes deliberately poisoned, so an implementor that lets
/// garbage lanes bleed into valid ones (or reads lanes it should not)
/// fails here for every backend type.
fn assert_scalar_matches_words(sim: &dyn Simulator, vectors: &[u64]) {
    let (n, o) = (sim.n_inputs(), sim.n_outputs());
    for words in [1usize, 2, 4] {
        let mut packed = vec![0u64; n * words];
        let mut out = vec![0u64; o * words];
        for chunk in vectors.chunks(words * LANES) {
            pack_vectors_words(chunk, n, words, &mut packed);
            for i in 0..n {
                for w in 0..words {
                    packed[i * words + w] |= 0xdead_beef_cafe_f00du64
                        .rotate_left((i * words + w) as u32 * 7)
                        & !lane_mask_words(chunk.len(), w);
                }
            }
            sim.eval_words(&packed, &mut out, words);
            for (lane, &bits) in chunk.iter().enumerate() {
                assert_eq!(
                    unpack_lane_words(&out, lane, words),
                    sim.simulate_bits(bits),
                    "words {words} lane {lane} of a {}-lane block, bits {bits:#b}",
                    chunk.len()
                );
            }
        }
    }
}

/// One proptest per `Simulator` implementor: build the backend from a
/// random cover and check the scalar/block contract on a random stream.
macro_rules! simulator_contract {
    ($($name:ident: ($n:expr, $o:expr, $cubes:expr) => $build:expr;)+) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            $(
                #[test]
                fn $name(f in arb_cover($n, $o, $cubes), vectors in arb_vector_stream($n)) {
                    #[allow(clippy::redundant_closure_call)]
                    let sim = ($build)(&f);
                    assert_scalar_matches_block(&sim, &vectors);
                    assert_scalar_matches_words(&sim, &vectors);
                }
            )+
        }
    };
}

/// A faulty twin with deterministic defects: one stuck-on and one
/// stuck-off crosspoint, placed from the PLA's dimensions so every cover
/// gets a structurally valid (and usually function-changing) defect map.
fn faulty_from_cover(f: &Cover) -> FaultyGnorPla {
    let pla = GnorPla::from_cover(f);
    let d = pla.dimensions();
    let mut defects = DefectMap::clean(d.products, d.inputs, d.outputs);
    defects.set_input_defect(0, 0, DefectKind::StuckOn);
    defects.set_output_defect(d.outputs - 1, d.products - 1, DefectKind::StuckOff);
    FaultyGnorPla::new(pla, defects)
}

simulator_contract! {
    cover_scalar_matches_block: (7, 3, 10) => |f: &Cover| f.clone();
    gnor_scalar_matches_block: (7, 3, 10) => GnorPla::from_cover;
    classical_scalar_matches_block: (7, 3, 10) => ClassicalPla::from_cover;
    dynamic_scalar_matches_block: (6, 2, 8) => |f: &Cover| DynamicPla::new(&GnorPla::from_cover(f));
    wpla_scalar_matches_block: (6, 2, 8) => Wpla::buffered_from_cover;
    cascade_scalar_matches_block: (5, 2, 6) => |f: &Cover| PlaNetwork::chain_of_covers(std::slice::from_ref(f));
    faulty_scalar_matches_block: (6, 2, 8) => faulty_from_cover;
    mapped_scalar_matches_block: (7, 2, 8) => |f: &Cover| MappedNetwork::decompose(f, 4);
}

/// One proptest per `Simulator` implementor for the materialization
/// contract behind the serve tier: the packed table built from the
/// backend must agree with the backend's own scalar answer on **every**
/// one of the `2^n` assignments (not a sampled stream — the materialized
/// tier answers all of them by index), and the table must itself pass
/// the scalar/block/words law with poisoned tail lanes.
macro_rules! table_materialization_contract {
    ($($name:ident: ($n:expr, $o:expr, $cubes:expr) => $build:expr;)+) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            $(
                #[test]
                fn $name(f in arb_cover($n, $o, $cubes), vectors in arb_vector_stream($n)) {
                    #[allow(clippy::redundant_closure_call)]
                    let sim = ($build)(&f);
                    let table = TruthTable::from_simulator(&sim);
                    for bits in 0..1u64 << $n {
                        prop_assert_eq!(
                            table.lookup_bits(bits),
                            sim.simulate_bits(bits),
                            "table diverges from its source at assignment {:#b}",
                            bits
                        );
                    }
                    assert_scalar_matches_block(&table, &vectors);
                    assert_scalar_matches_words(&table, &vectors);
                }
            )+
        }
    };
}

table_materialization_contract! {
    cover_table_matches_exhaustively: (7, 3, 10) => |f: &Cover| f.clone();
    gnor_table_matches_exhaustively: (7, 3, 10) => GnorPla::from_cover;
    classical_table_matches_exhaustively: (7, 3, 10) => ClassicalPla::from_cover;
    dynamic_table_matches_exhaustively: (6, 2, 8) => |f: &Cover| DynamicPla::new(&GnorPla::from_cover(f));
    wpla_table_matches_exhaustively: (6, 2, 8) => Wpla::buffered_from_cover;
    cascade_table_matches_exhaustively: (5, 2, 6) => |f: &Cover| PlaNetwork::chain_of_covers(std::slice::from_ref(f));
    faulty_table_matches_exhaustively: (6, 2, 8) => faulty_from_cover;
    mapped_table_matches_exhaustively: (7, 2, 8) => |f: &Cover| MappedNetwork::decompose(f, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DynamicPla's stateful cycle simulation agrees with the stateless
    /// trait path — an independent scalar engine, so this is not a
    /// tautology of the contract above.
    #[test]
    fn dynamic_cycles_match_the_trait(f in arb_cover(6, 2, 8), vectors in arb_vector_stream(6)) {
        let pla = GnorPla::from_cover(&f);
        let dynamic = DynamicPla::new(&pla);
        let mut stepper = dynamic.clone();
        for &bits in &vectors {
            prop_assert_eq!(stepper.cycle_bits(bits), dynamic.simulate_bits(bits));
        }
    }

    /// Cover::eval_bits is the other independent scalar engine: the
    /// mapped PLA's trait path must reproduce it exactly.
    #[test]
    fn gnor_matches_cover_eval_bits(f in arb_cover(7, 3, 10), vectors in arb_vector_stream(7)) {
        let pla = GnorPla::from_cover(&f);
        for &bits in &vectors {
            prop_assert_eq!(pla.simulate_bits(bits), f.eval_bits(bits));
        }
    }

    /// The GNOR PLA and the classical PLA agree on every cover, both
    /// scalar and batched (the paper's functional-equivalence claim).
    #[test]
    fn gnor_equals_classical_batched(f in arb_cover(7, 3, 10), vectors in arb_vector_stream(7)) {
        let gnor = GnorPla::from_cover(&f);
        let classical = ClassicalPla::from_cover(&f);
        for chunk in vectors.chunks(LANES) {
            let packed = pack_vectors(chunk, 7);
            let mask = ambipla::logic::eval::lane_mask(chunk.len());
            for (g, c) in gnor.eval_block(&packed).iter().zip(&classical.eval_block(&packed)) {
                prop_assert_eq!(g & mask, c & mask, "architectures disagree on a valid lane");
            }
        }
    }

    /// The trait engine agrees with the cover itself: eval_block of a
    /// mapped PLA equals Cover::eval_batch lane-for-lane.
    #[test]
    fn block_agrees_with_cover_eval(f in arb_cover(6, 2, 8), vectors in arb_vector_stream(6)) {
        let pla = GnorPla::from_cover(&f);
        for chunk in vectors.chunks(LANES) {
            let packed = pack_vectors(chunk, 6);
            let mask = ambipla::logic::eval::lane_mask(chunk.len());
            for (p, c) in pla.eval_block(&packed).iter().zip(&f.eval_batch(&packed)) {
                prop_assert_eq!(p & mask, c & mask);
            }
        }
    }
}
