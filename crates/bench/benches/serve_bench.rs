//! Criterion micro-bench: the lane-packing simulation service against
//! per-request scalar `simulate_bits` calls.
//!
//! The workload is a service-scale PLA (32 inputs / 256 products / 16
//! outputs — the size regime where a hosted simulation service earns its
//! keep) with 512 single-vector requests in flight, i.e. eight full
//! 64-lane blocks. Three paths are measured:
//!
//! * `scalar_per_request` — the pre-service baseline: one
//!   `GnorPla::simulate_bits` call per request,
//! * `service_cold` — the batcher with the result cache **disabled**
//!   (capacity 0), so every block pays `eval_batch`: this isolates the
//!   lane-packing win and is what the ≥ 4× acceptance floor is asserted
//!   on,
//! * `service_warm` — the batcher with the cache on; the bench replays
//!   the same request stream, so steady-state blocks are cache hits,
//! * `service_instrumented` — the cold configuration with an
//!   [`EventRing`] recorder installed: the measured gap against
//!   `service_cold` is the full cost of the observability layer, and the
//!   bench asserts it stays within 5 %.
//!
//! Two further sections measure the knobs this service exposes:
//!
//! * a **block-width table** (`block_words` 1/2/4/8 on the cold path) —
//!   how much one flush's `eval_words` width buys end to end,
//! * a **shard-scaling run**: 8 registrations spread over 1 vs 2
//!   batcher shards under 4 submitting threads, wall-clock timed. The
//!   ≥ 1.5× two-shard floor is asserted only on hosts with ≥ 4
//!   hardware threads (on a single core both configurations share one
//!   CPU and the ratio is meaningless); the measured ratio is always
//!   printed and recorded in the JSON report,
//! * a **tiered-evaluation section**: a small hot sim (12 inputs, a
//!   dense unminimized product plane) served from the warm batched path
//!   (`TierPolicy::Disabled`, cache on) vs the materialized truth-table
//!   tier (`TierPolicy::Forced`). The request stream is Zipf-style:
//!   a few hot 64-lane blocks repeat (steady-state cache hits) while a
//!   long tail of unique blocks churns the LRU and pays `eval_words`
//!   on every miss — the traffic shape the materialized tier exists
//!   for. The ≥ 2× materialized-over-batched floor is asserted on
//!   ≥ 4-hw-thread hosts; a 0.5× sanity floor (the indexed path must
//!   never be *slower* than evaluating) is asserted everywhere.
//!
//! Results land in `BENCH_serve.json` (path override:
//! `AMBIPLA_BENCH_JSON`), following the `BENCH_sim.json` convention.
//! Set `AMBIPLA_BENCH_SMOKE=1` (CI) for a shorter run; the floors are
//! asserted either way.

use ambipla_core::{GnorPla, Simulator};
use ambipla_obs::EventRing;
use ambipla_serve::{reply_channel, ServeConfig, SimId, SimKey, SimService, Tier, TierPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use mcnc::RandomPla;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The service-scale workload: 32 inputs, 256 product terms, 16 outputs.
/// (The canonical 16/32/8 acceptance cover lives in `pla_sim_bench`; at
/// that size one scalar `simulate_bits` call costs ~0.5 µs, which is
/// below the per-request channel overhead of *any* request/response
/// service — batching pays off once requests carry real work.)
fn service_cover() -> logic::Cover {
    RandomPla::new(32, 16, 256)
        .seed(42)
        .literal_density(0.4)
        .build()
}

fn service_config(cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        // Long enough that only full blocks flush in steady state; short
        // enough that calibration tails cannot stall a sample.
        max_wait: Duration::from_micros(500),
        cache_capacity,
        // Ride the width-generic eval path: one flush serves 4 × 64
        // requests in a single eval_words call (cache entries stay keyed
        // per 64-lane sub-block, so the warm path is unaffected).
        block_words: 4,
        ..ServeConfig::default()
    }
}

fn bench_serve(c: &mut Criterion) {
    let smoke = std::env::var("AMBIPLA_BENCH_SMOKE").is_ok();
    let requests: u64 = 512; // 8 full 64-lane blocks in flight per round
    let cover = service_cover();
    let pla = GnorPla::from_cover(&cover);
    let vectors: Vec<u64> = (0..requests)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff_ffff)
        .collect();

    let cold = SimService::start(service_config(0)).expect("valid config");
    let cold_id = cold.register(cover.clone());
    let warm = SimService::start(service_config(4096)).expect("valid config");
    let warm_id = warm.register(cover.clone());
    let ring = Arc::new(EventRing::with_capacity(1 << 16));
    let instrumented =
        SimService::start_with_recorder(service_config(0), ring.clone()).expect("valid config");
    let instrumented_id = instrumented.register(cover.clone());

    {
        let mut group = c.benchmark_group("serve_32i256p16o");
        group.sample_size(if smoke { 5 } else { 15 });
        group.bench_function("scalar_per_request", |b| {
            b.iter(|| {
                vectors
                    .iter()
                    .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                    .collect::<Vec<_>>()
            })
        });
        for (label, service, id) in [
            ("service_cold", &cold, cold_id),
            ("service_warm", &warm, warm_id),
            ("service_instrumented", &instrumented, instrumented_id),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let (sink, stream) = reply_channel();
                    for (tag, &bits) in vectors.iter().enumerate() {
                        service.submit_tagged(id, bits, tag as u64, &sink);
                    }
                    (0..vectors.len())
                        .map(|_| stream.recv())
                        .collect::<Vec<_>>()
                })
            });
        }
        group.finish();
    }

    let scalar = c
        .median_ns("scalar_per_request")
        .expect("scalar measurement recorded");
    for label in ["service_cold", "service_warm", "service_instrumented"] {
        let service = c.median_ns(label).expect("service measurement recorded");
        println!(
            "serve_32i256p16o/{label:<14} speedup: {:.1}x ({requests} in-flight requests)",
            scalar / service
        );
    }
    let cold_speedup = scalar / c.median_ns("service_cold").expect("cold recorded");
    assert!(
        cold_speedup >= 4.0,
        "acceptance floor: the lane-packing service must be ≥ 4× faster \
         than per-request scalar simulate_bits at 64+ concurrent requests \
         even with the cache disabled, measured {cold_speedup:.1}x"
    );

    // Metrics-overhead floor: a ring-buffer recorder on the cold path
    // must cost within 5 % of the recorder-disabled service. Medians of
    // the same sample count keep run-to-run noise mostly out of the
    // ratio, but on a single-core host the batcher, the submitter and
    // every other process share one CPU and a scheduler hiccup can
    // swing the ratio by tens of percent in either direction — so the
    // floor is asserted on ≥ 2-thread hosts and the measured value is
    // always printed and JSON-tracked.
    let cold_ns = c.median_ns("service_cold").expect("cold recorded");
    let instr_ns = c
        .median_ns("service_instrumented")
        .expect("instrumented recorded");
    let overhead = instr_ns / cold_ns;
    println!(
        "serve_32i256p16o/instrumented overhead: {:.1}% ({} events recorded, {} dropped)",
        100.0 * (overhead - 1.0),
        ring.pushed(),
        ring.dropped()
    );
    assert!(
        ring.pushed() > 0,
        "the instrumented service must have emitted events into the ring"
    );
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hw_threads >= 2 {
        assert!(
            overhead <= 1.05,
            "metrics-overhead floor: the instrumented service must stay within \
             5% of the recorder-disabled service, measured {:.1}%",
            100.0 * (overhead - 1.0)
        );
    } else {
        println!(
            "serve_32i256p16o: 5% overhead floor not asserted \
             ({hw_threads} hw thread — single-core medians are noise-bound)"
        );
    }

    let snap = cold.shutdown();
    println!(
        "service_cold final stats: occupancy {:.1}%, p50 flush ≤ {:.1} µs",
        100.0 * snap.lane_occupancy,
        snap.p50_flush_ns as f64 / 1_000.0
    );
    instrumented.shutdown();
    let snap = warm.shutdown();
    println!(
        "service_warm final stats: cache hit rate {:.1}% ({} hits / {} misses)",
        100.0 * snap.cache_hit_rate,
        snap.cache_hits,
        snap.cache_misses
    );

    // --- block-width table: cold service at block_words 1/2/4/8 ------
    {
        let mut group = c.benchmark_group("serve_block_words");
        group.sample_size(if smoke { 5 } else { 15 });
        for &bw in &BLOCK_WIDTHS {
            let service = SimService::start(ServeConfig {
                block_words: bw,
                ..service_config(0)
            })
            .expect("valid config");
            let id = service.register(cover.clone());
            group.bench_function(format!("bw{bw}"), |b| {
                b.iter(|| {
                    let (sink, stream) = reply_channel();
                    for (tag, &bits) in vectors.iter().enumerate() {
                        service.submit_tagged(id, bits, tag as u64, &sink);
                    }
                    (0..vectors.len())
                        .map(|_| stream.recv())
                        .collect::<Vec<_>>()
                })
            });
            service.shutdown();
        }
        group.finish();
    }
    let bw_base = c.median_ns("bw1").expect("bw1 recorded") / requests as f64;
    let mut bw_rows = Vec::new();
    println!("serve_block_words (cold path, ns per request):");
    for &bw in &BLOCK_WIDTHS {
        let ns = c
            .median_ns(&format!("bw{bw}"))
            .expect("block width recorded")
            / requests as f64;
        let ratio = bw_base / ns;
        println!(
            "  block_words={bw} ({:>3} lanes/flush): {ns:7.1} ns/request, {ratio:.2}x vs bw=1",
            bw * 64
        );
        bw_rows.push((bw, ns, ratio));
    }

    // --- tiered evaluation: warm batched path vs materialized table --
    let (tier_batched_ns, tier_mat_ns, tier_hit_rate) = bench_tiers(c, smoke);
    let tier_speedup = tier_batched_ns / tier_mat_ns;
    println!(
        "serve_tier_12i: batched warm {tier_batched_ns:.1} ns/request \
         ({:.0}% cache hit rate), materialized {tier_mat_ns:.1} ns/request → \
         {tier_speedup:.2}x",
        100.0 * tier_hit_rate
    );
    assert!(
        tier_speedup >= 0.5,
        "sanity floor: the materialized indexed path must never fall behind \
         the batched path by 2×, measured {tier_speedup:.2}x"
    );
    {
        let hw_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if hw_threads >= 4 {
            assert!(
                tier_speedup >= 2.0,
                "acceptance floor: the materialized tier must serve the small \
                 hot sim ≥ 2× faster than the warm batched path under \
                 Zipf-style traffic, measured {tier_speedup:.2}x"
            );
        } else {
            println!(
                "serve_tier_12i: ≥2x floor not asserted ({hw_threads} hw \
                 threads < 4 — submitter and batcher share one CPU here)"
            );
        }
    }

    // --- shard scaling: 8 registrations, 4 submitters, 1 vs 2 shards -
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rounds = if smoke { 2 } else { 4 };
    let single = shard_throughput(1, &cover, rounds);
    let sharded = shard_throughput(2, &cover, rounds);
    let shard_ratio = single / sharded;
    println!(
        "serve_shards: 1 shard {single:.1} ns/request, 2 shards {sharded:.1} ns/request → \
         {shard_ratio:.2}x ({hw_threads} hw threads)"
    );
    if hw_threads >= 4 {
        assert!(
            shard_ratio >= 1.5,
            "acceptance floor: 2 batcher shards must be ≥ 1.5× the single-shard \
             throughput on a multi-core host, measured {shard_ratio:.2}x"
        );
    } else {
        println!(
            "serve_shards: ≥1.5x floor not asserted ({hw_threads} hw threads < 4 — \
             shards share one CPU here)"
        );
    }

    write_json(
        c,
        &ServeReport {
            cold_speedup,
            warm_speedup: scalar / c.median_ns("service_warm").expect("warm recorded"),
            instrumented_overhead: overhead,
            block_words: bw_rows,
            tier_batched_ns,
            tier_materialized_ns: tier_mat_ns,
            tier_speedup,
            tier_hit_rate,
            hw_threads,
            single_shard_ns: single,
            two_shard_ns: sharded,
            shard_ratio,
        },
    );
}

/// Flush widths of the block-width table (lanes per flush = `bw × 64`).
const BLOCK_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The tiered-evaluation workload: a 12-input / 8-output PLA with a
/// dense, unminimized 2048-term product plane (a raw two-level
/// extraction, pre-espresso). Small enough that its full truth table is
/// 4 KiB of packed words; expensive enough per `eval_words` call that
/// re-evaluating a missed block dwarfs an indexed load — the trade the
/// materialized tier is built on.
fn small_hot_cover() -> logic::Cover {
    RandomPla::new(12, 8, 2048)
        .seed(7)
        .literal_density(0.35)
        .build()
}

/// splitmix64 finalizer — drives the unique-tail stream so tail
/// sub-block patterns never cycle back into the cache's working set
/// (a plain `counter * M mod 2^12` walk has period 64 sub-blocks,
/// which a 256-entry LRU would happily absorb).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Measure the small-hot-sim workload end to end on the warm batched
/// path (`TierPolicy::Disabled`, cache on) and the materialized tier
/// (`TierPolicy::Forced`), under the same Zipf-style request stream:
/// within every 8-block round, even blocks replay one of three hot
/// 64-lane patterns (rank-skewed 2:1:1, steady-state cache hits) and
/// odd blocks are fresh unique vectors (cache misses that churn the
/// LRU and pay a full `eval_words`). Returns
/// `(batched_ns_per_request, materialized_ns_per_request, hit_rate)`.
fn bench_tiers(c: &mut Criterion, smoke: bool) -> (f64, f64, f64) {
    const SUB_BLOCKS: usize = 8; // 512 requests per iteration
    const HOT: [u64; 4] = [0, 0, 1, 2]; // Zipf-style rank skew over 3 patterns
    let cover = small_hot_cover();
    let pla = GnorPla::from_cover(&cover);

    // One 64-lane hot pattern per rank; `tail` advances forever so tail
    // blocks never repeat across iterations (or services).
    let hot_lane =
        |p: u64, lane: u64| (lane.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (p * 3)) & 0xfff;
    let round_vectors = |tail: &mut u64| -> Vec<u64> {
        let mut vectors = Vec::with_capacity(SUB_BLOCKS * 64);
        for k in 0..SUB_BLOCKS as u64 {
            for lane in 0..64u64 {
                if k % 2 == 0 {
                    vectors.push(hot_lane(HOT[(k as usize / 2) % HOT.len()], lane));
                } else {
                    *tail += 1;
                    vectors.push(mix64(*tail) & 0xfff);
                }
            }
        }
        vectors
    };

    // The batched service keeps its cache: big enough to hold the hot
    // head, far too small for the unique tail — i.e. a working set that
    // exceeds the cache, which is exactly when tiering pays.
    let batched = SimService::start(ServeConfig {
        tier_policy: TierPolicy::Disabled,
        ..service_config(256)
    })
    .expect("valid config");
    let batched_id = batched.register_sim(Arc::new(GnorPla::from_cover(&cover)), SimKey::new(12));
    let materialized = SimService::start(ServeConfig {
        tier_policy: TierPolicy::Forced,
        ..service_config(256)
    })
    .expect("valid config");
    let mat_id = materialized.register_sim(Arc::new(GnorPla::from_cover(&cover)), SimKey::new(13));

    {
        let mut group = c.benchmark_group("serve_tier_12i");
        group.sample_size(if smoke { 5 } else { 15 });
        for (label, service, id) in [
            ("tier_batched_warm", &batched, batched_id),
            ("tier_materialized", &materialized, mat_id),
        ] {
            let mut tail = 0u64;
            group.bench_function(label, |b| {
                b.iter(|| {
                    let vectors = round_vectors(&mut tail);
                    let (sink, stream) = reply_channel();
                    for (tag, &bits) in vectors.iter().enumerate() {
                        service.submit_tagged(id, bits, tag as u64, &sink);
                    }
                    (0..vectors.len())
                        .map(|_| stream.recv())
                        .collect::<Vec<_>>()
                })
            });
        }
        group.finish();
    }

    // Both tiers answered from the same function: spot-check the last
    // reply set bit-for-bit against the scalar oracle.
    for (service, id) in [(&batched, batched_id), (&materialized, mat_id)] {
        let reply = service.submit(id, 0xa5a).wait_reply();
        assert_eq!(reply.outputs, pla.simulate_bits(0xa5a));
    }
    assert_eq!(
        materialized.stats_for(mat_id).tier,
        Tier::Materialized,
        "the forced-tier registration must be serving from its table"
    );
    assert_eq!(batched.stats_for(batched_id).tier, Tier::Batched);

    let requests = (SUB_BLOCKS * 64) as f64;
    let batched_ns = c
        .median_ns("tier_batched_warm")
        .expect("batched tier recorded")
        / requests;
    let mat_ns = c
        .median_ns("tier_materialized")
        .expect("materialized tier recorded")
        / requests;
    let snap = batched.shutdown();
    materialized.shutdown();
    (batched_ns, mat_ns, snap.cache_hit_rate)
}

/// Wall-clock shard-scaling measurement: a cold `shards`-shard service
/// holding 8 registrations of `cover`, hammered by 4 submitting threads
/// (2 registrations each, 64-request pipelined bursts). Returns the
/// best-of-`rounds` ns-per-request — wall clock, because the point is
/// aggregate throughput across batcher threads, which a single-threaded
/// criterion loop cannot see.
fn shard_throughput(shards: usize, cover: &logic::Cover, rounds: usize) -> f64 {
    const REGS: usize = 8;
    const THREADS: usize = 4;
    const PER_REG: u64 = 512;
    let service = SimService::start(ServeConfig {
        shards,
        ..service_config(0)
    })
    .expect("valid config");
    let ids: Vec<SimId> = (0..REGS)
        .map(|k| service.register_sim(Arc::new(GnorPla::from_cover(cover)), SimKey::new(k as u64)))
        .collect();
    if shards > 1 {
        let used: std::collections::BTreeSet<usize> =
            ids.iter().map(|&id| service.shard_of(id)).collect();
        assert!(used.len() > 1, "8 keys must spread over {shards} shards");
    }
    let total = (REGS as u64 * PER_REG) as f64;
    let mut best = f64::INFINITY;
    // One extra untimed round warms allocators and thread stacks.
    for round in 0..=rounds {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ids = &ids;
                let service = &service;
                s.spawn(move || {
                    let mine = &ids[t * REGS / THREADS..(t + 1) * REGS / THREADS];
                    let (sink, stream) = reply_channel();
                    let mut in_flight = 0u64;
                    for i in 0..PER_REG {
                        for &id in mine {
                            let bits = (t as u64) << 32 | i;
                            service.submit_tagged(id, bits & 0xffff_ffff, i, &sink);
                            in_flight += 1;
                            if in_flight == 64 {
                                for _ in 0..in_flight {
                                    std::hint::black_box(stream.recv());
                                }
                                in_flight = 0;
                            }
                        }
                    }
                    for _ in 0..in_flight {
                        std::hint::black_box(stream.recv());
                    }
                });
            }
        });
        let ns = t0.elapsed().as_nanos() as f64 / total;
        if round > 0 {
            best = best.min(ns);
        }
    }
    service.shutdown();
    best
}

/// Everything the JSON report records.
struct ServeReport {
    cold_speedup: f64,
    warm_speedup: f64,
    instrumented_overhead: f64,
    block_words: Vec<(usize, f64, f64)>,
    tier_batched_ns: f64,
    tier_materialized_ns: f64,
    tier_speedup: f64,
    tier_hit_rate: f64,
    hw_threads: usize,
    single_shard_ns: f64,
    two_shard_ns: f64,
    shard_ratio: f64,
}

/// Emit `BENCH_serve.json` following the `BENCH_sim.json` /
/// `AMBIPLA_BENCH_JSON` convention.
fn write_json(_c: &Criterion, r: &ServeReport) {
    let path =
        std::env::var("AMBIPLA_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let mode = if std::env::var("AMBIPLA_BENCH_SMOKE").is_ok() {
        "smoke"
    } else {
        "full"
    };
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"serve\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str("  \"workload\": \"32i256p16o\",\n");
    body.push_str(&format!(
        "  \"service_vs_scalar\": {{\"cold_speedup\": {:.3}, \"warm_speedup\": {:.3}, \
         \"instrumented_overhead\": {:.4}}},\n",
        r.cold_speedup, r.warm_speedup, r.instrumented_overhead
    ));
    body.push_str("  \"block_words\": [\n");
    for (k, &(bw, ns, ratio)) in r.block_words.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"block_words\": {bw}, \"lanes_per_flush\": {}, \"ns_per_request\": {ns:.1}, \
             \"throughput_vs_bw1\": {ratio:.3}}}{}\n",
            bw * 64,
            if k + 1 == r.block_words.len() {
                ""
            } else {
                ","
            }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"tiered_evaluation\": {{\"workload\": \"12i2048p8o\", \
         \"batched_warm_ns_per_request\": {:.1}, \
         \"materialized_ns_per_request\": {:.1}, \"materialized_speedup\": {:.3}, \
         \"batched_cache_hit_rate\": {:.3}, \"floor_asserted\": {}}},\n",
        r.tier_batched_ns,
        r.tier_materialized_ns,
        r.tier_speedup,
        r.tier_hit_rate,
        r.hw_threads >= 4
    ));
    body.push_str(&format!(
        "  \"shard_scaling\": {{\"hw_threads\": {}, \"single_shard_ns_per_request\": {:.1}, \
         \"two_shard_ns_per_request\": {:.1}, \"two_shard_speedup\": {:.3}, \
         \"floor_asserted\": {}}}\n",
        r.hw_threads,
        r.single_shard_ns,
        r.two_shard_ns,
        r.shard_ratio,
        r.hw_threads >= 4
    ));
    body.push_str("}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
