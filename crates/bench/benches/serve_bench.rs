//! Criterion micro-bench: the lane-packing simulation service against
//! per-request scalar `simulate_bits` calls.
//!
//! The workload is a service-scale PLA (32 inputs / 256 products / 16
//! outputs — the size regime where a hosted simulation service earns its
//! keep) with 512 single-vector requests in flight, i.e. eight full
//! 64-lane blocks. Three paths are measured:
//!
//! * `scalar_per_request` — the pre-service baseline: one
//!   `GnorPla::simulate_bits` call per request,
//! * `service_cold` — the batcher with the result cache **disabled**
//!   (capacity 0), so every block pays `eval_batch`: this isolates the
//!   lane-packing win and is what the ≥ 4× acceptance floor is asserted
//!   on,
//! * `service_warm` — the batcher with the cache on; the bench replays
//!   the same request stream, so steady-state blocks are cache hits,
//! * `service_instrumented` — the cold configuration with an
//!   [`EventRing`] recorder installed: the measured gap against
//!   `service_cold` is the full cost of the observability layer, and the
//!   bench asserts it stays within 5 %.
//!
//! Set `AMBIPLA_BENCH_SMOKE=1` (CI) for a shorter run; the floors are
//! asserted either way.

use ambipla_core::{GnorPla, Simulator};
use ambipla_obs::EventRing;
use ambipla_serve::{reply_channel, ServeConfig, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use mcnc::RandomPla;
use std::sync::Arc;
use std::time::Duration;

/// The service-scale workload: 32 inputs, 256 product terms, 16 outputs.
/// (The canonical 16/32/8 acceptance cover lives in `pla_sim_bench`; at
/// that size one scalar `simulate_bits` call costs ~0.5 µs, which is
/// below the per-request channel overhead of *any* request/response
/// service — batching pays off once requests carry real work.)
fn service_cover() -> logic::Cover {
    RandomPla::new(32, 16, 256)
        .seed(42)
        .literal_density(0.4)
        .build()
}

fn service_config(cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        // Long enough that only full blocks flush in steady state; short
        // enough that calibration tails cannot stall a sample.
        max_wait: Duration::from_micros(500),
        cache_capacity,
        // Ride the width-generic eval path: one flush serves 4 × 64
        // requests in a single eval_words call (cache entries stay keyed
        // per 64-lane sub-block, so the warm path is unaffected).
        block_words: 4,
        ..ServeConfig::default()
    }
}

fn bench_serve(c: &mut Criterion) {
    let smoke = std::env::var("AMBIPLA_BENCH_SMOKE").is_ok();
    let requests: u64 = 512; // 8 full 64-lane blocks in flight per round
    let cover = service_cover();
    let pla = GnorPla::from_cover(&cover);
    let vectors: Vec<u64> = (0..requests)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff_ffff)
        .collect();

    let cold = SimService::start(service_config(0));
    let cold_id = cold.register(cover.clone());
    let warm = SimService::start(service_config(4096));
    let warm_id = warm.register(cover.clone());
    let ring = Arc::new(EventRing::with_capacity(1 << 16));
    let instrumented = SimService::start_with_recorder(service_config(0), ring.clone());
    let instrumented_id = instrumented.register(cover.clone());

    {
        let mut group = c.benchmark_group("serve_32i256p16o");
        group.sample_size(if smoke { 5 } else { 15 });
        group.bench_function("scalar_per_request", |b| {
            b.iter(|| {
                vectors
                    .iter()
                    .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                    .collect::<Vec<_>>()
            })
        });
        for (label, service, id) in [
            ("service_cold", &cold, cold_id),
            ("service_warm", &warm, warm_id),
            ("service_instrumented", &instrumented, instrumented_id),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let (sink, stream) = reply_channel();
                    for (tag, &bits) in vectors.iter().enumerate() {
                        service.submit_tagged(id, bits, tag as u64, &sink);
                    }
                    (0..vectors.len())
                        .map(|_| stream.recv())
                        .collect::<Vec<_>>()
                })
            });
        }
        group.finish();
    }

    let scalar = c
        .median_ns("scalar_per_request")
        .expect("scalar measurement recorded");
    for label in ["service_cold", "service_warm", "service_instrumented"] {
        let service = c.median_ns(label).expect("service measurement recorded");
        println!(
            "serve_32i256p16o/{label:<14} speedup: {:.1}x ({requests} in-flight requests)",
            scalar / service
        );
    }
    let cold_speedup = scalar / c.median_ns("service_cold").expect("cold recorded");
    assert!(
        cold_speedup >= 4.0,
        "acceptance floor: the lane-packing service must be ≥ 4× faster \
         than per-request scalar simulate_bits at 64+ concurrent requests \
         even with the cache disabled, measured {cold_speedup:.1}x"
    );

    // Metrics-overhead floor: a ring-buffer recorder on the cold path
    // must cost within 5 % of the recorder-disabled service. Medians of
    // the same sample count keep run-to-run noise mostly out of the
    // ratio.
    let cold_ns = c.median_ns("service_cold").expect("cold recorded");
    let instr_ns = c
        .median_ns("service_instrumented")
        .expect("instrumented recorded");
    let overhead = instr_ns / cold_ns;
    println!(
        "serve_32i256p16o/instrumented overhead: {:.1}% ({} events recorded, {} dropped)",
        100.0 * (overhead - 1.0),
        ring.pushed(),
        ring.dropped()
    );
    assert!(
        ring.pushed() > 0,
        "the instrumented service must have emitted events into the ring"
    );
    assert!(
        overhead <= 1.05,
        "metrics-overhead floor: the instrumented service must stay within \
         5% of the recorder-disabled service, measured {:.1}%",
        100.0 * (overhead - 1.0)
    );

    let snap = cold.shutdown();
    println!(
        "service_cold final stats: occupancy {:.1}%, p50 flush ≤ {:.1} µs",
        100.0 * snap.lane_occupancy,
        snap.p50_flush_ns as f64 / 1_000.0
    );
    instrumented.shutdown();
    let snap = warm.shutdown();
    println!(
        "service_warm final stats: cache hit rate {:.1}% ({} hits / {} misses)",
        100.0 * snap.cache_hit_rate,
        snap.cache_hits,
        snap.cache_misses
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
