//! Criterion micro-bench: Monte-Carlo yield analysis (defect sampling,
//! repair matching, fault-simulation verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fault::yield_curve;
use logic::Cover;

fn bench_yield(c: &mut Criterion) {
    let f = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let mut group = c.benchmark_group("yield");
    group.sample_size(10);
    for &trials in &[20usize, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(trials),
            &trials,
            |b, &trials| {
                b.iter(|| yield_curve(std::hint::black_box(&f), 4, &[0.01, 0.05], trials, 7))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
