//! Criterion micro-bench: output-phase optimization and Doppio-Espresso
//! WPLA synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logic::Cover;
use mcnc::RandomPla;
use phaseopt::{optimize_output_phases, synthesize_wpla, PhaseStrategy};

fn bench_phaseopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("phaseopt");
    group.sample_size(10);
    for &(inputs, outputs, products) in &[(6usize, 2usize, 12usize), (6, 3, 18)] {
        let f = RandomPla::new(inputs, outputs, products)
            .seed(3)
            .literal_density(0.4)
            .build();
        let dc = Cover::new(inputs, outputs);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{inputs}i{outputs}o{products}p")),
            &(&f, &dc),
            |b, (f, dc)| {
                b.iter(|| {
                    optimize_output_phases(f, dc, std::hint::black_box(PhaseStrategy::Greedy))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wpla", format!("{inputs}i{outputs}o{products}p")),
            &(&f, &dc),
            |b, (f, dc)| b.iter(|| synthesize_wpla(f, dc)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phaseopt);
criterion_main!(benches);
