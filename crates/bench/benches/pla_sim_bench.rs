//! Criterion micro-bench: GNOR-PLA functional simulation throughput
//! (mapping, exhaustive simulation, programming round-trip) and the
//! bit-parallel [`Simulator`] engine against sequential `simulate_bits`
//! calls.
//!
//! The batch section prints an explicit `speedup:` line per architecture
//! and asserts the acceptance floor: on a 16-input / 32-term / 8-output
//! cover, `GnorPla`'s `Simulator::eval_block` must be at least 8× faster
//! than 64 independent `simulate_bits` calls.
//!
//! The width section measures `eval_words` at 1 / 2 / 4 / 8 lane words
//! per signal (64–512 vectors per call, caller-reused buffers), prints a
//! per-vector scaling table, asserts that `words = 4` is **not slower
//! per vector** than `words = 1` (≥ 1.0× throughput), and emits
//! machine-readable `BENCH_sim.json` (override the path with
//! `AMBIPLA_BENCH_JSON`) so the perf trajectory has simulation
//! datapoints alongside `BENCH_espresso.json`.

use ambipla_core::sim::{pack_vectors, pack_vectors_words};
use ambipla_core::{ClassicalPla, GnorPla, Simulator, Wpla};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcnc::RandomPla;

/// Samples per benchmark: 5 under `AMBIPLA_BENCH_SMOKE` (CI), 15 in a
/// full run — the same convention as `espresso_bench` / `serve_bench`.
fn samples() -> usize {
    if std::env::var("AMBIPLA_BENCH_SMOKE").is_ok() {
        5
    } else {
        15
    }
}

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnor_pla");
    group.sample_size(samples());
    for bench in mcnc::table1_benchmarks_env() {
        let pla = GnorPla::from_cover(&bench.on);
        group.bench_with_input(BenchmarkId::new("map", bench.name), &bench.on, |b, on| {
            b.iter(|| GnorPla::from_cover(std::hint::black_box(on)))
        });
        group.bench_with_input(
            BenchmarkId::new("simulate_1k", bench.name),
            &pla,
            |b, pla| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for bits in 0..1024u64 {
                        acc += usize::from(pla.simulate_bits(std::hint::black_box(bits))[0]);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("program", bench.name), &pla, |b, pla| {
            b.iter(|| pla.program(std::hint::black_box(1e-3)))
        });
    }
    group.finish();
}

/// The acceptance-criteria workload: 16 inputs, 32 product terms, 8
/// outputs.
fn acceptance_cover() -> logic::Cover {
    RandomPla::new(16, 8, 32)
        .seed(42)
        .literal_density(0.4)
        .build()
}

fn bench_batch(c: &mut Criterion) {
    let cover = acceptance_cover();
    let vectors: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff)
        .collect();
    let packed = pack_vectors(&vectors, cover.n_inputs());

    let gnor = GnorPla::from_cover(&cover);
    let classical = ClassicalPla::from_cover(&cover);
    let wpla = Wpla::buffered_from_cover(&cover);

    {
        let mut group = c.benchmark_group("batch_16i32p8o");
        group.sample_size(samples());
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "gnor"),
            &(&gnor, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "gnor"),
            &(&gnor, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "classical"),
            &(&classical, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "classical"),
            &(&classical, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "wpla"),
            &(&wpla, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "wpla"),
            &(&wpla, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.finish();
    }

    for arch in ["gnor", "classical", "wpla"] {
        let scalar = c
            .median_ns(&format!("scalar_64/{arch}"))
            .expect("scalar measurement recorded");
        let batch = c
            .median_ns(&format!("batch_64/{arch}"))
            .expect("batch measurement recorded");
        let speedup = scalar / batch;
        println!("batch_16i32p8o/{arch:<10} speedup: {speedup:.1}x (64 vectors per call)");
        if arch == "gnor" {
            assert!(
                speedup >= 8.0,
                "acceptance floor: eval_block must be ≥ 8× faster than 64 \
                 sequential simulate_bits calls, measured {speedup:.1}x"
            );
        }
    }
}

/// Lane-word widths of the scaling table: 64 to 512 vectors per call.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Width scaling of the redesigned `eval_words` path on the acceptance
/// cover: same per-vector work at every width, so wider calls may only
/// win (amortized per-call overhead, per-literal control decode shared
/// across lane words). Runs after `bench_batch` so the JSON report can
/// fold in the batch-vs-scalar medians already recorded on `c`.
fn bench_width(c: &mut Criterion) {
    let cover = acceptance_cover();
    let gnor = GnorPla::from_cover(&cover);
    let n = Simulator::n_inputs(&gnor);
    let o = Simulator::n_outputs(&gnor);

    {
        let mut group = c.benchmark_group("width_16i32p8o");
        group.sample_size(samples());
        for &words in &WIDTHS {
            let vectors: Vec<u64> = (0..(words * 64) as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff)
                .collect();
            let mut packed = vec![0u64; n * words];
            pack_vectors_words(&vectors, n, words, &mut packed);
            // The caller-owned output buffer is reused across iterations —
            // the allocation-free contract the redesign establishes.
            let mut out = vec![0u64; o * words];
            group.bench_with_input(
                BenchmarkId::new("eval_words", words),
                &packed,
                |b, packed| {
                    b.iter(|| {
                        gnor.eval_words(std::hint::black_box(packed), &mut out, words);
                        out[0]
                    })
                },
            );
        }
        group.finish();
    }

    let per_vector = |words: usize| {
        c.median_ns(&format!("eval_words/{words}"))
            .expect("width measurement recorded")
            / (words * 64) as f64
    };
    let base = per_vector(1);
    println!("width_16i32p8o (gnor eval_words, ns per vector):");
    let mut width_rows = Vec::new();
    for &words in &WIDTHS {
        let ns = per_vector(words);
        let ratio = base / ns;
        println!(
            "  words={words} ({:>3} lanes): {ns:7.2} ns/vector, {ratio:.2}x vs words=1",
            words * 64
        );
        width_rows.push((words, ns, ratio));
    }
    let &(_, _, ratio4) = width_rows
        .iter()
        .find(|&&(w, ..)| w == 4)
        .expect("words=4 measured");
    write_json(c, &width_rows);
    assert!(
        ratio4 >= 1.0,
        "acceptance floor: eval_words at words=4 must not be slower per \
         vector than words=1, measured {ratio4:.2}x"
    );
}

/// Emit `BENCH_sim.json` (batch-vs-scalar speedups + width scaling),
/// following the `BENCH_espresso.json` / `AMBIPLA_BENCH_JSON` convention.
fn write_json(c: &Criterion, width_rows: &[(usize, f64, f64)]) {
    let path = std::env::var("AMBIPLA_BENCH_JSON").unwrap_or_else(|_| "BENCH_sim.json".to_string());
    let mode = if std::env::var("AMBIPLA_BENCH_SMOKE").is_ok() {
        "smoke"
    } else {
        "full"
    };
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"sim\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str("  \"workload\": \"16i32p8o\",\n");
    body.push_str("  \"batch_vs_scalar\": [\n");
    let archs = ["gnor", "classical", "wpla"];
    for (k, arch) in archs.iter().enumerate() {
        let scalar = c
            .median_ns(&format!("scalar_64/{arch}"))
            .expect("scalar measurement recorded");
        let batch = c
            .median_ns(&format!("batch_64/{arch}"))
            .expect("batch measurement recorded");
        body.push_str(&format!(
            "    {{\"arch\": \"{arch}\", \"scalar_ns_per_block\": {scalar:.1}, \
             \"batch_ns_per_block\": {batch:.1}, \"speedup\": {:.3}}}{}\n",
            scalar / batch,
            if k + 1 == archs.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n  \"width_scaling\": [\n");
    for (k, &(words, ns, ratio)) in width_rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"words\": {words}, \"lanes\": {}, \"ns_per_vector\": {ns:.3}, \
             \"throughput_vs_words1\": {ratio:.3}}}{}\n",
            words * 64,
            if k + 1 == width_rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pla, bench_batch, bench_width);
criterion_main!(benches);
