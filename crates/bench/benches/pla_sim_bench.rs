//! Criterion micro-bench: GNOR-PLA functional simulation throughput
//! (mapping, exhaustive simulation, programming round-trip) and the
//! 64-lane [`Simulator`] engine against 64 sequential `simulate_bits`
//! calls.
//!
//! The batch section prints an explicit `speedup:` line per architecture
//! and asserts the acceptance floor: on a 16-input / 32-term / 8-output
//! cover, `GnorPla`'s `Simulator::eval_block` must be at least 8× faster than 64
//! independent `simulate_bits` calls.

use ambipla_core::sim::pack_vectors;
use ambipla_core::{ClassicalPla, GnorPla, Simulator, Wpla};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcnc::RandomPla;

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnor_pla");
    for bench in mcnc::table1_benchmarks_env() {
        let pla = GnorPla::from_cover(&bench.on);
        group.bench_with_input(BenchmarkId::new("map", bench.name), &bench.on, |b, on| {
            b.iter(|| GnorPla::from_cover(std::hint::black_box(on)))
        });
        group.bench_with_input(
            BenchmarkId::new("simulate_1k", bench.name),
            &pla,
            |b, pla| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for bits in 0..1024u64 {
                        acc += usize::from(pla.simulate_bits(std::hint::black_box(bits))[0]);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("program", bench.name), &pla, |b, pla| {
            b.iter(|| pla.program(std::hint::black_box(1e-3)))
        });
    }
    group.finish();
}

/// The acceptance-criteria workload: 16 inputs, 32 product terms, 8
/// outputs.
fn acceptance_cover() -> logic::Cover {
    RandomPla::new(16, 8, 32)
        .seed(42)
        .literal_density(0.4)
        .build()
}

fn bench_batch(c: &mut Criterion) {
    let cover = acceptance_cover();
    let vectors: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff)
        .collect();
    let packed = pack_vectors(&vectors, cover.n_inputs());

    let gnor = GnorPla::from_cover(&cover);
    let classical = ClassicalPla::from_cover(&cover);
    let wpla = Wpla::buffered_from_cover(&cover);

    {
        let mut group = c.benchmark_group("batch_16i32p8o");
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "gnor"),
            &(&gnor, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "gnor"),
            &(&gnor, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "classical"),
            &(&classical, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "classical"),
            &(&classical, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_64", "wpla"),
            &(&wpla, &vectors),
            |b, (pla, vectors)| {
                b.iter(|| {
                    vectors
                        .iter()
                        .map(|&bits| pla.simulate_bits(std::hint::black_box(bits)))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_64", "wpla"),
            &(&wpla, &packed),
            |b, (pla, packed)| b.iter(|| pla.eval_block(std::hint::black_box(packed))),
        );
        group.finish();
    }

    for arch in ["gnor", "classical", "wpla"] {
        let scalar = c
            .median_ns(&format!("scalar_64/{arch}"))
            .expect("scalar measurement recorded");
        let batch = c
            .median_ns(&format!("batch_64/{arch}"))
            .expect("batch measurement recorded");
        let speedup = scalar / batch;
        println!("batch_16i32p8o/{arch:<10} speedup: {speedup:.1}x (64 vectors per call)");
        if arch == "gnor" {
            assert!(
                speedup >= 8.0,
                "acceptance floor: eval_block must be ≥ 8× faster than 64 \
                 sequential simulate_bits calls, measured {speedup:.1}x"
            );
        }
    }
}

criterion_group!(benches, bench_pla, bench_batch);
criterion_main!(benches);
