//! Criterion micro-bench: GNOR-PLA functional simulation throughput
//! (mapping, exhaustive simulation, programming round-trip).

use ambipla_core::GnorPla;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnor_pla");
    for bench in mcnc::table1_benchmarks() {
        let pla = GnorPla::from_cover(&bench.on);
        group.bench_with_input(
            BenchmarkId::new("map", bench.name),
            &bench.on,
            |b, on| b.iter(|| GnorPla::from_cover(std::hint::black_box(on))),
        );
        group.bench_with_input(
            BenchmarkId::new("simulate_1k", bench.name),
            &pla,
            |b, pla| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for bits in 0..1024u64 {
                        acc += usize::from(pla.simulate_bits(std::hint::black_box(bits))[0]);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("program", bench.name),
            &pla,
            |b, pla| b.iter(|| pla.program(std::hint::black_box(1e-3))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pla);
criterion_main!(benches);
