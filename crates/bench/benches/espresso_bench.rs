//! Criterion micro-bench: ESPRESSO minimization throughput, word-parallel
//! pipeline vs the retained naive reference.
//!
//! Every workload (random covers of three sizes plus the Table 1
//! benchmarks) is minimized by both `logic::espresso` (blocking-matrix
//! EXPAND, arena-based URP, incremental rest-covers) and the naive
//! scalar reference kernels retained under `crates/logic/tests/naive/`
//! (`#[path]`-included below so the two copies cannot drift). The bench
//!
//! * prints the measured speedup for **all** workloads,
//! * asserts the acceptance floor — ≥ 3× on the 10-input / 4-output /
//!   64-product random workload,
//! * emits machine-readable `BENCH_espresso.json` (override the path
//!   with `AMBIPLA_BENCH_JSON`) so future PRs can track the perf
//!   trajectory.
//!
//! Set `AMBIPLA_BENCH_SMOKE=1` (CI) for a shorter run; the floor is
//! asserted and the JSON emitted either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logic::{espresso, espresso_traced, MinimizeTrace, Pass};
use mcnc::RandomPla;

/// The naive pre-word-parallel kernels, shared with the differential
/// tests in `crates/logic/tests/espresso_diff.rs`.
#[path = "../../logic/tests/naive/mod.rs"]
mod reference;

/// One measured workload: label plus ON-set dimensions.
struct Workload {
    label: String,
    cover: logic::Cover,
}

fn workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = [(6usize, 2usize, 16usize), (8, 4, 32), (10, 4, 64)]
        .iter()
        .map(|&(inputs, outputs, products)| Workload {
            label: format!("{inputs}i{outputs}o{products}p"),
            cover: RandomPla::new(inputs, outputs, products)
                .seed(42)
                .literal_density(0.5)
                .build(),
        })
        .collect();
    for bench in mcnc::table1_benchmarks_env() {
        out.push(Workload {
            label: format!("table1_{}", bench.name),
            cover: bench.on,
        });
    }
    out
}

fn bench_espresso(c: &mut Criterion) {
    let smoke = std::env::var("AMBIPLA_BENCH_SMOKE").is_ok();
    let loads = workloads();

    {
        let mut group = c.benchmark_group("espresso");
        group.sample_size(if smoke { 5 } else { 15 });
        for load in &loads {
            group.bench_with_input(
                BenchmarkId::new("new", &load.label),
                &load.cover,
                |b, cover| b.iter(|| espresso(std::hint::black_box(cover))),
            );
            group.bench_with_input(
                BenchmarkId::new("reference", &load.label),
                &load.cover,
                |b, cover| b.iter(|| reference::espresso(std::hint::black_box(cover))),
            );
        }
        group.finish();
    }

    let mut rows = Vec::new();
    for load in &loads {
        let new_ns = c
            .median_ns(&format!("new/{}", load.label))
            .expect("new measurement recorded");
        let ref_ns = c
            .median_ns(&format!("reference/{}", load.label))
            .expect("reference measurement recorded");
        let speedup = ref_ns / new_ns;
        println!(
            "espresso/{:<16} speedup: {speedup:.1}x (word-parallel vs naive reference)",
            load.label
        );
        // One traced run per workload for the per-pass breakdown — the
        // timing above stays on the untraced (hook-free) entry point.
        let (_, _, trace) = espresso_traced(&load.cover);
        rows.push((load, new_ns, ref_ns, speedup, trace));
    }

    write_json(&rows, if smoke { "smoke" } else { "full" });

    let &(_, _, _, floor, _) = rows
        .iter()
        .find(|(l, ..)| l.label == "10i4o64p")
        .expect("acceptance workload measured");
    assert!(
        floor >= 3.0,
        "acceptance floor: the word-parallel pipeline must be ≥ 3× faster \
         than the naive reference on 10i4o64p, measured {floor:.1}x"
    );
}

/// Emit `BENCH_espresso.json` (schema 2: per-workload `passes`
/// breakdown and cube trajectory from one traced minimization run).
/// Labels are alphanumeric plus `_`, so no JSON string escaping is
/// needed.
fn write_json(rows: &[(&Workload, f64, f64, f64, MinimizeTrace)], mode: &str) {
    let path =
        std::env::var("AMBIPLA_BENCH_JSON").unwrap_or_else(|_| "BENCH_espresso.json".to_string());
    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"espresso\",\n  \"schema\": 2,\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str("  \"workloads\": [\n");
    for (i, (load, new_ns, ref_ns, speedup, trace)) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_inputs\": {}, \"n_outputs\": {}, \
             \"products\": {}, \"optimized_ns_per_iter\": {:.1}, \
             \"reference_ns_per_iter\": {:.1}, \"speedup\": {:.3},\n",
            load.label,
            load.cover.n_inputs(),
            load.cover.n_outputs(),
            load.cover.len(),
            new_ns,
            ref_ns,
            speedup,
        ));
        body.push_str(&format!(
            "     \"iterations\": {}, \"passes\": {{",
            trace.iterations()
        ));
        for (j, pass) in [Pass::Urp, Pass::Expand, Pass::Irredundant, Pass::Reduce]
            .iter()
            .enumerate()
        {
            let (runs, wall_ns) = trace.pass_totals(*pass);
            body.push_str(&format!(
                "{}\"{}\": {{\"runs\": {runs}, \"wall_ns\": {wall_ns}}}",
                if j == 0 { "" } else { ", " },
                pass.label(),
            ));
        }
        body.push_str("},\n     \"cube_trajectory\": [");
        for (j, cubes) in trace.cube_trajectory().iter().enumerate() {
            body.push_str(&format!("{}{cubes}", if j == 0 { "" } else { ", " }));
        }
        body.push_str(&format!(
            "]}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_espresso);
criterion_main!(benches);
