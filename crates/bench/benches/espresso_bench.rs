//! Criterion micro-bench: ESPRESSO minimization throughput on random and
//! Table 1 workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logic::espresso;
use mcnc::RandomPla;

fn bench_espresso(c: &mut Criterion) {
    let mut group = c.benchmark_group("espresso");
    for &(inputs, outputs, products) in &[(6, 2, 16), (8, 4, 32), (10, 4, 64)] {
        let cover = RandomPla::new(inputs, outputs, products)
            .seed(42)
            .literal_density(0.5)
            .build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{inputs}i{outputs}o{products}p")),
            &cover,
            |b, cover| b.iter(|| espresso(std::hint::black_box(cover))),
        );
    }
    for bench in mcnc::table1_benchmarks_env() {
        group.bench_with_input(
            BenchmarkId::new("table1", bench.name),
            &bench.on,
            |b, on| b.iter(|| espresso(std::hint::black_box(on))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_espresso);
criterion_main!(benches);
