//! Wall-clock loopback throughput of the TCP front end (`ambipla_net`).
//!
//! Four pipelined client connections (one thread each, two tenants)
//! stream single-vector requests at a two-shard service hosting two
//! registrations of the 3-input full adder — one per batcher shard.
//! Every reply is verified against the adder's truth table, and the run
//! counts aggregate requests per second over the full stack: wire
//! codec, hello authentication, token-bucket admission, DRR scheduling,
//! dispatch, batching, reply streaming.
//!
//! This is a plain wall-clock harness rather than a criterion loop
//! because the quantity of interest — aggregate req/s across
//! concurrent connections and batcher shards — only exists across
//! threads.
//!
//! Floors: the ≥ 1,000,000 req/s aggregate target is asserted on hosts
//! with ≥ 4 hardware threads (clients, shards and the dispatcher need
//! real parallelism to hit it); a 100,000 req/s sanity floor is asserted
//! everywhere, and the measured number is always written to
//! `BENCH_net.json` (path override: `AMBIPLA_BENCH_JSON`, smoke mode:
//! `AMBIPLA_BENCH_SMOKE=1` — the same convention as the other bench
//! reports).

use ambipla_net::{Frame, NetClient, NetConfig, NetServer, TenantId};
use ambipla_serve::{shard_for_key, ServeConfig, SimKey, SimService};
use logic::Cover;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests per connection per round.
const PER_CONN: u64 = 16_384;
/// Pipelined requests in flight per connection.
const WINDOW: u64 = 128;
/// Concurrent client connections (the issue floor is ≥ 4).
const CONNS: u64 = 4;

fn adder() -> Cover {
    Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover")
}

/// One timed round: `CONNS` fresh connections each pump `per_conn`
/// verified requests. Returns aggregate requests per second.
fn round(addr: std::net::SocketAddr, keys: &[SimKey], truth: &[Vec<bool>], per_conn: u64) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for conn in 0..CONNS {
            let keys = &keys;
            let truth = &truth;
            s.spawn(move || {
                // Two tenants across the four connections.
                let mut client =
                    NetClient::connect(addr, TenantId::new(conn % 2)).expect("connect");
                let mut received = 0u64;
                let mut sent = 0u64;
                while received < per_conn {
                    while sent < per_conn && sent - received < WINDOW {
                        let bits = sent & 0b111;
                        let key = keys[(sent & 1) as usize];
                        client.queue_request(key, sent << 3 | bits, bits);
                        sent += 1;
                    }
                    client.flush().expect("flush window");
                    match client.recv().expect("recv reply") {
                        Frame::Reply {
                            req_id, outputs, ..
                        } => {
                            assert_eq!(
                                outputs,
                                truth[(req_id & 0b111) as usize],
                                "conn {conn}: wrong answer for request {req_id}"
                            );
                            received += 1;
                        }
                        other => panic!("conn {conn}: unexpected frame {other:?}"),
                    }
                    // Drain whatever else is already buffered.
                    while received < sent {
                        match client.recv().expect("recv reply") {
                            Frame::Reply {
                                req_id, outputs, ..
                            } => {
                                assert_eq!(outputs, truth[(req_id & 0b111) as usize]);
                                received += 1;
                            }
                            other => panic!("conn {conn}: unexpected frame {other:?}"),
                        }
                    }
                }
            });
        }
    });
    (CONNS * per_conn) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let smoke = std::env::var("AMBIPLA_BENCH_SMOKE").is_ok();
    let per_conn = if smoke { PER_CONN / 4 } else { PER_CONN };
    let rounds = if smoke { 2 } else { 4 };
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let spec = adder();
    let truth: Vec<Vec<bool>> = (0..8u64).map(|bits| spec.eval_bits(bits)).collect();

    let service = Arc::new(
        SimService::start(ServeConfig {
            shards: 2,
            block_words: 4,
            max_wait: Duration::from_micros(100),
            queue_depth: 16_384,
            ..ServeConfig::default()
        })
        .expect("valid config"),
    );
    // One registration per shard, so the run provably spans both
    // batcher threads.
    let key_a = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 0)
        .expect("a key on shard 0");
    let key_b = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 1)
        .expect("a key on shard 1");
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    server.register_sim(Arc::new(spec.clone()), key_a);
    server.register_sim(Arc::new(spec), key_b);
    let addr = server.local_addr();
    let keys = [key_a, key_b];

    // Warmup round, then best-of-`rounds` timed rounds.
    let mut best = 0f64;
    round(addr, &keys, &truth, per_conn.min(2048));
    for r in 0..rounds {
        let rps = round(addr, &keys, &truth, per_conn);
        println!(
            "net_loopback round {r}: {:.0} req/s ({CONNS} conns × {per_conn} requests)",
            rps
        );
        best = best.max(rps);
    }
    println!(
        "net_loopback best: {best:.0} req/s aggregate ({CONNS} connections, 2 shards, \
         {hw_threads} hw threads)"
    );

    // Per-tenant accounting must balance exactly: every request was
    // admitted and answered, nothing rejected.
    let total = CONNS * (per_conn * rounds as u64 + per_conn.min(2048));
    let stats = server.tenant_stats();
    let accepted: u64 = stats.iter().map(|s| s.accepted).sum();
    let replies: u64 = stats.iter().map(|s| s.replies).sum();
    assert_eq!(accepted, total, "every request admitted");
    assert_eq!(replies, total, "every request answered");
    assert!(stats
        .iter()
        .all(|s| s.quota_rejected + s.queue_full + s.unknown_sim + s.bad_arity == 0));
    server.shutdown();

    assert!(
        best >= 100_000.0,
        "sanity floor: loopback front end must sustain ≥ 100k req/s aggregate \
         on any host, measured {best:.0}"
    );
    if hw_threads >= 4 {
        assert!(
            best >= 1_000_000.0,
            "acceptance floor: ≥ 1M req/s aggregate across {CONNS} connections \
             and 2 shards on a ≥4-thread host, measured {best:.0}"
        );
    } else {
        println!("net_loopback: 1M req/s floor not asserted ({hw_threads} hw threads < 4)");
    }

    let path = std::env::var("AMBIPLA_BENCH_JSON").unwrap_or_else(|_| "BENCH_net.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };
    let body = format!(
        "{{\n  \"bench\": \"net\",\n  \"mode\": \"{mode}\",\n  \"workload\": \"adder3_loopback\",\n  \
         \"connections\": {CONNS},\n  \"shards\": 2,\n  \"hw_threads\": {hw_threads},\n  \
         \"requests_per_conn\": {per_conn},\n  \"best_req_per_sec\": {best:.0},\n  \
         \"million_rps_floor_asserted\": {}\n}}\n",
        hw_threads >= 4
    );
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
