//! Criterion micro-bench: FPGA place-and-route flow (the Table 2 inner
//! loop), per flavor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpga::{emulate, Circuit, FpgaArch, FpgaFlavor};

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpga_flow");
    group.sample_size(10);
    for &blocks in &[30usize, 63] {
        let circuit = Circuit::random(blocks, 3, 0.95, 11);
        let arch = FpgaArch::sized_for(blocks, 0.99);
        for flavor in [FpgaFlavor::Standard, FpgaFlavor::CnfetPla] {
            group.bench_with_input(
                BenchmarkId::new(format!("{flavor:?}"), blocks),
                &(&circuit, &arch),
                |b, (circuit, arch)| {
                    b.iter(|| emulate(circuit, arch, flavor, std::hint::black_box(11)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_route);
criterion_main!(benches);
