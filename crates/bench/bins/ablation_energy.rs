//! Ablation: switching energy of the GNOR PLA vs the classical two-rail
//! PLA — the single-column input plane also halves the switched wire
//! capacitance, an energy corollary of the Table 1 area model.
//!
//! Run: `cargo run --release -p bench --bin ablation_energy`

use ambipla_core::{GnorPla, PlaDimensions};
use cnfet::EnergyModel;

fn main() {
    println!("# Energy — GNOR PLA vs classical PLA per evaluate cycle");
    println!();
    let model = EnergyModel::nominal();
    println!("| benchmark | dims        | GNOR (fJ) | classical (fJ) | ratio |");
    println!("|-----------|-------------|-----------|----------------|-------|");
    for b in mcnc::table1_benchmarks_env() {
        let pla = GnorPla::from_cover(&b.on);
        let d: PlaDimensions = pla.dimensions();
        let act = 0.5;
        let gnor = model.pla_cycle_energy(d.inputs, d.outputs, d.products, act, act);
        let classical = {
            let p1 = d.products as f64 * act * model.line_switch_energy(2 * d.inputs, 1);
            let p2 = d.outputs as f64 * act * model.line_switch_energy(d.products, 1);
            p1 + p2
        };
        println!(
            "| {:<9} | {:<11} | {:>9.2} | {:>14.2} | {:>5.2} |",
            b.name,
            d.to_string(),
            gnor * 1e15,
            classical * 1e15,
            gnor / classical
        );
    }
    println!();
    println!("Programming (one-off) energy per array:");
    for b in mcnc::table1_benchmarks_env() {
        let pla = GnorPla::from_cover(&b.on);
        let d = pla.dimensions();
        let devices = d.products * (d.inputs + d.outputs);
        println!(
            "  {:<7}: {} crosspoints -> {:.2} fJ",
            b.name,
            devices,
            model.programming_energy(devices) * 1e15
        );
    }
    println!();
    println!("The GNOR input plane spans half the columns of the classical plane,");
    println!("so plane-1 switching energy falls with the same (i+o)/(2i+o) geometry");
    println!("factor that drives Table 1.");
}
