//! Ablation for the paper's §5 fault-tolerance claim: the regular,
//! individually programmable GNOR array lets spare-row repair "improve the
//! yield of the unreliable devices making up the PLA".
//!
//! Sweeps the per-crosspoint defect rate and reports Monte-Carlo yield
//! with and without spare-row repair.
//!
//! Run: `cargo run --release -p bench --bin ablation_yield`

use fault::yield_curve;
use logic::Cover;

fn main() {
    println!("# §5 ablation — yield of defective GNOR-PLA arrays");
    println!();
    let f = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let rates = [0.001, 0.003, 0.01, 0.03, 0.1];
    let trials = 200;

    for spares in [2usize, 4] {
        println!("## {spares} spare rows, {trials} Monte-Carlo trials per point");
        println!();
        println!("| defect rate | raw yield | repaired yield | improvement |");
        println!("|-------------|-----------|----------------|-------------|");
        for pt in yield_curve(&f, spares, &rates, trials, 2024) {
            println!(
                "| {:>11.3} | {:>8.1}% | {:>13.1}% | {:>+10.1}% |",
                pt.defect_rate,
                100.0 * pt.raw_yield,
                100.0 * pt.repaired_yield,
                100.0 * pt.improvement()
            );
        }
        println!();
    }
    println!("Paper claim: fault tolerance 'is expected to improve the yield' —");
    println!("reproduced whenever the repaired column dominates the raw column.");
}
