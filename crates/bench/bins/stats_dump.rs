//! Exporter smoke driver — the CI `stats-dump` step.
//!
//! Drives a multi-registration, multi-swap workload through a
//! [`SimService`] with an [`EventRing`] recorder installed, then renders
//! the service's metric families through **both** exporters. Run:
//!
//! ```text
//! cargo run --release -p bench --bin stats_dump -- prometheus
//! cargo run --release -p bench --bin stats_dump -- json
//! cargo run --release -p bench --bin stats_dump            # both, with headers
//! ```
//!
//! With a format argument the selected exposition is the *only* stdout
//! output, so CI can pipe it straight into a validator. The workload
//! guarantees the properties the smoke step greps for: at least three
//! registrations, at least one registration with three epochs (two hot
//! swaps), cache traffic, a rejected submission (queue-full), one
//! registration driven past the default auto-tiering threshold (so the
//! `ambipla_tier` family carries both a `tier="batched"` and a
//! `tier="materialized"` sample), and — via
//! a loopback [`NetServer`] workload — tenant-labeled front-end
//! families with a non-zero quota rejection. The scrape concatenates
//! `SimService::metric_families` (13 families) with
//! `NetServer::metric_families` (7 tenant-labeled families).

use ambipla_core::GnorPla;
use ambipla_net::{Frame, NetClient, NetConfig, NetServer, QuotaConfig, TenantId};
use ambipla_obs::{json_text, prometheus_text, EventKind, EventRing};
use ambipla_serve::{reply_channel, ServeConfig, SimKey, SimService, Tier};
use std::sync::Arc;
use std::time::Duration;

fn workload(service: &SimService) {
    let xor = logic::Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let adder = logic::Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let majority = logic::Cover::parse("11- 1\n1-1 1\n-11 1", 3, 1).expect("valid cover");

    let a = service.register(xor.clone());
    let b = service.register(adder.clone());
    let c = service.register_sim(Arc::new(GnorPla::from_cover(&majority)), SimKey::new(99));

    // Traffic over all three registrations; the repeated vectors give the
    // block cache hits as well as misses.
    for round in 0..4u64 {
        let tickets: Vec<_> = (0..64u64)
            .flat_map(|i| {
                [
                    service.submit(a, i % 4),
                    service.submit(b, (i + round) % 8),
                    service.submit(c, i % 8),
                ]
            })
            .collect();
        for t in tickets {
            t.wait();
        }
    }

    // Two hot swaps on the adder registration — its series then span
    // epochs 0, 1 and 2 in the same scrape.
    service.swap_sim(b, Arc::new(GnorPla::from_cover(&adder)));
    for i in 0..32u64 {
        service.submit(b, i % 8).wait();
    }
    service.swap_sim(b, Arc::new(adder.clone()));
    for i in 0..32u64 {
        service.submit(b, i % 8).wait();
    }

    // Drive the bounded queue to rejection so queue_full is non-zero.
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for i in 0..100_000u64 {
        match service.try_submit(a, i % 4) {
            Ok(t) => tickets.push(t),
            Err(_) => {
                rejected += 1;
                break;
            }
        }
    }
    for t in tickets {
        t.wait();
    }
    assert!(rejected > 0, "workload must exercise backpressure");

    // Drive a fourth registration past the *default* auto-tiering
    // threshold (tier_min_requests lanes served, eval spend ≥ 2^3), so
    // the scrape shows a `tier="materialized"` series next to the three
    // batched ones and the event ring records the promotion.
    let majority2 = logic::Cover::parse("11- 1\n1-1 1\n-11 1", 3, 1).expect("valid cover");
    let d = service.register_sim(Arc::new(majority2.clone()), SimKey::new(100));
    let (sink, stream) = reply_channel();
    let floor = ServeConfig::default().tier_min_requests + 64;
    for i in 0..floor {
        service.submit_tagged(d, i % 8, i, &sink);
    }
    for _ in 0..floor {
        let reply = stream.recv();
        assert_eq!(reply.outputs, majority2.eval_bits(reply.tag % 8));
    }
    assert_eq!(
        service.stats_for(d).tier,
        Tier::Materialized,
        "the hot small registration must have been promoted"
    );
}

/// Loopback TCP traffic so the seven `ambipla_net_*` families carry
/// tenant-labeled samples: tenant 1 streams verified requests, tenant 9
/// runs into a zero-refill quota so `quota_rejects_total` is non-zero.
fn net_workload(server: &NetServer) {
    let xor = logic::Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let key = SimKey::new(7);
    server.register_sim(Arc::new(xor.clone()), key);
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, TenantId::new(1)).expect("connect tenant 1");
    for i in 0..64u64 {
        let bits = i % 4;
        match client.call(key, i, bits).expect("round trip") {
            Frame::Reply { outputs, .. } => assert_eq!(outputs, xor.eval_bits(bits)),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    server.set_quota(
        TenantId::new(9),
        QuotaConfig {
            rate_per_sec: 0,
            burst: 4,
        },
    );
    let mut client = NetClient::connect(addr, TenantId::new(9)).expect("connect tenant 9");
    let mut rejected = 0usize;
    for i in 0..8u64 {
        match client.call(key, i, i % 4).expect("round trip") {
            Frame::Reply { .. } => {}
            Frame::Error { code, .. } => {
                assert_eq!(code.to_string(), "quota_exceeded");
                rejected += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(rejected, 4, "zero-refill quota must reject past its burst");
}

fn main() {
    let format = std::env::args().nth(1);
    let ring = Arc::new(EventRing::with_capacity(1 << 14));
    let config = ServeConfig {
        max_wait: Duration::from_micros(200),
        queue_depth: 256,
        ..ServeConfig::default()
    };
    let service =
        Arc::new(SimService::start_with_recorder(config, ring.clone()).expect("valid config"));
    workload(&service);

    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("bind loopback");
    net_workload(&server);

    let mut families = service.metric_families();
    families.extend(server.metric_families());
    match format.as_deref() {
        Some("prometheus") => print!("{}", prometheus_text(&families)),
        Some("json") => println!("{}", json_text(&families)),
        Some(other) => {
            eprintln!("unknown format {other:?}: expected `prometheus` or `json`");
            std::process::exit(2);
        }
        None => {
            println!("# ---- prometheus ----");
            print!("{}", prometheus_text(&families));
            println!("# ---- json ----");
            println!("{}", json_text(&families));
            let events = ring.drain();
            let swaps = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Swap { .. }))
                .count();
            let promotions = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::TierPromote { .. }))
                .count();
            println!(
                "# ---- events: {} recorded ({} dropped), {} swaps, {} tier promotions ----",
                events.len(),
                ring.dropped(),
                swaps,
                promotions
            );
        }
    }
    server.shutdown();
    Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("all service handles released"))
        .shutdown();
}
