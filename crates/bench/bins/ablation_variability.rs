//! Ablation: device variability → GNOR row noise margin → usable PLA row
//! width. Quantifies the "unreliable devices" the paper's fault-tolerance
//! remark is about, from the device statistics upward.
//!
//! Run: `cargo run --release -p bench --bin ablation_variability`

use cnfet::VariabilityModel;

fn main() {
    println!("# Device variability — GNOR noise margin vs row width");
    println!();
    println!("(margin = weakest on-current / summed off-leakage; <1 is non-functional)");
    println!();
    let widths = [4usize, 8, 16, 33, 64, 128];

    for (label, model) in [
        (
            "ideal   (sigma=0,  0% metallic)",
            VariabilityModel::nominal()
                .with_diameter_sigma(0.0)
                .with_metallic_fraction(0.0),
        ),
        (
            "typical (sigma=10%, 0% metallic)",
            VariabilityModel::nominal().with_metallic_fraction(0.0),
        ),
        (
            "harsh   (sigma=20%, 0% metallic)",
            VariabilityModel::nominal()
                .with_diameter_sigma(0.20)
                .with_metallic_fraction(0.0),
        ),
    ] {
        println!("## {label}");
        println!();
        println!("| row width | worst margin (100 MC) | functional |");
        println!("|-----------|------------------------|------------|");
        for &w in &widths {
            let margin = model.gnor_noise_margin(w, 100, 42);
            println!("| {:>9} | {:>22.1} | {:>10} |", w, margin, margin > 1.0);
        }
        println!();
    }

    println!("## metallic tubes become stuck-on defects");
    println!();
    println!("| metallic fraction | expected stuck-on rate | margin (width 16) |");
    println!("|-------------------|------------------------|-------------------|");
    for frac in [0.0, 0.01, 0.05] {
        let m = VariabilityModel::nominal().with_metallic_fraction(frac);
        println!(
            "| {:>17.2} | {:>22.2} | {:>17.2} |",
            frac,
            m.expected_stuck_on_rate(),
            m.gnor_noise_margin(16, 100, 42)
        );
    }
    println!();
    println!("The t2 PLA (33 columns) sits inside the functional row-width range;");
    println!("metallic tubes must be handled by the repair flow (ablation_yield).");
}
