//! Ablation: where the Table 2 speedup comes from — sweeps of the routing
//! channel capacity (congestion relief) and of the die utilization (the
//! "standard one is full" condition).
//!
//! Run: `cargo run --release -p bench --bin ablation_fpga_sweep`

use fpga::{channel_capacity_sweep, utilization_sweep, Circuit};

fn main() {
    let circuit = Circuit::random(63, 3, 0.95, 11);
    println!("# Table 2 decomposition — what drives the 2.3x speedup");
    println!();
    println!("## Channel-capacity sweep (die fixed at 99% standard utilization)");
    println!();
    println!("| tracks | std MHz | CNFET MHz | speedup | std overused |");
    println!("|--------|---------|-----------|---------|--------------|");
    for pt in channel_capacity_sweep(&circuit, &[4, 6, 8, 10, 14, 20, 32], 11) {
        println!(
            "| {:>6} | {:>7.0} | {:>9.0} | {:>6.2}x | {:>12} |",
            pt.x,
            pt.standard.frequency_mhz(),
            pt.cnfet.frequency_mhz(),
            pt.speedup(),
            pt.standard.overused_segments
        );
    }
    println!();
    println!("## Utilization sweep (channel capacity fixed at 10 tracks)");
    println!();
    println!("| target util | std occ | std MHz | CNFET MHz | speedup |");
    println!("|-------------|---------|---------|-----------|---------|");
    for pt in utilization_sweep(&circuit, &[0.3, 0.5, 0.7, 0.9, 0.99], 11) {
        println!(
            "| {:>11.2} | {:>6.1}% | {:>7.0} | {:>9.0} | {:>6.2}x |",
            pt.x,
            pt.standard.occupancy_percent(),
            pt.standard.frequency_mhz(),
            pt.cnfet.frequency_mhz(),
            pt.speedup()
        );
    }
    println!();
    println!("Reading: with abundant tracks or an empty die the speedup decays");
    println!("towards the pure signal-count/packing ratio; at the paper's full-die");
    println!("operating point congestion amplifies it to ~2.3x.");
}
