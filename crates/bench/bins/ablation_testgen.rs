//! Ablation: crosspoint-fault test generation for GNOR PLAs — the
//! manufacturing-test side of the §5 reliability story: every single
//! stuck-off/stuck-on crosspoint fault is detected by a compact pattern
//! set.
//!
//! Run: `cargo run --release -p bench --bin ablation_testgen`

use fault::{generate_tests, verify_tests};

fn main() {
    println!("# Test generation — single crosspoint faults on GNOR PLAs");
    println!();
    println!("| benchmark  | faults | benign | patterns | coverage | verified |");
    println!("|------------|--------|--------|----------|----------|----------|");
    for b in mcnc::classics() {
        let ts = generate_tests(&b.on);
        let (caught, detectable) = verify_tests(&b.on, &ts.patterns);
        println!(
            "| {:<10} | {:>6} | {:>6} | {:>8} | {:>7.1}% | {:>8} |",
            b.name,
            ts.total,
            ts.benign,
            ts.patterns.len(),
            100.0 * ts.coverage(),
            caught == detectable
        );
        assert_eq!(caught, detectable, "{}: test set incomplete", b.name);
    }
    for seed in 0..4u64 {
        let f = mcnc::RandomPla::new(6, 2, 10)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let ts = generate_tests(&f);
        let (caught, detectable) = verify_tests(&f, &ts.patterns);
        println!(
            "| random6x2#{seed} | {:>6} | {:>6} | {:>8} | {:>7.1}% | {:>8} |",
            ts.total,
            ts.benign,
            ts.patterns.len(),
            100.0 * ts.coverage(),
            caught == detectable
        );
    }
    println!();
    println!("Every detectable single crosspoint fault is caught; pattern counts");
    println!("stay far below the fault counts thanks to greedy compaction.");
}
