//! Regenerates the content of **Fig. 1**: the ambipolar CNFET's three
//! programmable states and its PG transfer characteristics.
//!
//! The paper's Fig. 1 is a device sketch; its quantitative content is the
//! state table (PG level → polarity → CG switching rule) and the V-shaped
//! ambipolar transfer curve of the underlying device (Lin et al.,
//! IEDM 2004), both printed here.
//!
//! Run: `cargo run --release -p bench --bin fig1_device`

use cnfet::{AmbipolarCnfet, DeviceParams, PgLevel};

fn main() {
    println!("# Fig. 1 — Ambipolar CNFET: states and transfer curve");
    println!();
    println!("## State table (CG switching rule per programmed PG level)");
    println!();
    println!("| PG level | polarity | CG=0 | CG=1 |");
    println!("|----------|----------|------|------|");
    for level in [PgLevel::VPlus, PgLevel::VZero, PgLevel::VMinus] {
        let d = AmbipolarCnfet::new(level);
        println!(
            "| {:<8} | {:<8} | {:<4} | {:<4} |",
            level.to_string(),
            d.polarity().to_string(),
            if d.conduction(false).is_on() {
                "on"
            } else {
                "off"
            },
            if d.conduction(true).is_on() {
                "on"
            } else {
                "off"
            },
        );
    }

    let params = DeviceParams::nominal();
    println!();
    println!("## PG transfer sweep, I(V_PG) in amperes (21 points)");
    println!();
    println!("| V_PG (V) | I @ CG=1 (A) | I @ CG=0 (A) |");
    println!("|----------|--------------|--------------|");
    let high = params.pg_sweep(1.0, 21);
    let low = params.pg_sweep(0.0, 21);
    for (h, l) in high.iter().zip(&low) {
        println!(
            "| {:>8.2} | {:>12.3e} | {:>12.3e} |",
            h.v_pg, h.current, l.current
        );
    }
    println!();
    println!("Figures of merit:");
    println!(
        "  on/off ratio (V+ vs V0, CG=1): {:.0}",
        params.on_off_ratio()
    );
    println!(
        "  R_on n-type: {:.1} kOhm   R_on p-type: {:.1} kOhm   R_off: {:.2} MOhm",
        params.r_on(cnfet::Polarity::NType) / 1e3,
        params.r_on(cnfet::Polarity::PType) / 1e3,
        params.r_off() / 1e6
    );
    println!("  shape check: conduction minimum sits in the V0 window (V-curve).");
}
