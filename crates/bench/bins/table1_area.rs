//! Regenerates **Table 1**: area of logic functions in three technologies.
//!
//! Pipeline: MCNC benchmark (stand-in) → ESPRESSO minimization → PLA
//! dimensions → area model (Flash / EEPROM / ambipolar CNFET basic cells).
//!
//! Run: `cargo run --release -p bench --bin table1_area`

use ambipla_core::area::cnfet_saving_over;
use ambipla_core::{PlaDimensions, Technology};
use logic::espresso_with_dc;

// Paper values for side-by-side comparison (L^2).
const PAPER: [(&str, f64, f64, f64); 4] = [
    ("Basic cell", 40.0, 100.0, 60.0),
    ("max46", 34960.0, 87400.0, 27600.0),
    ("apla", 32000.0, 80000.0, 33000.0),
    ("t2", 104000.0, 260000.0, 102960.0),
];

fn main() {
    println!("# Table 1 — Area of logic functions in 3 technologies (L^2)");
    println!();
    println!(
        "| {:<10} | {:>10} | {:>10} | {:>10} | paper (Flash/EEPROM/CNFET) |",
        "function", "Flash", "EEPROM", "CNFET"
    );
    println!(
        "|{}|{}|{}|{}|----------------------------|",
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12)
    );
    println!(
        "| {:<10} | {:>10} | {:>10} | {:>10} | {}/{}/{} |",
        "basic cell",
        Technology::Flash.cell_area_l2(),
        Technology::Eeprom.cell_area_l2(),
        Technology::CnfetGnor.cell_area_l2(),
        PAPER[0].1,
        PAPER[0].2,
        PAPER[0].3,
    );

    for (idx, bench) in mcnc::table1_benchmarks_env().iter().enumerate() {
        let (min, stats) = espresso_with_dc(&bench.on, &bench.dc);
        let dims = PlaDimensions {
            inputs: min.n_inputs(),
            outputs: min.n_outputs(),
            products: min.len(),
        };
        let flash = Technology::Flash.pla_area(dims);
        let eeprom = Technology::Eeprom.pla_area(dims);
        let cnfet = Technology::CnfetGnor.pla_area(dims);
        let paper = PAPER[idx + 1];
        println!(
            "| {:<10} | {:>10} | {:>10} | {:>10} | {}/{}/{} |",
            bench.name, flash, eeprom, cnfet, paper.1, paper.2, paper.3
        );
        eprintln!(
            "  {}: dims {dims}, espresso kept {} of {} cubes",
            bench.name, stats.final_cubes, stats.initial_cubes,
        );
    }

    println!();
    println!("Paper claims reproduced:");
    let max46 = PlaDimensions {
        inputs: 9,
        outputs: 1,
        products: 46,
    };
    let apla = PlaDimensions {
        inputs: 10,
        outputs: 12,
        products: 25,
    };
    println!(
        "  max46 saving over Flash : {:+.1}% (paper: ~21%)",
        100.0 * cnfet_saving_over(Technology::Flash, max46)
    );
    println!(
        "  apla overhead over Flash: {:+.1}% (paper: ~3% overhead)",
        -100.0 * cnfet_saving_over(Technology::Flash, apla)
    );
    println!(
        "  max46 saving over EEPROM: {:+.1}% (paper: up to 68%)",
        100.0 * cnfet_saving_over(Technology::Eeprom, max46)
    );
}
