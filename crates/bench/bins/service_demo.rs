//! End-to-end driver of the `ambipla_serve` subsystem — the CI
//! `service-smoke` step.
//!
//! 1. Starts a [`SimService`], registers the whole MCNC benchmark
//!    registry, and fires interleaved requests from four client threads,
//!    verifying every reply against direct `eval_bits`.
//! 2. Registers **heterogeneous backends** on the same service — a GNOR
//!    PLA and its `FaultyGnorPla` twin under their own `SimKey`s — and
//!    verifies their replies against each backend's own `simulate_bits`
//!    (the twins must also disagree somewhere, proving the queues do not
//!    leak).
//! 3. Hot-swaps the faulty twin's registration mid-traffic — defect
//!    injection, column repair, re-minimization — and verifies every
//!    reply against the epoch that served it ([`EpochOracle`]).
//! 4. Runs the offline bulk sweep ([`eval_sims_blocked`], mixed backend
//!    types) with 1 and N worker threads and checks the results are
//!    identical.
//! 5. Runs the yield Monte-Carlo sequentially and sharded
//!    ([`fault::yield_curve_parallel`]) and checks bit-identical curves.
//! 6. Puts the TCP front end (`ambipla_net`) in front of a two-shard
//!    service on loopback: two tenants, verified replies, a rate-limited
//!    tenant driven into quota rejection, per-tenant counters checked.
//! 7. Drives a 12-input sim past the default auto-tiering threshold and
//!    prints the before/after ns-per-request split: the ramp is served
//!    by batched `eval_words` flushes (plus the one-time truth-table
//!    build at promotion), the steady state by O(1) indexed lookups
//!    from the materialized table ([`Tier::Materialized`]).
//!
//! Any mismatch panics (non-zero exit); the happy path prints the service
//! stats table. Run:
//! `cargo run --release -p bench --bin service_demo`

use ambipla_core::{EpochOracle, GnorPla};
use ambipla_net::{Frame, NetClient, NetConfig, NetServer, QuotaConfig, TenantId};
use ambipla_serve::{
    eval_sims_blocked, reply_channel, shard_for_key, ServeConfig, SharedSim, SimKey, SimService,
    Simulator, Tier, WorkerPool,
};
use fault::{repair_with_columns, ColumnRepairOutcome, DefectKind, DefectMap, FaultyGnorPla};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 2_000;

/// Mask keeping the low `n` input bits of a packed assignment — the same
/// saturating low-bits mask as `lane_mask`, reused so the workspace keeps
/// one copy of the shift-overflow-sensitive math.
fn input_mask(n: usize) -> u64 {
    logic::eval::lane_mask(n)
}

fn main() {
    println!("# ambipla_serve — service demo");
    println!();

    // ---- 1. Online: multi-threaded clients against the batcher. --------
    let covers: Vec<logic::Cover> = mcnc::registry().into_iter().map(|b| b.on).collect();
    let service = SimService::with_defaults();
    let ids: Vec<_> = covers.iter().map(|c| service.register(c.clone())).collect();

    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let service = &service;
            let covers = &covers;
            let ids = &ids;
            s.spawn(move || {
                let (sink, stream) = reply_channel();
                // Deterministic per-client request stream, round-robin
                // over the registered covers.
                let pick = |i: usize| (client + i) % covers.len();
                let bits_of = |i: usize| {
                    (client as u64)
                        .wrapping_mul(0xd134_2543_de82_ef95)
                        .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                        & input_mask(covers[pick(i)].n_inputs())
                };
                for i in 0..REQUESTS_PER_CLIENT {
                    service.submit_tagged(ids[pick(i)], bits_of(i), i as u64, &sink);
                }
                for _ in 0..REQUESTS_PER_CLIENT {
                    let reply = stream.recv();
                    let i = reply.tag as usize;
                    assert_eq!(
                        reply.outputs,
                        covers[pick(i)].eval_bits(bits_of(i)),
                        "client {client} request {i} got a wrong answer"
                    );
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "online: {total} requests from {CLIENTS} clients over {} covers in {:.1} ms \
         ({:.0}k req/s), all verified against eval_bits",
        covers.len(),
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64() / 1e3,
    );
    println!();
    println!("{}", service.stats());
    println!();

    // ---- 2. Heterogeneous backends: a PLA and its faulty twin. ---------
    // The Simulator redesign's acceptance scenario: one service batching
    // a `Cover`, a `GnorPla` and a `FaultyGnorPla` side by side, each
    // under its own stable `SimKey`, with every reply verified against
    // that backend's own scalar answer.
    let spec = covers[0].clone();
    let base_key = SimKey::of_cover(&spec);
    let nominal = GnorPla::from_cover(&spec);
    let mut defects = {
        let d = nominal.dimensions();
        DefectMap::clean(d.products, d.inputs, d.outputs)
    };
    defects.set_input_defect(0, 0, DefectKind::StuckOn);
    let faulty = FaultyGnorPla::new(nominal.clone(), defects);
    // Derived backends mix the base cover's key with a tag of what
    // changed — here simply which twin it is.
    let nid = service.register_sim(Arc::new(nominal.clone()), SimKey::new(base_key.raw() ^ 1));
    let fid = service.register_sim(Arc::new(faulty.clone()), SimKey::new(base_key.raw() ^ 2));
    let mask = input_mask(spec.n_inputs());
    let probes: Vec<u64> = (0..500u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask)
        .collect();
    let mut twins_differ = false;
    let pairs: Vec<_> = probes
        .iter()
        .map(|&bits| (bits, service.submit(nid, bits), service.submit(fid, bits)))
        .collect();
    for (bits, nt, ft) in pairs {
        let n = nt.wait();
        let f = ft.wait();
        assert_eq!(
            n,
            nominal.simulate_bits(bits),
            "nominal twin answered wrong"
        );
        assert_eq!(f, faulty.simulate_bits(bits), "faulty twin answered wrong");
        twins_differ |= n != f;
    }
    assert!(
        twins_differ,
        "the stuck-on defect must be visible somewhere in 500 probes"
    );
    println!(
        "heterogeneous: GnorPla + FaultyGnorPla twins on one service — {} probes each, \
         all verified against their own simulate_bits (twins disagree: {twins_differ})",
        probes.len(),
    );
    println!();

    // ---- 3. Hot swaps: reconfigure the faulty slot mid-traffic. --------
    // The epoch contract end to end: swap the faulty twin's registration
    // through fresh defect draws, a column-repaired view and the
    // re-minimized specification while probes stay in flight, verifying
    // every reply against the generation that served it.
    let adder = logic::Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let adder_pla = GnorPla::from_cover(&adder);
    let hot: SharedSim = Arc::new(adder_pla.clone());
    let oracle = EpochOracle::new(Arc::clone(&hot));
    let hid = service.register_sim(hot, SimKey::new(base_key.raw() ^ 3));
    let swap_rounds = 12u64;
    let mut in_flight = Vec::new();
    for k in 1..=swap_rounds {
        // Keep requests in flight across each swap: these are drained by
        // the swap under the *outgoing* epoch.
        for bits in 0..8u64 {
            in_flight.push((bits, service.submit(hid, bits)));
        }
        let d = adder_pla.dimensions();
        let candidate: SharedSim = match k % 3 {
            0 => Arc::new(logic::espresso::espresso(&adder).0),
            1 => Arc::new(FaultyGnorPla::new(
                adder_pla.clone(),
                DefectMap::sample(d.products, d.inputs, d.outputs, 0.08, 0.7, 0x5eed ^ k),
            )),
            _ => {
                let defects = DefectMap::sample(adder.len() + 2, 5, 2, 0.05, 0.8, 0xfee1 ^ k);
                match repair_with_columns(&adder, &defects) {
                    ColumnRepairOutcome::Repaired(r) => Arc::new(r.faulty_view(&defects)),
                    ColumnRepairOutcome::Unrepairable { .. } => Arc::new(adder_pla.clone()),
                }
            }
        };
        let promised = oracle.push(Arc::clone(&candidate));
        let installed = service.swap_sim(hid, candidate);
        assert_eq!(installed, promised, "oracle and service epochs diverged");
    }
    for (bits, ticket) in in_flight {
        let reply = ticket.wait_reply();
        assert!(
            oracle.matches(reply.epoch, bits, &reply.outputs),
            "hot-swap reply for bits {bits:03b} does not match epoch {}",
            reply.epoch
        );
    }
    assert_eq!(service.epoch(hid), swap_rounds);
    println!(
        "hot swaps: {swap_rounds} backend generations (defect injection, column repair, \
         re-minimization) on one registration — {} in-flight probes all matched \
         the epoch that served them",
        8 * swap_rounds,
    );
    println!();

    // ---- 4. Offline: bulk sweep sharded across the worker pool. --------
    // Mixed backend types in one eval_sims_blocked call: every cover plus
    // the nominal/faulty twins.
    let mut jobs: Vec<(&(dyn Simulator + Sync), Vec<u64>)> = covers
        .iter()
        .map(|c| {
            let mask = input_mask(c.n_inputs());
            let vectors: Vec<u64> = (0..1_000u64)
                .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d) & mask)
                .collect();
            (c as &(dyn Simulator + Sync), vectors)
        })
        .collect();
    let twin_vectors: Vec<u64> = (0..1_000u64)
        .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d) & mask)
        .collect();
    jobs.push((&nominal, twin_vectors.clone()));
    jobs.push((&faulty, twin_vectors));
    let t1 = Instant::now();
    let sequential = eval_sims_blocked(&jobs, &WorkerPool::new(1));
    let t1 = t1.elapsed();
    let pool = WorkerPool::available();
    let tn = Instant::now();
    let sharded = eval_sims_blocked(&jobs, &pool);
    let tn = tn.elapsed();
    assert_eq!(sequential, sharded, "sharded bulk sweep diverged");
    println!(
        "bulk sweep: {} mixed-backend jobs × 1000 vectors — {:.1} ms on 1 thread, {:.1} ms \
         on {} threads, results identical",
        jobs.len(),
        t1.as_secs_f64() * 1e3,
        tn.as_secs_f64() * 1e3,
        pool.threads(),
    );

    // ---- 5. Monte-Carlo: sequential vs sharded yield curves. -----------
    let rates = [0.005, 0.02, 0.05];
    let trials = 400;
    let t1 = Instant::now();
    let seq = fault::yield_curve(&adder, 3, &rates, trials, 17);
    let t1 = t1.elapsed();
    let tn = Instant::now();
    let par = fault::yield_curve_parallel(&adder, 3, &rates, trials, 17, pool.threads());
    let tn = tn.elapsed();
    assert_eq!(seq, par, "parallel Monte-Carlo diverged from sequential");
    println!(
        "yield Monte-Carlo: {trials} trials × {} rates — {:.1} ms sequential, {:.1} ms on \
         {} threads, curves bit-identical",
        rates.len(),
        t1.as_secs_f64() * 1e3,
        tn.as_secs_f64() * 1e3,
        pool.threads(),
    );
    for p in &par {
        println!(
            "  rate {:>6.3}: raw yield {:.2}, repaired {:.2} (+{:.2})",
            p.defect_rate,
            p.raw_yield,
            p.repaired_yield,
            p.improvement()
        );
    }

    println!();

    // ---- 6. Network front end: multi-tenant TCP over loopback. ---------
    // A two-shard service behind a NetServer, with the two exposed
    // registrations provably on different batcher shards. Tenant 1 runs
    // unlimited and verified; tenant 9 gets a burst-25, zero-refill
    // quota and is driven into QuotaExceeded rejections.
    let net_service = Arc::new(
        SimService::start(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .expect("valid config"),
    );
    let net_key_a = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 0)
        .expect("a key on shard 0");
    let net_key_b = (0..64u64)
        .map(SimKey::new)
        .find(|&k| shard_for_key(k, 2) == 1)
        .expect("a key on shard 1");
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&net_service),
        NetConfig::default(),
    )
    .expect("bind loopback");
    let net_id_a = server.register_sim(Arc::new(adder.clone()), net_key_a);
    let net_id_b = server.register_sim(Arc::new(adder_pla.clone()), net_key_b);
    assert_ne!(
        net_service.shard_of(net_id_a),
        net_service.shard_of(net_id_b),
        "the demo's two network registrations must span both shards"
    );
    server.set_quota(
        TenantId::new(9),
        QuotaConfig {
            rate_per_sec: 0,
            burst: 25,
        },
    );

    // Tenant 1: 200 pipelined requests across both registrations, every
    // reply verified against the adder truth.
    let mut t1_client =
        NetClient::connect(server.local_addr(), TenantId::new(1)).expect("connect tenant 1");
    let t1_requests = 200u64;
    for i in 0..t1_requests {
        let key = if i % 2 == 0 { net_key_a } else { net_key_b };
        t1_client.queue_request(key, i, i % 8);
    }
    t1_client.flush().expect("flush tenant 1");
    for _ in 0..t1_requests {
        match t1_client.recv().expect("recv tenant 1") {
            Frame::Reply {
                req_id, outputs, ..
            } => assert_eq!(
                outputs,
                adder.eval_bits(req_id % 8),
                "tenant 1 request {req_id} answered wrong over the wire"
            ),
            other => panic!("tenant 1: unexpected frame {other:?}"),
        }
    }

    // Tenant 9: 40 requests against a 25-token bucket — the overflow
    // must come back as typed QuotaExceeded errors, not drops.
    let mut t9_client =
        NetClient::connect(server.local_addr(), TenantId::new(9)).expect("connect tenant 9");
    let mut t9_served = 0u64;
    let mut t9_rejected = 0u64;
    for i in 0..40u64 {
        match t9_client.call(net_key_a, i, i % 8).expect("call tenant 9") {
            Frame::Reply { .. } => t9_served += 1,
            Frame::Error { code, .. } => {
                assert_eq!(code.to_string(), "quota_exceeded");
                t9_rejected += 1;
            }
            other => panic!("tenant 9: unexpected frame {other:?}"),
        }
    }
    assert_eq!(
        (t9_served, t9_rejected),
        (25, 15),
        "a zero-refill 25-token bucket serves exactly its burst"
    );

    // Per-tenant counters reconcile with what the demo just drove.
    let tenant_stats = server.tenant_stats();
    let of = |t: u64| {
        tenant_stats
            .iter()
            .find(|s| s.id == TenantId::new(t))
            .expect("tenant seen")
    };
    assert_eq!(of(1).accepted, t1_requests);
    assert_eq!(of(1).replies, t1_requests);
    assert_eq!(of(1).quota_rejected, 0);
    assert_eq!(of(9).accepted, t9_served);
    assert_eq!(of(9).quota_rejected, t9_rejected);
    println!(
        "network: {} verified replies for tenant 1 over 2 shards; tenant 9's zero-refill \
         quota served {t9_served} and rejected {t9_rejected} with typed errors",
        t1_requests
    );
    drop(t1_client);
    drop(t9_client);
    server.shutdown();
    println!();

    // ---- 7. Tiered evaluation: auto-promotion on a small hot sim. ------
    // A 12-input / 8-output PLA under the *default* auto-tiering policy:
    // the first `tier_min_requests` lanes ride the batched path (every
    // sub-block a fresh pattern, so each flush pays a real `eval_words`),
    // the promotion builds the 4 KiB packed truth table once, and the
    // steady state afterwards answers every lane by indexed load.
    let hot_cover = mcnc::RandomPla::new(12, 8, 1024)
        .seed(3)
        .literal_density(0.35)
        .build();
    let hot_pla = GnorPla::from_cover(&hot_cover);
    let tier_service = SimService::with_defaults();
    let tid = tier_service.register_sim(Arc::new(hot_pla.clone()), SimKey::new(0x712));
    assert_eq!(tier_service.stats_for(tid).tier, Tier::Batched);
    // +64 lanes past the floor so the promoting flush is strictly before
    // the last one — the tier read below is then race-free.
    let floor = ServeConfig::default().tier_min_requests + 64;
    // Unique sub-block patterns per phase: bits 12..24 of a golden-ratio
    // walk never repeat a 64-lane pattern within the demo's horizon, so
    // the batched ramp cannot hide behind the block cache.
    let bits_of = |i: u64| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 12) & input_mask(12);
    // Verification oracle: an independently built table for the bulk of
    // the replies (O(1) per check, so it stays out of the measurement's
    // way), with one scalar `simulate_bits` spot-check per block.
    let oracle = ambipla_core::TruthTable::from_simulator(&hot_pla);
    let run_phase = |offset: u64| -> f64 {
        let (sink, stream) = reply_channel();
        let t0 = Instant::now();
        for i in offset..offset + floor {
            tier_service.submit_tagged(tid, bits_of(i), i, &sink);
        }
        let replies: Vec<_> = (0..floor).map(|_| stream.recv()).collect();
        let ns = t0.elapsed().as_nanos() as f64 / floor as f64;
        for reply in replies {
            let bits = bits_of(reply.tag);
            assert_eq!(
                reply.outputs,
                oracle.lookup_bits(bits),
                "tiered registration answered wrong for request {}",
                reply.tag
            );
            if reply.tag % 64 == 0 {
                assert_eq!(reply.outputs, hot_pla.simulate_bits(bits));
            }
        }
        ns
    };
    let ramp_ns = run_phase(0);
    assert_eq!(
        tier_service.stats_for(tid).tier,
        Tier::Materialized,
        "{floor} single-lane requests past a 12-input sim must trip the default \
         auto-tiering threshold"
    );
    let steady_ns = run_phase(floor);
    tier_service.shutdown();
    println!(
        "tiered evaluation: 12-input sim auto-promoted after {floor} requests — \
         ramp {ramp_ns:.0} ns/request (batched eval + one-time table build), \
         steady state {steady_ns:.0} ns/request (materialized, O(1) indexed), \
         {:.1}x",
        ramp_ns / steady_ns
    );

    println!();
    println!("service demo OK");
}
