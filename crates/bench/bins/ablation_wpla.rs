//! Ablation for the paper's §5 Whirlpool-PLA claim: the 4-plane GNOR
//! cascade admits WPLAs (Doppio-Espresso synthesis), trading a small cell
//! overhead for roughly halved plane width (routability / aspect ratio).
//!
//! Run: `cargo run --release -p bench --bin ablation_wpla`

use logic::Cover;
use mcnc::RandomPla;
use phaseopt::synthesize_wpla;

fn main() {
    println!("# §5 ablation — Whirlpool PLA (4-plane cascade) vs flat 2-level PLA");
    println!();
    println!("| workload            | 2-level width | WPLA max width | width ratio | verified |");
    println!("|---------------------|---------------|----------------|-------------|----------|");

    let mut ratios = Vec::new();
    for b in mcnc::classics() {
        let r = synthesize_wpla(&b.on, &b.dc);
        let ok = r.wpla.implements(&b.on);
        println!(
            "| {:<19} | {:>13} | {:>14} | {:>11.2} | {:>8} |",
            b.name,
            r.two_level_width,
            r.wpla_max_width,
            r.width_ratio(),
            ok
        );
        ratios.push(r.width_ratio());
        assert!(ok, "{}: WPLA must implement the function", b.name);
    }
    for seed in 0..5u64 {
        let f = RandomPla::new(7, 2, 24)
            .seed(seed)
            .literal_density(0.5)
            .build();
        let dc = Cover::new(7, 2);
        let r = synthesize_wpla(&f, &dc);
        let ok = r.wpla.implements(&logic::espresso(&f).0);
        println!(
            "| random7x2 seed={seed:<3} | {:>13} | {:>14} | {:>11.2} | {:>8} |",
            r.two_level_width,
            r.wpla_max_width,
            r.width_ratio(),
            ok
        );
        ratios.push(r.width_ratio());
    }

    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!("Mean plane-width ratio: {mean:.2} (flat PLA = 1.0; Whirlpool halves the");
    println!("critical array pitch, the property its layouts exploit).");
    println!("Paper claim: 'the cascade of 4 NOR planes instead of 2 makes the");
    println!("implementation of WPLAs possible' — every row above is a working WPLA.");
}
