//! Regenerates **Table 2**: occupancy and frequency of a standard FPGA vs
//! the emulated ambipolar-CNFET PLA-based FPGA.
//!
//! Methodology (paper, Section 5): one circuit; a standard FPGA sized to be
//! ~99 % full; the same circuit on the same die with half-area CLBs and
//! without complement rails. Place (simulated annealing), route (negotiated
//! maze router), extract the critical path.
//!
//! Run: `cargo run --release -p bench --bin table2_fpga`

use fpga::emulate::table2;
use fpga::{Circuit, FpgaArch};

fn main() {
    // A mid-size circuit with near-universal complement rails ("the number
    // of signals to route is reduced by almost the factor 2").
    let circuit = Circuit::random(63, 3, 0.95, 11);
    let arch = FpgaArch::sized_for(circuit.n_blocks(), 0.99);
    let (std_r, cn_r) = table2(&circuit, &arch, 11);

    println!("# Table 2 — Frequency of standard FPGA and CNFET FPGA");
    println!();
    println!(
        "| {:<15} | {:>14} | {:>12} | paper |",
        "", "Standard FPGA", "CNFET FPGA"
    );
    println!("|-----------------|----------------|--------------|-------|");
    println!(
        "| {:<15} | {:>13.1}% | {:>11.1}% | 99% / 44.9% |",
        "Occupied area",
        std_r.occupancy_percent(),
        cn_r.occupancy_percent()
    );
    println!(
        "| {:<15} | {:>10.0} MHz | {:>8.0} MHz | 154 / 349 MHz |",
        "Frequency",
        std_r.frequency_mhz(),
        cn_r.frequency_mhz()
    );
    println!();
    println!("Supporting measurements:");
    println!(
        "  routed connections : {} -> {} (signal reduction x{:.2}; paper: 'almost factor 2')",
        std_r.routed_connections,
        cn_r.routed_connections,
        std_r.routed_connections as f64 / cn_r.routed_connections.max(1) as f64
    );
    println!(
        "  total wirelength   : {} -> {} channel segments",
        std_r.wirelength, cn_r.wirelength
    );
    println!(
        "  overused segments  : {} -> {}",
        std_r.overused_segments, cn_r.overused_segments
    );
    println!(
        "  speedup            : {:.2}x (paper: 349/154 = 2.27x)",
        cn_r.frequency / std_r.frequency
    );
}
