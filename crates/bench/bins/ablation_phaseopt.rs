//! Ablation for the paper's §5 phase-optimization claim: the GNOR PLA's
//! free output polarity (Sasao/MINI-II output phase assignment) shrinks
//! PLAs beyond plain ESPRESSO.
//!
//! Sweeps a family of generated multi-output functions plus the small
//! classics and reports product terms before/after phase optimization.
//!
//! Run: `cargo run --release -p bench --bin ablation_phaseopt`

use logic::Cover;
use mcnc::RandomPla;
use phaseopt::{optimize_output_phases, PhaseStrategy};

fn main() {
    println!("# §5 ablation — output phase assignment on the GNOR PLA");
    println!();
    println!("| workload            | products (espresso) | products (phase-opt) | saving |");
    println!("|---------------------|---------------------|----------------------|--------|");

    let mut total_before = 0usize;
    let mut total_after = 0usize;

    // Dense random multi-output PLAs: complement-friendly shapes.
    for seed in 0..6u64 {
        let f = RandomPla::new(6, 3, 18)
            .seed(seed)
            .literal_density(0.35)
            .build();
        let dc = Cover::new(6, 3);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Greedy);
        report(&format!("random6x3 seed={seed}"), &a);
        total_before += a.before_products;
        total_after += a.after_products;
    }

    // The classics.
    for b in mcnc::classics() {
        let a = optimize_output_phases(&b.on, &b.dc, PhaseStrategy::Exhaustive);
        report(b.name, &a);
        total_before += a.before_products;
        total_after += a.after_products;
    }

    println!();
    println!(
        "Aggregate: {total_before} -> {total_after} products ({:+.1}%)",
        100.0 * (total_after as f64 - total_before as f64) / total_before as f64
    );
    println!("Paper claim: phase freedom gives 'a significant area saving after logic");
    println!("minimization' (qualitative); any aggregate reduction reproduces it.");
}

fn report(name: &str, a: &phaseopt::PhaseAssignment) {
    let saving = 100.0 * (a.before_products as f64 - a.after_products as f64)
        / a.before_products.max(1) as f64;
    println!(
        "| {:<19} | {:>19} | {:>20} | {:>5.1}% |",
        name, a.before_products, a.after_products, saving
    );
}
