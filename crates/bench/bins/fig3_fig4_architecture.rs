//! Regenerates the content of **Fig. 3 and Fig. 4**: the GNOR-PLA
//! architecture with its row/column configuration protocol and the
//! pass-transistor interconnect between planes.
//!
//! The binary maps a full adder onto a two-plane GNOR PLA, programs every
//! device individually through the `VSelR/VSelC` charge protocol, reads the
//! array back, verifies the function, then routes the PLA outputs through a
//! programmed crossbar (the interleaved interconnect of Fig. 3).
//!
//! Run: `cargo run --release -p bench --bin fig3_fig4_architecture`

use ambipla_core::{Crossbar, GnorPla, PlaTiming, Simulator, TimingModel};
use logic::Cover;

fn main() {
    println!("# Fig. 3/4 — GNOR-PLA architecture, programming and interconnect");
    println!();

    // Full adder: the workload used throughout the examples.
    let f = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let pla = GnorPla::from_cover(&f);
    let dims = pla.dimensions();
    println!("## PLA mapping (full adder)");
    println!(
        "  dimensions        : {dims} -> {} columns (classical would need {})",
        dims.column_count_cnfet(),
        dims.column_count_classical()
    );
    println!("  programmed devices: {}", pla.active_devices());

    // Configuration phase: one charge pulse per device (Fig. 3 protocol).
    let tau = 1e-3;
    let (m1, m2) = pla.program(tau);
    println!();
    println!("## Configuration phase (VSelR/VSelC + global VPG)");
    println!(
        "  input plane : {} pulses for {}x{} devices",
        m1.pulse_count(),
        m1.rows(),
        m1.cols()
    );
    println!(
        "  output plane: {} pulses for {}x{} devices",
        m2.pulse_count(),
        m2.rows(),
        m2.cols()
    );
    println!(
        "  serial configuration time @1us/pulse: {:.1} us",
        1e6 * (m1.configuration_time(1e-6) + m2.configuration_time(1e-6))
    );
    let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    let readback_ok = back == pla;
    let function_ok = back.implements(&f);
    println!("  array readback matches: {readback_ok}");
    println!("  function after programming verified: {function_ok}");

    // Interconnect: route the two PLA outputs to swapped next-stage inputs.
    println!();
    println!("## Pass-transistor interconnect (crosspoint CNFETs, CG high)");
    let mut xbar = Crossbar::new(2, 2);
    xbar.connect(0, 1);
    xbar.connect(1, 0);
    let sample = pla.simulate_bits(0b011); // a=1, b=1, cin=0
    let routed = xbar.route(&sample).expect("no shorts");
    println!("  PLA outputs (sum, carry) @ a=b=1,cin=0: {sample:?}");
    println!("  routed through swap crossbar          : {routed:?}");
    println!(
        "  programmed crosspoints                : {}",
        xbar.connection_count()
    );

    // Dynamic-logic timing of the cascade.
    let timing: PlaTiming = TimingModel::nominal(32.0).pla_timing(&pla);
    println!();
    println!("## Dynamic-logic timing (precharge + domino evaluate)");
    println!("  precharge: {:.1} ps", timing.t_precharge * 1e12);
    println!(
        "  evaluate : {:.1} ps (plane1 {:.1} + plane2 {:.1})",
        timing.t_evaluate() * 1e12,
        timing.t_eval_plane1 * 1e12,
        timing.t_eval_plane2 * 1e12
    );
    println!("  max clock: {:.2} GHz", timing.frequency() / 1e9);

    if !(readback_ok && function_ok) {
        std::process::exit(1);
    }
}
