//! Regenerates **Fig. 2**: the dynamic GNOR gate configured as
//! `Y = NOR(A, B̄, D)` with input `C` inhibited.
//!
//! Controls (paper): `C1 = V+` (A passes), `C2 = V−` (B inverted),
//! `C3 = V0` (C dropped), `C4 = V+` (D passes). The binary runs the
//! precharge/evaluate cell through all 16 input vectors and checks the
//! configured function.
//!
//! Run: `cargo run --release -p bench --bin fig2_gnor`

use ambipla_core::{DynamicGnor, GnorGate, InputPolarity};

fn main() {
    println!("# Fig. 2 — GNOR gate configured as Y = NOR(A, B', D)");
    println!();
    let gate = GnorGate::new(vec![
        InputPolarity::Pass,   // C1 = V+  → A as is
        InputPolarity::Invert, // C2 = V-  → B inverted
        InputPolarity::Drop,   // C3 = V0  → C inhibited
        InputPolarity::Pass,   // C4 = V+  → D as is
    ]);
    println!("PG charges: {:?}", gate.pg_levels());
    println!();
    println!("| A | B | C | D | Y (dynamic) | NOR(A,B',D) |");
    println!("|---|---|---|---|-------------|-------------|");
    let mut cell = DynamicGnor::new(gate.clone());
    let mut mismatches = 0;
    for bits in 0..16u8 {
        let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
        let y = cell.cycle(&x);
        let want = !(x[0] || !x[1] || x[3]);
        if y != want {
            mismatches += 1;
        }
        println!(
            "| {} | {} | {} | {} | {:^11} | {:^11} |",
            u8::from(x[0]),
            u8::from(x[1]),
            u8::from(x[2]),
            u8::from(x[3]),
            u8::from(y),
            u8::from(want),
        );
    }
    println!();
    if mismatches == 0 {
        println!("All 16 vectors match the paper's configured function.");
    } else {
        println!("MISMATCH on {mismatches} vectors — investigate!");
        std::process::exit(1);
    }
    println!(
        "Active devices: {} of 4 (input C electrically dropped via V0).",
        gate.active_inputs()
    );
}
