//! Ablation: ESPRESSO (heuristic) vs Quine–McCluskey (exact) minimization
//! quality on small functions — validates that the Table 1 product counts
//! produced by the heuristic are trustworthy.
//!
//! Run: `cargo run --release -p bench --bin ablation_exact`

use logic::{espresso, exact_minimize, Cover, Cube};

fn main() {
    println!("# Minimizer quality — ESPRESSO vs exact (Quine-McCluskey + B&B)");
    println!();
    println!("| workload           | exact cubes | espresso cubes | optimal? |");
    println!("|--------------------|-------------|----------------|----------|");

    let mut optimal = 0usize;
    let mut total = 0usize;
    let mut state = 0xc0ffee_u64;
    for trial in 0..10 {
        // Random 4-input, 2-output truth tables.
        let mut f = Cover::new(4, 2);
        for m in 0..16u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let o0 = state >> 33 & 1 == 1;
            let o1 = state >> 47 & 1 == 1;
            if o0 || o1 {
                let mut c = Cube::minterm(m, 4, 2);
                if !o0 {
                    c.clear_output(0);
                }
                if !o1 {
                    c.clear_output(1);
                }
                f.push(c);
            }
        }
        if f.is_empty() {
            continue;
        }
        let dc = Cover::new(4, 2);
        let exact = exact_minimize(&f, &dc);
        let (heur, _) = espresso(&f);
        let is_opt = heur.len() == exact.len();
        optimal += usize::from(is_opt);
        total += 1;
        println!(
            "| random4x2 #{trial:<7} | {:>11} | {:>14} | {:>8} |",
            exact.len(),
            heur.len(),
            is_opt
        );
    }

    // Known-structure functions.
    for (name, text, ni) in [
        ("xor2", "10 1\n01 1", 2),
        ("maj3", "11- 1\n-11 1\n1-1 1", 3),
        ("xor3", "100 1\n010 1\n001 1\n111 1", 3),
    ] {
        let f = Cover::parse(text, ni, 1).unwrap();
        let exact = exact_minimize(&f, &Cover::new(ni, 1));
        let (heur, _) = espresso(&f);
        let is_opt = heur.len() == exact.len();
        optimal += usize::from(is_opt);
        total += 1;
        println!(
            "| {:<18} | {:>11} | {:>14} | {:>8} |",
            name,
            exact.len(),
            heur.len(),
            is_opt
        );
    }

    println!();
    println!("ESPRESSO hit the exact optimum on {optimal}/{total} workloads.");
}
