//! Benchmark harness crate: see bins/ and benches/.
