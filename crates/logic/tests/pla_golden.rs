//! Golden-file round-trip tests for the `.pla` reader/writer.
//!
//! For every file under `tests/golden/`, `parse → print → parse` must be a
//! fixpoint: the second parse reproduces the first one's covers, labels
//! and type exactly, and printing the re-parsed file reproduces the first
//! printed text byte-for-byte. Malformed inputs must come back as
//! [`ParsePlaError`] values, never panics.

use logic::{parse_pla, write_pla, ParsePlaError, Pla};
use std::fs;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pla"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read_to_string(&p).expect("readable golden file"),
            )
        })
        .collect();
    files.sort();
    assert!(files.len() >= 5, "golden corpus went missing");
    files
}

fn assert_same_pla(a: &Pla, b: &Pla, name: &str) {
    assert_eq!(a.on, b.on, "{name}: ON-set drifted");
    assert_eq!(a.dc, b.dc, "{name}: DC-set drifted");
    assert_eq!(a.off, b.off, "{name}: OFF-set drifted");
    assert_eq!(a.pla_type, b.pla_type, "{name}: type drifted");
    assert_eq!(a.input_labels, b.input_labels, "{name}: .ilb drifted");
    assert_eq!(a.output_labels, b.output_labels, "{name}: .ob drifted");
}

#[test]
fn parse_print_parse_is_a_fixpoint() {
    for (name, text) in golden_files() {
        let first = parse_pla(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = write_pla(&first);
        let second = parse_pla(&printed).unwrap_or_else(|e| panic!("{name} reprint: {e}"));
        assert_same_pla(&first, &second, &name);
        // One more round: printing the re-parsed PLA must be byte-stable.
        assert_eq!(write_pla(&second), printed, "{name}: printing not stable");
    }
}

#[test]
fn roundtrip_preserves_function_pointwise() {
    for (name, text) in golden_files() {
        let first = parse_pla(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let second = parse_pla(&write_pla(&first)).expect("reprint parses");
        let n = first.n_inputs().min(10);
        for bits in 0..(1u64 << n) {
            assert_eq!(
                first.on.eval_bits(bits),
                second.on.eval_bits(bits),
                "{name}: ON function drifted at {bits:b}"
            );
            assert_eq!(
                first.dc.eval_bits(bits),
                second.dc.eval_bits(bits),
                "{name}: DC function drifted at {bits:b}"
            );
        }
    }
}

#[test]
fn golden_metadata_spot_checks() {
    let text = fs::read_to_string(golden_dir().join("adder3.pla")).expect("adder3");
    let pla = parse_pla(&text).expect("parses");
    assert_eq!(pla.n_inputs(), 3);
    assert_eq!(pla.n_outputs(), 2);
    assert_eq!(pla.on.len(), 8);
    assert_eq!(pla.input_labels.as_deref().unwrap(), ["a", "b", "cin"]);
    assert_eq!(pla.output_labels.as_deref().unwrap(), ["sum", "carry"]);

    let text = fs::read_to_string(golden_dir().join("fr_offset.pla")).expect("fr_offset");
    let pla = parse_pla(&text).expect("parses");
    assert_eq!(pla.on.len(), 2);
    // Every '0' output position of an `fr` file enrolls in the OFF-set:
    // the two pure-OFF rows plus the complementary halves of the ON rows.
    assert_eq!(pla.off.len(), 4, "fr files carry an explicit OFF-set");
    assert!(pla.dc.is_empty());
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    let cases: &[(&str, &str)] = &[
        ("empty", ""),
        ("cubes with no header at all", "10 1\n01 1\n"),
        ("bad i arg", ".i two\n.o 1\n"),
        ("bad type", ".i 2\n.o 1\n.type zz\n"),
        ("unknown directive", ".i 2\n.o 1\n.frobnicate\n"),
        ("short cube", ".i 3\n.o 1\n10 1\n"),
        ("long cube", ".i 2\n.o 1\n101 1\n"),
        ("bad input char", ".i 2\n.o 1\nx0 1\n"),
        ("bad output char", ".i 2\n.o 1\n10 z\n"),
        ("p mismatch", ".i 2\n.o 1\n.p 9\n10 1\n.e\n"),
        ("missing o", ".i 2\n10 1\n"),
    ];
    for (what, text) in cases {
        let result = std::panic::catch_unwind(|| parse_pla(text));
        let outcome = result.unwrap_or_else(|_| panic!("{what}: parser panicked"));
        assert!(outcome.is_err(), "{what}: expected a ParsePlaError");
    }
}

#[test]
fn error_lines_are_reported() {
    let err = parse_pla(".i 2\n.o 1\n10 1\nxx y\n").unwrap_err();
    assert_eq!(err, ParsePlaError::BadCube { line: 4 });
}
