//! Differential tests: the word-parallel minimization kernels against the
//! retained naive reference (`tests/naive/mod.rs`).
//!
//! The optimized URP and ESPRESSO passes are designed to be *drop-in*
//! replacements — same split heuristics, same pass order, same tie-breaks
//! — so these tests assert the strongest possible property: the covers
//! produced are **identical**, cube for cube, not merely equivalent.
//! Function preservation is additionally verified pointwise with
//! word-parallel exhaustive evaluation (`exhaustive_block`) for every
//! workload, all of which stay ≤ 12 inputs.

mod naive;

use logic::eval::{exhaustive_block, lane_mask, LANES};
use logic::{espresso, espresso_with_dc, Cover, Cube, Tri};
use proptest::prelude::*;

/// Build a cover from raw generated rows, truncated to `n` inputs and `o`
/// outputs. Each row is (ternary values 0/1/2, output bools, forced
/// output index) — the force guarantees a nonempty output part.
fn build_cover(n: usize, o: usize, rows: &[(Vec<u8>, Vec<bool>, usize)]) -> Cover {
    let mut f = Cover::new(n, o);
    for (tris, outs, force) in rows {
        let tris: Vec<Tri> = tris[..n]
            .iter()
            .map(|&t| match t {
                0 => Tri::Zero,
                1 => Tri::One,
                _ => Tri::DontCare,
            })
            .collect();
        let mut outs: Vec<bool> = outs[..o].to_vec();
        outs[force % o] = true;
        f.push(Cube::from_tris(&tris, &outs));
    }
    f
}

type RawRows = Vec<(Vec<u8>, Vec<bool>, usize)>;

/// Raw material for a random cover: up to 12 inputs / 3 outputs worth of
/// rows, truncated at build time.
fn arb_rows(max_cubes: usize) -> impl Strategy<Value = RawRows> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0..3u8, 12),
            proptest::collection::vec(any::<bool>(), 3),
            0..3usize,
        ),
        1..=max_cubes,
    )
}

/// Assert two same-arity covers compute the same function, word-parallel
/// over every assignment (requires ≤ 12 inputs).
fn assert_same_function(a: &Cover, b: &Cover) {
    assert_eq!(a.n_inputs(), b.n_inputs());
    assert_eq!(a.n_outputs(), b.n_outputs());
    let n = a.n_inputs();
    let total = 1u64 << n;
    for base in (0..total).step_by(LANES) {
        let inputs = exhaustive_block(base, n);
        let wa = a.eval_batch(&inputs);
        let wb = b.eval_batch(&inputs);
        let mask = lane_mask((total - base).min(LANES as u64) as usize);
        for (j, (&x, &y)) in wa.iter().zip(&wb).enumerate() {
            assert_eq!((x ^ y) & mask, 0, "output {j} differs in block {base}");
        }
    }
}

/// Assert `r` implements `on` with don't-cares `dc`:
/// `on ⊆ r ∪ dc` and `r ⊆ on ∪ dc`, pointwise per output. (When `dc`
/// overlaps `on` — allowed by the generators here — the minimizer may
/// legitimately leave overlap points to the don't-care side, so the
/// coverage bound is against `r ∪ dc`, not `r` alone.)
fn assert_implements(on: &Cover, dc: &Cover, r: &Cover) {
    let n = on.n_inputs();
    let total = 1u64 << n;
    for base in (0..total).step_by(LANES) {
        let inputs = exhaustive_block(base, n);
        let won = on.eval_batch(&inputs);
        let wdc = dc.eval_batch(&inputs);
        let wr = r.eval_batch(&inputs);
        let mask = lane_mask((total - base).min(LANES as u64) as usize);
        for j in 0..on.n_outputs() {
            assert_eq!(
                won[j] & !(wr[j] | wdc[j]) & mask,
                0,
                "ON not covered, output {j}"
            );
            assert_eq!(
                wr[j] & !(won[j] | wdc[j]) & mask,
                0,
                "result leaks into OFF, output {j}"
            );
        }
    }
}

/// The unfiltered O(n²) SCC loop exactly as it was before the
/// word-signature prefilter: the reference `make_scc_minimal` must now be
/// a drop-in replacement for.
fn naive_scc(cover: &Cover) -> Cover {
    let mut cubes: Vec<Cube> = cover.iter().filter(|c| !c.is_empty()).cloned().collect();
    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..cubes.len() {
            if i == j || !keep[j] {
                continue;
            }
            if cubes[j].contains(&cubes[i]) && (i > j || cubes[i] != cubes[j]) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut it = keep.iter();
    cubes.retain(|_| *it.next().unwrap());
    Cover::from_cubes(cover.n_inputs(), cover.n_outputs(), cubes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The signature-prefiltered `make_scc_minimal` keeps exactly the
    /// cubes the naive pairwise-containment loop keeps, in the same
    /// order (identical covers, not merely equivalent ones).
    #[test]
    fn scc_minimal_matches_naive(
        ni in 1..13usize,
        no in 1..4usize,
        rows in arb_rows(12),
    ) {
        let f = build_cover(ni, no, &rows);
        let mut fast = f.clone();
        fast.make_scc_minimal();
        prop_assert_eq!(fast.to_string(), naive_scc(&f).to_string());
    }

    /// Word-parallel tautology answers exactly like the naive recursion.
    #[test]
    fn tautology_matches_naive(
        ni in 1..13usize,
        rows in arb_rows(8),
    ) {
        let f = build_cover(ni, 1, &rows);
        prop_assert_eq!(f.is_tautology(), naive::tautology(&f));
    }

    /// Word-parallel complement produces the *identical* cover (same
    /// cubes, same order), and it is the pointwise negation.
    #[test]
    fn complement_matches_naive_exactly(
        ni in 1..13usize,
        rows in arb_rows(8),
    ) {
        let f = build_cover(ni, 1, &rows);
        let fast = f.complement();
        let slow = naive::complement(&f);
        prop_assert_eq!(fast.to_string(), slow.to_string());
        // Pointwise: fast == !f.
        let total = 1u64 << ni;
        for base in (0..total).step_by(LANES) {
            let inputs = exhaustive_block(base, ni);
            let wf = f.eval_batch(&inputs);
            let wc = fast.eval_batch(&inputs);
            let mask = lane_mask((total - base).min(LANES as u64) as usize);
            prop_assert_eq!((wf[0] ^ !wc[0]) & mask, 0);
        }
    }

    /// The optimized ESPRESSO pipeline is a drop-in replacement: identical
    /// minimized cover, identical stats, function preserved.
    #[test]
    fn espresso_matches_naive(
        ni in 1..13usize,
        no in 1..4usize,
        rows in arb_rows(10),
    ) {
        let f = build_cover(ni, no, &rows);
        let (fast, fast_stats) = espresso(&f);
        let (slow, slow_stats) = naive::espresso(&f);
        prop_assert_eq!(fast.to_string(), slow.to_string());
        prop_assert_eq!(fast_stats, slow_stats);
        assert_same_function(&f, &fast);
    }

    /// Same, with a non-trivial don't-care set: identical covers and the
    /// result stays inside `on ∪ dc` while covering `on`.
    #[test]
    fn espresso_with_dc_matches_naive(
        ni in 1..11usize,
        no in 1..4usize,
        on_rows in arb_rows(8),
        dc_rows in arb_rows(5),
    ) {
        let on = build_cover(ni, no, &on_rows);
        let dc = build_cover(ni, no, &dc_rows);
        let (fast, fast_stats) = espresso_with_dc(&on, &dc);
        let (slow, slow_stats) = naive::espresso_with_dc(&on, &dc);
        prop_assert_eq!(fast.to_string(), slow.to_string());
        prop_assert_eq!(fast_stats, slow_stats);
        assert_implements(&on, &dc, &fast);
    }
}

/// Beyond the proptest arities: covers spanning several pair-words must
/// agree too (no pointwise sweep at 40 inputs; cover identity is the
/// check).
#[test]
fn wide_covers_match_naive() {
    let mut rows = Vec::new();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    for _ in 0..8 {
        let mut c = Cube::universe(40, 1);
        for i in 0..40 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 4 {
                0 => c.set_input(i, Tri::Zero),
                1 => c.set_input(i, Tri::One),
                _ => {}
            }
        }
        rows.push(c);
    }
    let f = Cover::from_cubes(40, 1, rows);
    assert_eq!(f.is_tautology(), naive::tautology(&f));
    assert_eq!(
        f.complement().to_string(),
        naive::complement(&f).to_string()
    );
    // The SCC signature prefilter folds across both pair-words at 40
    // inputs; the result must still match the unfiltered loop exactly.
    let mut scc = f.clone();
    scc.make_scc_minimal();
    assert_eq!(scc.to_string(), naive_scc(&f).to_string());
    let (fast, fast_stats) = espresso(&f);
    let (slow, slow_stats) = naive::espresso(&f);
    assert_eq!(fast.to_string(), slow.to_string());
    assert_eq!(fast_stats, slow_stats);
}

/// `EspressoStats` keeps being reported with sane invariants.
#[test]
fn stats_still_reported() {
    let f = Cover::parse("10 1\n11 1\n1- 1", 2, 1).unwrap();
    let (min, stats) = espresso(&f);
    assert_eq!(stats.initial_cubes, 1); // SCC removes both contained cubes
    assert_eq!(stats.final_cubes, min.len());
    assert_eq!(stats.final_literals, 1);
    assert!(stats.iterations >= 1);
}
