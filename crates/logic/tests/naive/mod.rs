//! Naive reference copy of the pre-word-parallel minimization kernels.
//!
//! This module preserves, verbatim in algorithm and idiom, the scalar
//! `Tri`-at-a-time implementation of the URP (tautology, complement) and
//! the ESPRESSO loop (per-literal EXPAND with full OFF-set rescans,
//! per-(cube, output) `rest`-cover rebuilds in IRREDUNDANT/REDUCE,
//! clone-per-level Shannon recursion) that the word-parallel kernels in
//! `logic::urp` / `logic::espresso` replaced. It exists so the optimized
//! code is *differentially* tested: `tests/espresso_diff.rs` asserts the
//! two pipelines produce identical covers on random workloads.
//!
//! `crates/bench/benches/espresso_bench.rs` `#[path]`-includes this very
//! file to measure and assert the speedup floor of the optimized pipeline
//! over this reference, so the differential tests and the bench can never
//! drift apart.
//!
//! Reference code is retained as-is; parts of it are exercised only by
//! some of the including binaries.
#![allow(dead_code)]

use logic::{Cover, Cube, EspressoStats, Tri};

/// Scalar literal count, one `input(i)` call per variable (the seed's
/// `Cube::literal_count`).
fn literal_count(c: &Cube) -> usize {
    (0..c.n_inputs())
        .filter(|&i| c.input(i) != Tri::DontCare)
        .count()
}

/// Scalar cover literal count.
fn cover_literal_count(f: &Cover) -> usize {
    f.iter().map(literal_count).sum()
}

/// Scalar single-output projection (the seed's `Cover::output_slice`):
/// per-variable `Tri` extraction and re-packing.
fn output_slice(f: &Cover, j: usize) -> Cover {
    let mut out = Cover::new(f.n_inputs(), 1);
    for c in f.iter() {
        if c.has_output(j) {
            let mut tris = Vec::with_capacity(f.n_inputs());
            for i in 0..f.n_inputs() {
                tris.push(c.input(i));
            }
            out.push(Cube::from_tris(&tris, &[true]));
        }
    }
    out
}

/// How a variable appears across a cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VarUse {
    pos: usize,
    neg: usize,
}

impl VarUse {
    fn is_binate(self) -> bool {
        self.pos > 0 && self.neg > 0
    }
}

fn var_usage(cover: &Cover) -> Vec<VarUse> {
    let mut use_ = vec![VarUse { pos: 0, neg: 0 }; cover.n_inputs()];
    for c in cover.iter() {
        for (i, u) in use_.iter_mut().enumerate() {
            match c.input(i) {
                Tri::One => u.pos += 1,
                Tri::Zero => u.neg += 1,
                Tri::DontCare => {}
            }
        }
    }
    use_
}

/// Pick the most binate variable (largest `min(pos, neg)`, ties broken by
/// total literal count).
fn most_binate_var(cover: &Cover) -> Option<usize> {
    let usage = var_usage(cover);
    usage
        .iter()
        .enumerate()
        .filter(|(_, u)| u.is_binate())
        .max_by_key(|(_, u)| (u.pos.min(u.neg), u.pos + u.neg))
        .map(|(i, _)| i)
}

/// Shannon cofactor of a single-output cover with respect to literal
/// `x_i = value`, materialized as a fresh cover.
fn shannon_cofactor(cover: &Cover, i: usize, value: bool) -> Cover {
    let mut p = Cube::universe(cover.n_inputs(), 1);
    p.set_input(i, if value { Tri::One } else { Tri::Zero });
    cover.cofactor(&p)
}

/// Reference URP tautology check (clone-per-level recursion, `var_usage`
/// computed twice per level — once for the quick reject, once again inside
/// `most_binate_var` — exactly as the seed did).
pub fn tautology(cover: &Cover) -> bool {
    assert_eq!(cover.n_outputs(), 1, "tautology is defined per output");
    tautology_rec(cover)
}

fn tautology_rec(cover: &Cover) -> bool {
    if cover.iter().any(|c| c.input_is_full()) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    let usage = var_usage(cover);
    let n = cover.len();
    for u in &usage {
        if (u.pos == n && u.neg == 0) || (u.neg == n && u.pos == 0) {
            return false;
        }
    }
    match most_binate_var(cover) {
        None => false,
        Some(i) => {
            tautology_rec(&shannon_cofactor(cover, i, true))
                && tautology_rec(&shannon_cofactor(cover, i, false))
        }
    }
}

/// Reference URP complement.
pub fn complement(cover: &Cover) -> Cover {
    assert_eq!(cover.n_outputs(), 1, "complement is defined per output");
    let mut r = complement_rec(cover);
    r.make_scc_minimal();
    r
}

fn complement_rec(cover: &Cover) -> Cover {
    let n = cover.n_inputs();
    if cover.iter().any(|c| c.input_is_full()) {
        return Cover::new(n, 1);
    }
    if cover.is_empty() {
        return Cover::from_cubes(n, 1, vec![Cube::universe(n, 1)]);
    }
    if cover.len() == 1 {
        return complement_cube(&cover.cubes()[0]);
    }
    match most_binate_var(cover) {
        Some(i) => merge_complement(cover, i),
        None => {
            let usage = var_usage(cover);
            let (i, _) = usage
                .iter()
                .enumerate()
                .max_by_key(|(_, u)| u.pos + u.neg)
                .expect("nonempty cover has variables");
            merge_complement(cover, i)
        }
    }
}

fn merge_complement(cover: &Cover, i: usize) -> Cover {
    let n = cover.n_inputs();
    let comp_pos = complement_rec(&shannon_cofactor(cover, i, true));
    let comp_neg = complement_rec(&shannon_cofactor(cover, i, false));
    let mut cubes = Vec::with_capacity(comp_pos.len() + comp_neg.len());
    for (value, part) in [(true, comp_pos), (false, comp_neg)] {
        for c in part.iter() {
            let mut c = c.clone();
            c.set_input(i, if value { Tri::One } else { Tri::Zero });
            cubes.push(c);
        }
    }
    let mut r = Cover::from_cubes(n, 1, cubes);
    r.make_scc_minimal();
    r
}

fn complement_cube(cube: &Cube) -> Cover {
    let n = cube.n_inputs();
    let mut out = Cover::new(n, 1);
    for i in 0..n {
        match cube.input(i) {
            Tri::DontCare => {}
            t => {
                let mut c = Cube::universe(n, 1);
                c.set_input(i, if t == Tri::One { Tri::Zero } else { Tri::One });
                out.push(c);
            }
        }
    }
    out
}

/// Reference ESPRESSO: minimize `on` with an empty don't-care set.
pub fn espresso(on: &Cover) -> (Cover, EspressoStats) {
    espresso_with_dc(on, &Cover::new(on.n_inputs(), on.n_outputs()))
}

/// Reference ESPRESSO against a don't-care cover.
pub fn espresso_with_dc(on: &Cover, dc: &Cover) -> (Cover, EspressoStats) {
    assert_eq!(on.n_inputs(), dc.n_inputs(), "input arity mismatch");
    assert_eq!(on.n_outputs(), dc.n_outputs(), "output arity mismatch");

    let mut f = on.clone();
    f.make_scc_minimal();
    let initial_cubes = f.len();
    let initial_literals = cover_literal_count(&f);

    let off: Vec<Cover> = (0..on.n_outputs())
        .map(|j| complement(&output_slice(on, j).union(&output_slice(dc, j))))
        .collect();

    f = expand(&f, &off);
    f = irredundant(&f, dc);
    let mut best = f.clone();
    let mut best_cost = cost(&best);

    let mut iterations = 0;
    loop {
        iterations += 1;
        f = reduce(&f, dc);
        f = expand(&f, &off);
        f = irredundant(&f, dc);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
        if iterations >= 16 {
            break;
        }
    }

    let stats = EspressoStats {
        initial_cubes,
        initial_literals,
        final_cubes: best.len(),
        final_literals: cover_literal_count(&best),
        iterations,
    };
    (best, stats)
}

fn cost(f: &Cover) -> (usize, usize) {
    (f.len(), cover_literal_count(f))
}

/// Per-literal EXPAND: every raise attempt clones the cube and rescans the
/// whole relevant OFF-set.
fn expand(f: &Cover, off: &[Cover]) -> Cover {
    let n_inputs = f.n_inputs();
    let n_outputs = f.n_outputs();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(literal_count(&cubes[i])));

    for &idx in &order {
        let mut c = cubes[idx].clone();
        for i in 0..n_inputs {
            if c.input(i) == Tri::DontCare {
                continue;
            }
            let mut trial = c.clone();
            trial.set_input(i, Tri::DontCare);
            if is_off_disjoint(&trial, off) {
                c = trial;
            }
        }
        for (j, off_j) in off.iter().enumerate() {
            if c.has_output(j) {
                continue;
            }
            let ip = c.input_part();
            if off_j.iter().all(|o| !ip.inputs_intersect(o)) {
                c.set_output(j);
            }
        }
        cubes[idx] = c;
    }
    let mut out = Cover::from_cubes(n_inputs, n_outputs, cubes);
    out.make_scc_minimal();
    out
}

fn is_off_disjoint(c: &Cube, off: &[Cover]) -> bool {
    let ip = c.input_part();
    c.outputs()
        .all(|j| off[j].iter().all(|o| !ip.inputs_intersect(o)))
}

/// IRREDUNDANT with per-(cube, output) `rest`-cover rebuilds.
fn irredundant(f: &Cover, dc: &Cover) -> Cover {
    let n_inputs = f.n_inputs();
    let n_outputs = f.n_outputs();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(literal_count(&cubes[i])));

    let mut alive = vec![true; cubes.len()];
    for &idx in &order {
        let ip = cubes[idx].input_part();
        let outs: Vec<usize> = cubes[idx].outputs().collect();
        for j in outs {
            let mut rest = Cover::new(n_inputs, 1);
            for (k, other) in cubes.iter().enumerate() {
                if k != idx && alive[k] && other.has_output(j) {
                    rest.push(other.input_part());
                }
            }
            for d in dc.iter() {
                if d.has_output(j) {
                    rest.push(d.input_part());
                }
            }
            if tautology(&rest.cofactor(&ip)) {
                cubes[idx].clear_output(j);
            }
        }
        if cubes[idx].is_empty() {
            alive[idx] = false;
        }
    }
    let kept: Vec<Cube> = cubes
        .into_iter()
        .zip(alive)
        .filter_map(|(c, a)| a.then_some(c))
        .collect();
    Cover::from_cubes(n_inputs, n_outputs, kept)
}

/// REDUCE with per-(cube, output) `rest`-cover rebuilds.
fn reduce(f: &Cover, dc: &Cover) -> Cover {
    let n_inputs = f.n_inputs();
    let n_outputs = f.n_outputs();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| literal_count(&cubes[i]));

    for &idx in &order {
        let ip = cubes[idx].input_part();
        let outs: Vec<usize> = cubes[idx].outputs().collect();
        let mut new_input: Option<Cube> = None;
        for &j in &outs {
            let mut rest = Cover::new(n_inputs, 1);
            for (k, other) in cubes.iter().enumerate() {
                if k != idx && !other.is_empty() && other.has_output(j) {
                    rest.push(other.input_part());
                }
            }
            for d in dc.iter() {
                if d.has_output(j) {
                    rest.push(d.input_part());
                }
            }
            let uncovered = complement(&rest.cofactor(&ip));
            if uncovered.is_empty() {
                continue;
            }
            let mut sup: Option<Cube> = None;
            for u in uncovered.iter() {
                let clipped = u.intersect(&ip);
                if clipped.is_empty() {
                    continue;
                }
                sup = Some(match sup {
                    None => clipped,
                    Some(s) => s.supercube(&clipped),
                });
            }
            if let Some(s) = sup {
                new_input = Some(match new_input {
                    None => s,
                    Some(t) => t.supercube(&s),
                });
            }
        }
        if let Some(ni) = new_input {
            for i in 0..n_inputs {
                cubes[idx].set_input(i, ni.input(i));
            }
        }
    }
    let mut out = Cover::from_cubes(n_inputs, n_outputs, cubes);
    out.make_scc_minimal();
    out
}
