//! ESPRESSO-style heuristic two-level minimization.
//!
//! Implements the classical EXPAND / IRREDUNDANT / REDUCE loop over
//! multi-output covers with optional don't-care sets, as in Brayton et al.
//! Every pass is function-preserving by construction, and the test-suite
//! re-verifies equivalence exhaustively (plus differentially against a
//! retained naive reference implementation under `tests/`).
//!
//! # Word-parallel hot path
//!
//! The loop is built on three word-parallel kernels:
//!
//! * **EXPAND** uses the classic *blocking matrix*: one pass over the
//!   OFF-set yields, per OFF-cube, the LO-aligned word-mask of literals
//!   whose raising it blocks. Raising a literal is then a handful of word
//!   ops (clear the bit in every blocking row, fold rows that became
//!   singletons into the blocked mask) instead of re-scanning the whole
//!   OFF-set per literal. Literals contested by no OFF-cube are raised
//!   upfront in one word-parallel step.
//! * **IRREDUNDANT / REDUCE** keep per-output index lists of the cubes
//!   currently driving each output — updated incrementally as output bits
//!   clear — and feed them straight into the allocation-free
//!   [`UrpContext`] cofactor kernels, instead of rebuilding a `rest` cover
//!   cube-by-cube for every (cube, output) pair.
//! * The per-output **OFF-set complements** (independent single-output URP
//!   runs) and the per-cube EXPAND step are sharded over
//!   [`Pool`](crate::par::Pool), a deterministic scoped-thread pool:
//!   results are bit-identical to the sequential loop for any thread
//!   count.
//!
//! The paper's Table 1 relies on this minimizer only through the product-term
//! counts of the minimized MCNC covers; the `mcnc` crate's stand-in
//! benchmarks are constructed to be prime and irredundant, which this loop
//! recognizes as a fixed point.

use crate::cover::Cover;
use crate::cube::{Cube, LO_MASK};
use crate::par;
use crate::urp::UrpContext;
use std::time::Instant;

/// One pass of the minimization loop, for profiling purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// The per-output OFF-set complements (URP runs) computed up front.
    Urp,
    /// EXPAND: raise cubes to prime implicants.
    Expand,
    /// IRREDUNDANT: drop covered cubes / output bits.
    Irredundant,
    /// REDUCE: shrink cubes to let the next EXPAND move elsewhere.
    Reduce,
}

impl Pass {
    /// Stable lowercase name (bench JSON / exporter label).
    pub const fn label(self) -> &'static str {
        match self {
            Pass::Urp => "urp",
            Pass::Expand => "expand",
            Pass::Irredundant => "irredundant",
            Pass::Reduce => "reduce",
        }
    }
}

/// One profiled pass execution: which pass, in which improvement
/// iteration (0 is the pre-loop EXPAND/IRREDUNDANT prologue, and the URP
/// complements), the cube count *after* the pass, and its wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSample {
    /// Which pass ran.
    pub pass: Pass,
    /// Improvement-loop iteration (0 = prologue).
    pub iteration: usize,
    /// Cover cube count when the pass finished.
    pub cubes: usize,
    /// Wall time of the pass in ns.
    pub wall_ns: u64,
}

/// Per-pass profile of one minimization run, recorded by
/// [`espresso_traced`] / [`espresso_with_dc_traced`]: the full pass
/// sequence with iteration numbers, the cube-count trajectory, and wall
/// time per pass. The untraced entry points take no timestamps at all —
/// the trace is strictly opt-in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinimizeTrace {
    /// Every pass execution, in run order.
    pub samples: Vec<PassSample>,
}

impl MinimizeTrace {
    fn record(&mut self, pass: Pass, iteration: usize, cubes: usize, started: Instant) {
        self.samples.push(PassSample {
            pass,
            iteration,
            cubes,
            wall_ns: started.elapsed().as_nanos() as u64,
        });
    }

    /// `(executions, total wall ns)` of one pass kind across the run.
    pub fn pass_totals(&self, pass: Pass) -> (usize, u64) {
        self.samples
            .iter()
            .filter(|s| s.pass == pass)
            .fold((0, 0), |(n, ns), s| (n + 1, ns + s.wall_ns))
    }

    /// Cube counts after each pass, in run order — the trajectory the
    /// EXPAND/IRREDUNDANT/REDUCE loop walked.
    pub fn cube_trajectory(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.cubes).collect()
    }

    /// Highest improvement-loop iteration recorded.
    pub fn iterations(&self) -> usize {
        self.samples.iter().map(|s| s.iteration).max().unwrap_or(0)
    }
}

/// Statistics reported by a minimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EspressoStats {
    /// Cube count of the input cover (after SCC cleanup).
    pub initial_cubes: usize,
    /// Input-literal count of the input cover.
    pub initial_literals: usize,
    /// Cube count of the result.
    pub final_cubes: usize,
    /// Input-literal count of the result.
    pub final_literals: usize,
    /// Number of REDUCE/EXPAND/IRREDUNDANT improvement iterations executed.
    pub iterations: usize,
}

/// Minimize `on` with an empty don't-care set.
///
/// Convenience wrapper around [`espresso_with_dc`].
///
/// # Example
///
/// ```
/// use logic::{espresso, Cover};
///
/// // Redundant 3-cube cover of x0: collapses to a single cube.
/// let f = Cover::parse("10 1\n11 1\n1- 1", 2, 1).unwrap();
/// let (min, stats) = espresso(&f);
/// assert_eq!(min.len(), 1);
/// assert_eq!(stats.final_literals, 1);
/// ```
pub fn espresso(on: &Cover) -> (Cover, EspressoStats) {
    espresso_with_dc(on, &Cover::new(on.n_inputs(), on.n_outputs()))
}

/// Like [`espresso`], but also records a per-pass [`MinimizeTrace`]
/// (iteration counts, cube-count trajectory, wall time per pass).
pub fn espresso_traced(on: &Cover) -> (Cover, EspressoStats, MinimizeTrace) {
    espresso_with_dc_traced(on, &Cover::new(on.n_inputs(), on.n_outputs()))
}

/// Like [`espresso_with_dc`], but also records a per-pass
/// [`MinimizeTrace`].
///
/// # Panics
///
/// Panics if the arities of `on` and `dc` differ.
pub fn espresso_with_dc_traced(on: &Cover, dc: &Cover) -> (Cover, EspressoStats, MinimizeTrace) {
    let mut trace = MinimizeTrace::default();
    let (min, stats) = minimize(on, dc, Some(&mut trace));
    (min, stats, trace)
}

/// Minimize `on` against the don't-care cover `dc`.
///
/// The result `R` satisfies, for every output `j` and assignment `x`:
/// `on_j(x) = 1 → R_j(x) = 1` and `R_j(x) = 1 → on_j(x) ∨ dc_j(x)`.
///
/// # Panics
///
/// Panics if the arities of `on` and `dc` differ.
pub fn espresso_with_dc(on: &Cover, dc: &Cover) -> (Cover, EspressoStats) {
    minimize(on, dc, None)
}

/// The shared minimization loop. `trace` is strictly opt-in: with `None`
/// (the [`espresso`] / [`espresso_with_dc`] entry points) no clock is
/// read and no sample is built — profiling costs nothing unless a caller
/// asked for it.
fn minimize(
    on: &Cover,
    dc: &Cover,
    mut trace: Option<&mut MinimizeTrace>,
) -> (Cover, EspressoStats) {
    assert_eq!(on.n_inputs(), dc.n_inputs(), "input arity mismatch");
    assert_eq!(on.n_outputs(), dc.n_outputs(), "output arity mismatch");

    let mut f = on.clone();
    f.make_scc_minimal();
    let initial_cubes = f.len();
    let initial_literals = f.literal_count();

    // Per-output OFF-sets (input-part covers), computed once. The
    // complements are independent single-output URP runs, so they shard
    // across the deterministic pool; the gate keeps thread spawns away
    // from trivial workloads.
    let pool = par::Pool::available();
    let off_pool = if pool.threads() > 1 && on.n_outputs() >= 2 && on.len() + dc.len() >= 16 {
        pool
    } else {
        par::Pool::new(1)
    };
    // Each traced stage reads the clock only when a trace was requested.
    let mut started = trace.as_ref().map(|_| Instant::now());
    let off: Vec<Cover> = off_pool.map_range(on.n_outputs(), |j| {
        on.output_slice(j).union(&dc.output_slice(j)).complement()
    });
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Pass::Urp, 0, f.len(), started.unwrap());
        started = Some(Instant::now());
    }

    let mut ctx = UrpContext::new();
    f = expand(&f, &off, &pool);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Pass::Expand, 0, f.len(), started.unwrap());
        started = Some(Instant::now());
    }
    f = irredundant(&f, dc, &mut ctx);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Pass::Irredundant, 0, f.len(), started.unwrap());
    }
    let mut best = f.clone();
    let mut best_cost = cost(&best);

    let mut iterations = 0;
    loop {
        iterations += 1;
        started = trace.as_ref().map(|_| Instant::now());
        f = reduce(&f, dc, &mut ctx);
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Pass::Reduce, iterations, f.len(), started.unwrap());
            started = Some(Instant::now());
        }
        f = expand(&f, &off, &pool);
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Pass::Expand, iterations, f.len(), started.unwrap());
            started = Some(Instant::now());
        }
        f = irredundant(&f, dc, &mut ctx);
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Pass::Irredundant, iterations, f.len(), started.unwrap());
        }
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
        if iterations >= 16 {
            break; // safety valve; practically converges in 2-3 iterations
        }
    }

    let stats = EspressoStats {
        initial_cubes,
        initial_literals,
        final_cubes: best.len(),
        final_literals: best.literal_count(),
        iterations,
    };
    (best, stats)
}

/// Cover cost ordered lexicographically: fewer cubes first, then fewer
/// input literals.
fn cost(f: &Cover) -> (usize, usize) {
    (f.len(), f.literal_count())
}

/// Mark the *relatively essential* cubes of `f` against the don't-care set
/// `dc`: cube `c` is relatively essential iff removing it changes the
/// function, i.e. `(F ∖ c) ∪ D` does not cover `c` on some output. These
/// cubes appear in **every** cover of the function built from `f`'s cubes,
/// so minimizers may fix them and recurse on the rest.
///
/// # Panics
///
/// Panics if the arities of `f` and `dc` differ.
pub fn relatively_essential(f: &Cover, dc: &Cover) -> Vec<bool> {
    assert_eq!(f.n_inputs(), dc.n_inputs(), "input arity mismatch");
    assert_eq!(f.n_outputs(), dc.n_outputs(), "output arity mismatch");
    let cubes = f.cubes();
    let mut ctx = UrpContext::new();
    (0..cubes.len())
        .map(|idx| {
            cubes[idx].outputs().any(|j| {
                !ctx.cofactor_tautology(
                    f.n_inputs(),
                    cubes
                        .iter()
                        .enumerate()
                        .filter(|&(k, o)| k != idx && o.has_output(j))
                        .map(|(_, o)| o)
                        .chain(dc.iter().filter(|d| d.has_output(j))),
                    &cubes[idx],
                )
            })
        })
        .collect()
}

/// EXPAND: enlarge each cube to a prime implicant against the per-output
/// OFF-sets, then drop cubes that became covered. Cube expansions are
/// independent of each other, so they shard across the pool.
fn expand(f: &Cover, off: &[Cover], pool: &par::Pool) -> Cover {
    let cubes = f.cubes();
    let expanded: Vec<Cube> = if pool.threads() > 1 && cubes.len() >= 32 {
        pool.map_range(cubes.len(), |i| expand_cube(&cubes[i], off))
    } else {
        cubes.iter().map(|c| expand_cube(c, off)).collect()
    };
    let mut out = Cover::from_cubes(f.n_inputs(), f.n_outputs(), expanded);
    out.make_scc_minimal();
    out
}

/// Expand one cube to a prime implicant via the blocking matrix.
///
/// Row `r` of the matrix is the LO-aligned mask of input variables where
/// the cube conflicts with the `r`-th relevant OFF-cube (OFF-cubes of
/// every output the cube drives). The cube stays OFF-disjoint iff every
/// row keeps at least one conflict, so:
///
/// * variables in no row are raised upfront, word-parallel;
/// * a contested variable may be raised iff no row currently holds it as
///   its *only* remaining conflict (the `blocked` mask, maintained
///   incrementally as rows shrink to singletons).
///
/// Output-part raising then adds output `j` when the expanded input part
/// avoids `OFF_j` entirely.
fn expand_cube(c: &Cube, off: &[Cover]) -> Cube {
    let mut c = c.clone();
    let words = c.input_words().len();

    // Build the blocking matrix (flat, stride `words`) plus per-row
    // remaining-conflict counts.
    let mut rows: Vec<u64> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let outs: Vec<usize> = c.outputs().collect();
    for &j in &outs {
        for o in off[j].iter() {
            let base = rows.len();
            rows.resize(base + words, 0);
            c.conflict_mask_into(o, &mut rows[base..]);
            let cnt: u32 = rows[base..].iter().map(|w| w.count_ones()).sum();
            debug_assert!(cnt > 0, "ON cube must be disjoint from its OFF-set");
            counts.push(cnt);
        }
    }

    // Variables no OFF-cube contests: raise them all at once.
    let mut contested = vec![0u64; words];
    for r in 0..counts.len() {
        for (w, m) in contested.iter_mut().enumerate() {
            *m |= rows[r * words + w];
        }
    }
    let free: Vec<u64> = c
        .input_words()
        .iter()
        .zip(&contested)
        .map(|(&word, &cont)| (word ^ (word >> 1)) & LO_MASK & !cont)
        .collect();
    c.raise_vars(&free);

    // Blocked = union of singleton rows (their last conflict must stay).
    let mut blocked = vec![0u64; words];
    for (r, &cnt) in counts.iter().enumerate() {
        if cnt == 1 {
            for (w, m) in blocked.iter_mut().enumerate() {
                *m |= rows[r * words + w];
            }
        }
    }

    // Greedy raising in ascending variable order, exactly the order the
    // scalar per-literal implementation used.
    for w in 0..words {
        loop {
            let word = c.input_words()[w];
            let lits = (word ^ (word >> 1)) & LO_MASK;
            let cand = lits & !blocked[w];
            if cand == 0 {
                break;
            }
            let bit = cand & cand.wrapping_neg();
            let v = w * 32 + bit.trailing_zeros() as usize / 2;
            c.set_input(v, crate::cube::Tri::DontCare);
            for (r, cnt) in counts.iter_mut().enumerate() {
                let rw = rows[r * words + w];
                if rw & bit != 0 {
                    rows[r * words + w] = rw & !bit;
                    *cnt -= 1;
                    debug_assert!(*cnt >= 1, "raised a row's last conflict");
                    if *cnt == 1 {
                        for (w2, m) in blocked.iter_mut().enumerate() {
                            *m |= rows[r * words + w2];
                        }
                    }
                }
            }
        }
    }

    // Raise output parts: adding output j is legal when the (expanded)
    // input part avoids OFF_j entirely.
    for (j, off_j) in off.iter().enumerate() {
        if c.has_output(j) {
            continue;
        }
        if off_j.iter().all(|o| !c.inputs_intersect(o)) {
            c.set_output(j);
        }
    }
    c
}

/// IRREDUNDANT: remove cubes (or individual output bits of cubes) covered by
/// the rest of the cover plus the don't-care set.
fn irredundant(f: &Cover, dc: &Cover, ctx: &mut UrpContext) -> Cover {
    let n_inputs = f.n_inputs();
    let n_outputs = f.n_outputs();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Try to remove small cubes first: large cubes are more likely to be
    // relatively essential.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));

    // Per-output lists of the cubes currently driving each output,
    // maintained incrementally as output bits clear.
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n_outputs];
    for (k, c) in cubes.iter().enumerate() {
        for j in c.outputs() {
            lists[j].push(k);
        }
    }

    let mut alive = vec![true; cubes.len()];
    for &idx in &order {
        let outs: Vec<usize> = cubes[idx].outputs().collect();
        for j in outs {
            let covered = ctx.cofactor_tautology(
                n_inputs,
                lists[j]
                    .iter()
                    .filter(|&&k| k != idx)
                    .map(|&k| &cubes[k])
                    .chain(dc.iter().filter(|d| d.has_output(j))),
                &cubes[idx],
            );
            if covered {
                cubes[idx].clear_output(j);
                let pos = lists[j]
                    .iter()
                    .position(|&k| k == idx)
                    .expect("cube listed for its output");
                lists[j].remove(pos);
            }
        }
        if cubes[idx].is_empty() {
            alive[idx] = false;
        }
    }
    let kept: Vec<Cube> = cubes
        .into_iter()
        .zip(alive)
        .filter_map(|(c, a)| a.then_some(c))
        .collect();
    Cover::from_cubes(n_inputs, n_outputs, kept)
}

/// REDUCE: shrink each cube to the smallest cube still covering the part of
/// the ON-set only it covers, enabling the next EXPAND to move elsewhere.
fn reduce(f: &Cover, dc: &Cover, ctx: &mut UrpContext) -> Cover {
    let n_inputs = f.n_inputs();
    let n_outputs = f.n_outputs();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Reduce big cubes first (classic heuristic order).
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].literal_count());

    // Output parts never change during REDUCE (only input parts shrink,
    // and never to empty), so the per-output lists are computed once.
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n_outputs];
    for (k, c) in cubes.iter().enumerate() {
        if c.is_empty() {
            continue;
        }
        for j in c.outputs() {
            lists[j].push(k);
        }
    }

    for &idx in &order {
        let outs: Vec<usize> = cubes[idx].outputs().collect();
        let mut new_input: Option<Cube> = None;
        for &j in &outs {
            // Part of cube idx (for output j) not covered by anything
            // else: complement of the cofactored rest, clipped back to
            // the cube. Rows read the *current* (possibly already
            // reduced) cube shapes.
            let uncovered = ctx.cofactor_complement(
                n_inputs,
                lists[j]
                    .iter()
                    .filter(|&&k| k != idx)
                    .map(|&k| &cubes[k])
                    .chain(dc.iter().filter(|d| d.has_output(j))),
                &cubes[idx],
            );
            if uncovered.is_empty() {
                // Fully covered for this output; IRREDUNDANT will clean it.
                continue;
            }
            let ip = cubes[idx].input_part();
            let mut sup: Option<Cube> = None;
            for u in uncovered.iter() {
                let clipped = u.intersect(&ip);
                if clipped.is_empty() {
                    continue;
                }
                sup = Some(match sup {
                    None => clipped,
                    Some(s) => s.supercube(&clipped),
                });
            }
            if let Some(s) = sup {
                new_input = Some(match new_input {
                    None => s,
                    Some(t) => t.supercube(&s),
                });
            }
        }
        if let Some(ni) = new_input {
            // Keep the output part, shrink the input part.
            cubes[idx].copy_input_from(&ni);
        }
        // If nothing required this cube (new_input none), leave it; the
        // following IRREDUNDANT pass removes it.
    }
    let mut out = Cover::from_cubes(n_inputs, n_outputs, cubes);
    out.make_scc_minimal();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Tri;
    use crate::eval::assert_equivalent;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn minterm_cover_collapses() {
        // All four minterms of two variables → single don't-care cube.
        let f = cover("00 1\n01 1\n10 1\n11 1", 2, 1);
        let (min, stats) = espresso(&f);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
        assert_eq!(stats.initial_cubes, 4);
        assert_eq!(stats.final_cubes, 1);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn adjacent_minterms_merge() {
        let f = cover("00 1\n01 1", 2, 1);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn xor_stays_two_cubes() {
        let f = cover("10 1\n01 1", 2, 1);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 2);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn redundant_middle_cube_removed() {
        // f = ab + a'c + bc; consensus term bc is redundant... only with the
        // right phases: f = ab + a'c (+ bc redundant).
        let f = cover("11- 1\n0-1 1\n-11 1", 3, 1);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 2);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn dont_cares_enable_merging() {
        // ON = {00}, DC = {01, 10, 11} → constant 1 allowed.
        let on = cover("00 1", 2, 1);
        let dc = cover("01 1\n10 1\n11 1", 2, 1);
        let (min, _) = espresso_with_dc(&on, &dc);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
    }

    #[test]
    fn multi_output_sharing_is_kept() {
        // Both outputs contain the same product; expansion of the output part
        // should merge the two rows into one shared row.
        let f = cover("11 10\n11 01", 2, 2);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].output_count(), 2);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn five_variable_random_functions_preserved() {
        // Deterministic pseudo-random truth tables; equivalence must hold.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..10 {
            let mut f = Cover::new(5, 1);
            for m in 0..32u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 33 & 1 == 1 {
                    f.push(Cube::minterm(m, 5, 1));
                }
            }
            let (min, stats) = espresso(&f);
            assert!(min.len() <= f.len().max(1));
            assert!(stats.final_literals <= stats.initial_literals.max(1));
            assert_equivalent(&f, &min);
        }
    }

    #[test]
    fn prime_irredundant_cover_is_fixed_point() {
        // XOR of 3 variables: all four cubes are essential primes.
        let f = cover("100 1\n010 1\n001 1\n111 1", 3, 1);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 4);
        assert_eq!(min.literal_count(), 12);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn multi_output_functions_preserved() {
        let f = cover("1-0 110\n011 011\n--1 100\n110 101", 3, 3);
        let (min, _) = espresso(&f);
        assert_equivalent(&f, &min);
        assert!(min.len() <= f.len());
    }

    #[test]
    fn empty_cover_minimizes_to_empty() {
        let f = Cover::new(3, 2);
        let (min, stats) = espresso(&f);
        assert!(min.is_empty());
        assert_eq!(stats.final_cubes, 0);
    }

    #[test]
    fn relatively_essential_cubes_detected() {
        // f = ab + a'c + bc: the consensus term bc is NOT essential.
        let f = cover("11- 1\n0-1 1\n-11 1", 3, 1);
        let dc = Cover::new(3, 1);
        let ess = relatively_essential(&f, &dc);
        assert_eq!(ess, vec![true, true, false]);
    }

    #[test]
    fn all_cubes_essential_in_disjoint_cover() {
        let f = cover("110 1\n001 1", 3, 1);
        let ess = relatively_essential(&f, &Cover::new(3, 1));
        assert!(ess.iter().all(|&e| e));
    }

    #[test]
    fn dc_can_make_a_cube_inessential() {
        // Cube 11 is covered by DC entirely → not essential.
        let f = cover("11 1\n00 1", 2, 1);
        let dc = cover("1- 1", 2, 1);
        let ess = relatively_essential(&f, &dc);
        assert_eq!(ess, vec![false, true]);
    }

    #[test]
    fn constant_one_single_output() {
        let f = cover("1 1\n0 1", 1, 1);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
    }

    #[test]
    fn traced_run_matches_untraced_and_profiles_every_pass() {
        let f = cover(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        );
        let (plain, plain_stats) = espresso(&f);
        let (traced, traced_stats, trace) = espresso_traced(&f);
        // Tracing must not perturb the result.
        assert_eq!(plain, traced);
        assert_eq!(plain_stats, traced_stats);
        // Prologue: URP complements + EXPAND + IRREDUNDANT, then ≥ 1
        // improvement iteration of REDUCE/EXPAND/IRREDUNDANT.
        assert_eq!(trace.samples[0].pass, Pass::Urp);
        assert_eq!(trace.samples[1].pass, Pass::Expand);
        assert_eq!(trace.samples[2].pass, Pass::Irredundant);
        assert_eq!(trace.iterations(), traced_stats.iterations);
        let (urp_runs, _) = trace.pass_totals(Pass::Urp);
        assert_eq!(urp_runs, 1);
        let (reduce_runs, _) = trace.pass_totals(Pass::Reduce);
        assert_eq!(reduce_runs, traced_stats.iterations);
        let (expand_runs, _) = trace.pass_totals(Pass::Expand);
        assert_eq!(expand_runs, 1 + traced_stats.iterations);
        // The trajectory ends at the final pass's cube count and never
        // grows across an IRREDUNDANT pass.
        let traj = trace.cube_trajectory();
        assert_eq!(*traj.last().unwrap(), traced.len());
        for w in trace.samples.windows(2) {
            if w[1].pass == Pass::Irredundant {
                assert!(w[1].cubes <= w[0].cubes);
            }
        }
    }

    #[test]
    fn wide_multi_word_cover_minimizes() {
        // 40 inputs → two pair-words; redundant pair collapses.
        let mut a = Cube::universe(40, 1);
        a.set_input(35, Tri::One);
        let mut b = Cube::universe(40, 1);
        b.set_input(35, Tri::Zero);
        let f = Cover::from_cubes(40, 1, vec![a, b]);
        let (min, _) = espresso(&f);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
    }
}
