//! Positional-cube representation of product terms.
//!
//! Each binary input variable occupies **two bits** in a packed word array,
//! following the encoding used by the original ESPRESSO implementation:
//!
//! | pair  | meaning                  | [`Tri`]          |
//! |-------|--------------------------|------------------|
//! | `01`  | literal `x̄` (must be 0) | [`Tri::Zero`]    |
//! | `10`  | literal `x` (must be 1)  | [`Tri::One`]     |
//! | `11`  | don't care (both)        | [`Tri::DontCare`]|
//! | `00`  | empty (contradiction)    | —                |
//!
//! The *output part* is a plain bitmask: bit `j` set means the cube belongs to
//! the cover of output `j`. A cube with an all-zero output part is empty.

use std::fmt;

/// Number of input variables packed into one `u64` word (2 bits each).
const VARS_PER_WORD: usize = 32;
/// Number of output bits packed into one `u64` word.
const OUTS_PER_WORD: usize = 64;

/// Ternary value of one input position of a cube.
///
/// `Tri` is the user-facing view of the two-bit pair stored in a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    /// The variable must be `0` (complemented literal).
    Zero,
    /// The variable must be `1` (positive literal).
    One,
    /// The variable is unconstrained.
    DontCare,
}

impl Tri {
    /// The two-bit positional encoding of this value.
    fn pair(self) -> u64 {
        match self {
            Tri::Zero => 0b01,
            Tri::One => 0b10,
            Tri::DontCare => 0b11,
        }
    }

    /// Parse a single PLA-format character (`0`, `1`, `-` or `~`).
    pub fn from_char(c: char) -> Option<Tri> {
        match c {
            '0' => Some(Tri::Zero),
            '1' => Some(Tri::One),
            '-' | '~' | '2' => Some(Tri::DontCare),
            _ => None,
        }
    }

    /// The PLA-format character for this value.
    pub fn to_char(self) -> char {
        match self {
            Tri::Zero => '0',
            Tri::One => '1',
            Tri::DontCare => '-',
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A product term over `n_inputs` binary variables with a multi-output part.
///
/// Cubes are the atoms manipulated by every algorithm in this crate: the
/// ESPRESSO loop, the unate recursive paradigm, and the GNOR-PLA mapper in the
/// core crate. All set operations (intersection, containment, consensus,
/// cofactor, supercube) are implemented word-parallel on the packed
/// representation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    n_inputs: usize,
    n_outputs: usize,
    /// Packed bit-pair input part, `ceil(n_inputs / 32)` words.
    input: Vec<u64>,
    /// Packed output bitmask, `ceil(n_outputs / 64)` words.
    output: Vec<u64>,
}

impl Cube {
    /// A full cube: every input don't-care, every output asserted.
    ///
    /// This is the universe of the Boolean space; useful as the starting point
    /// for intersections and as the tautology witness.
    pub fn universe(n_inputs: usize, n_outputs: usize) -> Cube {
        let mut input = vec![u64::MAX; n_inputs.div_ceil(VARS_PER_WORD).max(1)];
        let mut output = vec![u64::MAX; n_outputs.div_ceil(OUTS_PER_WORD).max(1)];
        mask_tail(&mut input, 2 * n_inputs);
        mask_tail(&mut output, n_outputs);
        Cube {
            n_inputs,
            n_outputs,
            input,
            output,
        }
    }

    /// Build a cube from explicit ternary input values and output membership.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty (a cube must drive at least one output
    /// when constructed this way; use [`Cube::universe`] plus
    /// [`Cube::clear_output`] for special cases).
    pub fn from_tris(inputs: &[Tri], outputs: &[bool]) -> Cube {
        assert!(!outputs.is_empty(), "cube must have at least one output");
        let mut cube = Cube::universe(inputs.len(), outputs.len());
        for (i, t) in inputs.iter().enumerate() {
            cube.set_input(i, *t);
        }
        for (j, o) in outputs.iter().enumerate() {
            if !o {
                cube.clear_output(j);
            }
        }
        cube
    }

    /// Parse a cube from PLA-format text, e.g. `"10-1 01"`.
    ///
    /// The input part uses `0`, `1`, `-`; the output part uses `1` for
    /// membership and `0`/`-`/`~` for absence (function-set semantics).
    /// Whitespace between the two parts is optional.
    pub fn parse(text: &str, n_inputs: usize, n_outputs: usize) -> Option<Cube> {
        let chars: Vec<char> = text.chars().filter(|c| !c.is_whitespace()).collect();
        if chars.len() != n_inputs + n_outputs {
            return None;
        }
        let mut cube = Cube::universe(n_inputs, n_outputs);
        for (i, &c) in chars[..n_inputs].iter().enumerate() {
            cube.set_input(i, Tri::from_char(c)?);
        }
        for (j, &c) in chars[n_inputs..].iter().enumerate() {
            if c != '1' {
                cube.clear_output(j);
            }
        }
        Some(cube)
    }

    /// The minterm cube for an input assignment given as packed bits
    /// (bit `i` of `bits` is the value of variable `i`), asserting every
    /// output.
    pub fn minterm(bits: u64, n_inputs: usize, n_outputs: usize) -> Cube {
        assert!(n_inputs <= 64, "packed minterms support at most 64 inputs");
        let mut cube = Cube::universe(n_inputs, n_outputs);
        for i in 0..n_inputs {
            cube.set_input(
                i,
                if bits >> i & 1 == 1 {
                    Tri::One
                } else {
                    Tri::Zero
                },
            );
        }
        cube
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The ternary value at input position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs()` or the position holds the empty pair.
    pub fn input(&self, i: usize) -> Tri {
        assert!(i < self.n_inputs, "input index out of range");
        let word = self.input[i / VARS_PER_WORD];
        match word >> (2 * (i % VARS_PER_WORD)) & 0b11 {
            0b01 => Tri::Zero,
            0b10 => Tri::One,
            0b11 => Tri::DontCare,
            _ => panic!("empty input position {i} read as Tri"),
        }
    }

    /// Set the ternary value at input position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs()`.
    pub fn set_input(&mut self, i: usize, t: Tri) {
        assert!(i < self.n_inputs, "input index out of range");
        let w = i / VARS_PER_WORD;
        let s = 2 * (i % VARS_PER_WORD);
        self.input[w] = (self.input[w] & !(0b11 << s)) | (t.pair() << s);
    }

    /// Whether the cube drives output `j`.
    pub fn has_output(&self, j: usize) -> bool {
        assert!(j < self.n_outputs, "output index out of range");
        self.output[j / OUTS_PER_WORD] >> (j % OUTS_PER_WORD) & 1 == 1
    }

    /// Assert output `j`.
    pub fn set_output(&mut self, j: usize) {
        assert!(j < self.n_outputs, "output index out of range");
        self.output[j / OUTS_PER_WORD] |= 1 << (j % OUTS_PER_WORD);
    }

    /// Deassert output `j`.
    pub fn clear_output(&mut self, j: usize) {
        assert!(j < self.n_outputs, "output index out of range");
        self.output[j / OUTS_PER_WORD] &= !(1 << (j % OUTS_PER_WORD));
    }

    /// Iterator over the indices of the outputs this cube drives.
    pub fn outputs(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_outputs).filter(|&j| self.has_output(j))
    }

    /// Number of asserted outputs.
    pub fn output_count(&self) -> usize {
        self.output.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the input part contains an empty (`00`) pair or no output is
    /// asserted — i.e. the cube denotes the empty set.
    pub fn is_empty(&self) -> bool {
        if self.output.iter().all(|&w| w == 0) {
            return true;
        }
        self.has_empty_input()
    }

    /// True if some input position holds the contradictory `00` pair.
    fn has_empty_input(&self) -> bool {
        for (w, &word) in self.input.iter().enumerate() {
            let lo = word & LO_MASK;
            let hi = (word >> 1) & LO_MASK;
            let mut both_zero = !(lo | hi) & LO_MASK;
            // Ignore pairs beyond n_inputs.
            let first = w * VARS_PER_WORD;
            if first + VARS_PER_WORD > self.n_inputs {
                let valid = self.n_inputs.saturating_sub(first);
                if valid == 0 {
                    both_zero = 0;
                } else {
                    both_zero &= ((1u64 << (2 * valid)) - 1) & LO_MASK;
                }
            }
            if both_zero != 0 {
                return true;
            }
        }
        false
    }

    /// Number of input positions carrying a literal (not don't-care).
    pub fn literal_count(&self) -> usize {
        // Word-parallel: a literal position is `01` or `10`, i.e. the low
        // and high pair bits differ.
        self.input
            .iter()
            .map(|&w| (((w >> 1) ^ w) & LO_MASK).count_ones() as usize)
            .sum()
    }

    /// Intersection of two cubes (AND of parts). May be empty.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersect(&self, other: &Cube) -> Cube {
        self.check_dims(other);
        Cube {
            n_inputs: self.n_inputs,
            n_outputs: self.n_outputs,
            input: zip_words(&self.input, &other.input, |a, b| a & b),
            output: zip_words(&self.output, &other.output, |a, b| a & b),
        }
    }

    /// True if the two cubes share at least one minterm on at least one
    /// common output.
    pub fn intersects(&self, other: &Cube) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True if the input parts alone share at least one point (outputs are
    /// ignored). Used when testing against per-output OFF-sets.
    ///
    /// Unlike most binary cube operations this only requires the *input*
    /// arities to match, so multi-output cubes can be tested directly
    /// against single-output OFF-set cubes without materializing
    /// [`Cube::input_part`].
    pub fn inputs_intersect(&self, other: &Cube) -> bool {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        for (w, (&a, &b)) in self.input.iter().zip(&other.input).enumerate() {
            if conflict_word(a & b, self.n_inputs, w) != 0 {
                return false;
            }
        }
        true
    }

    /// True if `self` contains `other` as a set (both parts).
    pub fn contains(&self, other: &Cube) -> bool {
        self.check_dims(other);
        words_subset(&other.input, &self.input) && words_subset(&other.output, &self.output)
    }

    /// True if the input part of `self` contains the input part of `other`.
    pub fn input_contains(&self, other: &Cube) -> bool {
        self.check_dims(other);
        words_subset(&other.input, &self.input)
    }

    /// Smallest cube containing both operands (OR of parts).
    pub fn supercube(&self, other: &Cube) -> Cube {
        self.check_dims(other);
        Cube {
            n_inputs: self.n_inputs,
            n_outputs: self.n_outputs,
            input: zip_words(&self.input, &other.input, |a, b| a | b),
            output: zip_words(&self.output, &other.output, |a, b| a | b),
        }
    }

    /// Input-part distance: the number of input variables on which the two
    /// cubes conflict (their pairwise AND is `00`).
    pub fn input_distance(&self, other: &Cube) -> usize {
        self.check_dims(other);
        self.input
            .iter()
            .zip(&other.input)
            .enumerate()
            .map(|(w, (&a, &b))| conflict_word(a & b, self.n_inputs, w).count_ones() as usize)
            .sum()
    }

    /// Full distance à la ESPRESSO: input distance plus one when the output
    /// parts are disjoint.
    pub fn distance(&self, other: &Cube) -> usize {
        let mut d = self.input_distance(other);
        if self
            .output
            .iter()
            .zip(&other.output)
            .all(|(&a, &b)| a & b == 0)
        {
            d += 1;
        }
        d
    }

    /// Consensus (the cube adjacency product). Defined when `distance == 1`:
    ///
    /// * conflict in one input variable → that variable becomes don't-care,
    ///   other parts are intersected;
    /// * disjoint outputs only → inputs are intersected, outputs are united.
    ///
    /// Returns `None` when the distance is not exactly 1.
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        self.check_dims(other);
        let input_d = self.input_distance(other);
        let out_disjoint = self
            .output
            .iter()
            .zip(&other.output)
            .all(|(&a, &b)| a & b == 0);
        match (input_d, out_disjoint) {
            (1, false) => {
                let mut c = self.intersect(other);
                // Find the single conflicting variable and raise it.
                for i in 0..self.n_inputs {
                    let w = i / VARS_PER_WORD;
                    let s = 2 * (i % VARS_PER_WORD);
                    if c.input[w] >> s & 0b11 == 0 {
                        c.set_input(i, Tri::DontCare);
                        break;
                    }
                }
                Some(c)
            }
            (0, true) => {
                let mut c = self.intersect(other);
                c.output = zip_words(&self.output, &other.output, |a, b| a | b);
                Some(c)
            }
            _ => None,
        }
    }

    /// Cofactor of `self` with respect to cube `p` (the Shannon cofactor
    /// generalized to cubes). Returns `None` if the cubes do not intersect.
    ///
    /// Variables where `p` carries a literal become don't-care in the result;
    /// the output part is restricted to `p`'s outputs.
    pub fn cofactor(&self, p: &Cube) -> Option<Cube> {
        self.check_dims(p);
        if self.input_distance(p) > 0 {
            return None;
        }
        let out: Vec<u64> = zip_words(&self.output, &p.output, |a, b| a & b);
        if out.iter().all(|&w| w == 0) {
            return None;
        }
        // input_i := self_i | !p_i  (raise positions fixed by p).
        let mut input = zip_words(&self.input, &p.input, |a, b| a | !b);
        mask_tail(&mut input, 2 * self.n_inputs);
        Some(Cube {
            n_inputs: self.n_inputs,
            n_outputs: self.n_outputs,
            input,
            output: out,
        })
    }

    /// The input part of this cube as a fresh single-output cube (output 0
    /// asserted). Used to test input parts against per-output OFF-set covers.
    pub fn input_part(&self) -> Cube {
        let mut c = Cube::universe(self.n_inputs, 1);
        c.input.copy_from_slice(&self.input);
        c
    }

    /// True if every input position is don't-care (the input universe).
    pub fn input_is_full(&self) -> bool {
        (0..self.n_inputs).all(|i| self.input(i) == Tri::DontCare)
    }

    /// Replace the output part with `other`'s output part.
    pub fn with_outputs_of(&self, other: &Cube) -> Cube {
        self.check_dims(other);
        Cube {
            n_inputs: self.n_inputs,
            n_outputs: self.n_outputs,
            input: self.input.clone(),
            output: other.output.clone(),
        }
    }

    /// True if the cube's input part covers the packed minterm `bits`.
    pub fn covers_bits(&self, bits: u64) -> bool {
        debug_assert!(self.n_inputs <= 64);
        for i in 0..self.n_inputs {
            let need = if bits >> i & 1 == 1 {
                Tri::One
            } else {
                Tri::Zero
            };
            let t = self.input(i);
            if t != Tri::DontCare && t != need {
                return false;
            }
        }
        true
    }

    fn check_dims(&self, other: &Cube) {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        assert_eq!(self.n_outputs, other.n_outputs, "output arity mismatch");
    }

    /// The packed pair-word input part (32 variables per `u64`, 2 bits
    /// each). This is the raw representation the word-parallel URP and
    /// EXPAND kernels operate on directly.
    pub(crate) fn input_words(&self) -> &[u64] {
        &self.input
    }

    /// Write the LO-aligned conflict mask between the input parts of
    /// `self` and `other` into `out`: bit `2·(i % 32)` of `out[i / 32]` is
    /// set iff the two cubes carry opposite literals on variable `i`.
    /// Only the input arities must match.
    ///
    /// # Panics
    ///
    /// Panics if input arities differ or `out` is shorter than the input
    /// word count.
    pub(crate) fn conflict_mask_into(&self, other: &Cube, out: &mut [u64]) {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        for (w, (&a, &b)) in self.input.iter().zip(&other.input).enumerate() {
            out[w] = conflict_word(a & b, self.n_inputs, w);
        }
    }

    /// Raise every variable whose LO-aligned mask bit is set to
    /// don't-care, word-parallel (mask geometry as produced by
    /// [`Cube::conflict_mask_into`]).
    pub(crate) fn raise_vars(&mut self, mask: &[u64]) {
        for (word, &m) in self.input.iter_mut().zip(mask) {
            debug_assert_eq!(m & !LO_MASK, 0, "mask must be LO-aligned");
            *word |= m | (m << 1);
        }
    }

    /// Replace the input part with `other`'s input part, word-parallel.
    /// Only the input arities must match; the output part is untouched.
    pub(crate) fn copy_input_from(&mut self, other: &Cube) {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        self.input.copy_from_slice(&other.input);
    }

    /// Cheap containment prefilter summary: the OR-fold of the packed
    /// input pair-words and of the output mask words. Word-wise
    /// containment implies fold containment, so for cubes `a ⊆ b` it
    /// holds that `sig(a).0 & !sig(b).0 == 0` and
    /// `sig(a).1 & !sig(b).1 == 0` — two word ops reject a pair that
    /// cannot be in containment without touching the full parts. For
    /// covers of ≤ 32 inputs / ≤ 64 outputs the fold is the exact part,
    /// so the prefilter *is* the containment test there.
    pub(crate) fn containment_signature(&self) -> (u64, u64) {
        let fold = |ws: &[u64]| ws.iter().fold(0u64, |acc, &w| acc | w);
        (fold(&self.input), fold(&self.output))
    }
}

/// Empty (`00`) pairs of a meet word, as an LO-aligned mask with the tail
/// beyond `n_inputs` cleared. `w` is the word's index in the input array.
/// (Passing a cube's own word finds its empty pairs; passing the AND of two
/// cubes' words finds their conflicts — the URP matrix loaders use both.)
#[inline]
pub(crate) fn conflict_word(meet: u64, n_inputs: usize, w: usize) -> u64 {
    let lo = meet & LO_MASK;
    let hi = (meet >> 1) & LO_MASK;
    let mut empty = !(lo | hi) & LO_MASK;
    let first = w * VARS_PER_WORD;
    let valid = n_inputs.saturating_sub(first).min(VARS_PER_WORD);
    if valid < VARS_PER_WORD {
        empty &= (1u64 << (2 * valid)).wrapping_sub(1);
    }
    empty
}

/// Mask selecting the low bit of every pair.
pub(crate) const LO_MASK: u64 = 0x5555_5555_5555_5555;

fn zip_words(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> Vec<u64> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

fn words_subset(small: &[u64], big: &[u64]) -> bool {
    small.iter().zip(big).all(|(&s, &b)| s & !b == 0)
}

/// Zero out bits at positions `>= n_bits` in a packed word array.
fn mask_tail(words: &mut [u64], n_bits: usize) {
    for (w, word) in words.iter_mut().enumerate() {
        let first = w * 64;
        if first >= n_bits {
            *word = 0;
        } else if first + 64 > n_bits {
            *word &= (1u64 << (n_bits - first)) - 1;
        }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n_inputs {
            let w = i / VARS_PER_WORD;
            let s = 2 * (i % VARS_PER_WORD);
            let c = match self.input[w] >> s & 0b11 {
                0b01 => '0',
                0b10 => '1',
                0b11 => '-',
                _ => '!',
            };
            write!(f, "{c}")?;
        }
        write!(f, " ")?;
        for j in 0..self.n_outputs {
            write!(f, "{}", if self.has_output(j) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(text: &str, ni: usize, no: usize) -> Cube {
        Cube::parse(text, ni, no).expect("parse cube")
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let c = cube("10-1 01", 4, 2);
        assert_eq!(c.to_string(), "10-1 01");
        assert_eq!(c.input(0), Tri::One);
        assert_eq!(c.input(1), Tri::Zero);
        assert_eq!(c.input(2), Tri::DontCare);
        assert_eq!(c.input(3), Tri::One);
        assert!(!c.has_output(0));
        assert!(c.has_output(1));
    }

    #[test]
    fn universe_is_full_and_nonempty() {
        let u = Cube::universe(67, 3);
        assert!(!u.is_empty());
        assert!(u.input_is_full());
        assert_eq!(u.output_count(), 3);
        for i in 0..67 {
            assert_eq!(u.input(i), Tri::DontCare);
        }
    }

    #[test]
    fn empty_detection() {
        let a = cube("1- 1", 2, 1);
        let b = cube("0- 1", 2, 1);
        let meet = a.intersect(&b);
        assert!(meet.is_empty());
        assert!(!a.is_empty());
        let mut no_out = a.clone();
        no_out.clear_output(0);
        assert!(no_out.is_empty());
    }

    #[test]
    fn containment() {
        let big = cube("1-- 1", 3, 1);
        let small = cube("1-0 1", 3, 1);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn output_containment_matters() {
        let a = cube("1- 10", 2, 2);
        let b = cube("1- 11", 2, 2);
        assert!(b.contains(&a));
        assert!(!a.contains(&b));
    }

    #[test]
    fn supercube_covers_both() {
        let a = cube("10 1", 2, 1);
        let b = cube("01 1", 2, 1);
        let sc = a.supercube(&b);
        assert!(sc.contains(&a));
        assert!(sc.contains(&b));
        assert!(sc.input_is_full());
    }

    #[test]
    fn distance_counts_conflicts() {
        let a = cube("101 1", 3, 1);
        let b = cube("010 1", 3, 1);
        assert_eq!(a.input_distance(&b), 3);
        assert_eq!(a.distance(&b), 3);
        let c = cube("1-1 1", 3, 1);
        assert_eq!(a.input_distance(&c), 0);
        assert_eq!(a.distance(&c), 0);
    }

    #[test]
    fn distance_includes_output_part() {
        let a = cube("11 10", 2, 2);
        let b = cube("11 01", 2, 2);
        assert_eq!(a.input_distance(&b), 0);
        assert_eq!(a.distance(&b), 1);
    }

    #[test]
    fn consensus_on_single_input_conflict() {
        let a = cube("1-1 1", 3, 1);
        let b = cube("0-1 1", 3, 1);
        let c = a.consensus(&b).expect("distance 1");
        assert_eq!(c.to_string(), "--1 1");
    }

    #[test]
    fn consensus_on_outputs() {
        let a = cube("11 10", 2, 2);
        let b = cube("1- 01", 2, 2);
        let c = a.consensus(&b).expect("output consensus");
        assert_eq!(c.to_string(), "11 11");
    }

    #[test]
    fn consensus_undefined_at_distance_two() {
        let a = cube("11 1", 2, 1);
        let b = cube("00 1", 2, 1);
        assert!(a.consensus(&b).is_none());
    }

    #[test]
    fn cofactor_raises_fixed_positions() {
        let c = cube("10- 1", 3, 1);
        let p = cube("1-- 1", 3, 1);
        let cf = c.cofactor(&p).expect("intersecting");
        assert_eq!(cf.to_string(), "-0- 1");
        let q = cube("0-- 1", 3, 1);
        assert!(c.cofactor(&q).is_none());
    }

    #[test]
    fn minterm_and_covers_bits() {
        let m = Cube::minterm(0b101, 3, 1);
        assert_eq!(m.to_string(), "101 1");
        let c = cube("1-1 1", 3, 1);
        assert!(c.covers_bits(0b101));
        assert!(c.covers_bits(0b111));
        assert!(!c.covers_bits(0b100));
    }

    #[test]
    fn literal_count() {
        assert_eq!(cube("1-0- 1", 4, 1).literal_count(), 2);
        assert_eq!(Cube::universe(5, 1).literal_count(), 0);
    }

    #[test]
    fn wide_cubes_cross_word_boundaries() {
        let n = 70;
        let mut c = Cube::universe(n, 1);
        c.set_input(0, Tri::One);
        c.set_input(33, Tri::Zero);
        c.set_input(69, Tri::One);
        assert_eq!(c.input(0), Tri::One);
        assert_eq!(c.input(33), Tri::Zero);
        assert_eq!(c.input(69), Tri::One);
        assert_eq!(c.literal_count(), 3);
        let mut d = Cube::universe(n, 1);
        d.set_input(33, Tri::One);
        assert_eq!(c.input_distance(&d), 1);
        assert!(c.intersect(&d).is_empty());
    }

    #[test]
    fn inputs_intersect_ignores_outputs() {
        let a = cube("11 10", 2, 2);
        let b = cube("11 01", 2, 2);
        assert!(a.inputs_intersect(&b));
        assert!(!a.intersects(&b));
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn dimension_mismatch_panics() {
        let a = Cube::universe(2, 1);
        let b = Cube::universe(3, 1);
        let _ = a.intersect(&b);
    }
}
