//! Covers: sets of cubes implementing multi-output Boolean functions.

use crate::cube::{Cube, Tri};
use crate::urp;
use std::fmt;

/// A sum-of-products cover of a multi-output Boolean function.
///
/// A cover is an ordered list of [`Cube`]s sharing the same input/output
/// arity. Output `j` of the function is the OR of all cubes whose output part
/// asserts bit `j`. Covers are the currency of the whole toolchain: the
/// ESPRESSO minimizer transforms covers, the GNOR-PLA mapper consumes them,
/// and the area model prices them.
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    n_inputs: usize,
    n_outputs: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// An empty cover (constant-0 function) of the given arity.
    pub fn new(n_inputs: usize, n_outputs: usize) -> Cover {
        Cover {
            n_inputs,
            n_outputs,
            cubes: Vec::new(),
        }
    }

    /// Build a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube's arity differs from `(n_inputs, n_outputs)`.
    pub fn from_cubes(n_inputs: usize, n_outputs: usize, cubes: Vec<Cube>) -> Cover {
        for c in &cubes {
            assert_eq!(c.n_inputs(), n_inputs, "cube input arity mismatch");
            assert_eq!(c.n_outputs(), n_outputs, "cube output arity mismatch");
        }
        Cover {
            n_inputs,
            n_outputs,
            cubes,
        }
    }

    /// Parse a whitespace-separated list of PLA-style cube lines,
    /// e.g. `"10- 1\n0-1 1"`. Blank lines are skipped.
    ///
    /// Returns `None` on any malformed line.
    pub fn parse(text: &str, n_inputs: usize, n_outputs: usize) -> Option<Cover> {
        let mut cubes = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            cubes.push(Cube::parse(line, n_inputs, n_outputs)?);
        }
        Some(Cover::from_cubes(n_inputs, n_outputs, cubes))
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The cubes of this cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Consume the cover, returning its cubes.
    pub fn into_cubes(self) -> Vec<Cube> {
        self.cubes
    }

    /// Number of cubes (product terms / PLA rows).
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True if the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Append a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's arity differs from the cover's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.n_inputs(), self.n_inputs, "cube input arity mismatch");
        assert_eq!(
            cube.n_outputs(),
            self.n_outputs,
            "cube output arity mismatch"
        );
        self.cubes.push(cube);
    }

    /// Remove the cube at `index` and return it.
    pub fn remove(&mut self, index: usize) -> Cube {
        self.cubes.remove(index)
    }

    /// Iterate over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Total number of input literals over all cubes (a standard PLA cost
    /// metric alongside the cube count).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Drop empty cubes and cubes single-cube-contained in another cube
    /// (SCC). Keeps the first of two identical cubes.
    ///
    /// The pairwise loop is prefiltered by per-cube word signatures (the
    /// OR-fold of each cube's packed input and output words; word-wise
    /// containment implies fold containment): a pair whose signatures
    /// refute containment is rejected in two word ops, so the full
    /// [`Cube::contains`] test only runs on genuine candidates. The
    /// result is identical to the unfiltered O(n²) loop (differentially
    /// tested in `espresso_diff.rs`).
    pub fn make_scc_minimal(&mut self) {
        self.cubes.retain(|c| !c.is_empty());
        let sigs: Vec<(u64, u64)> = self.cubes.iter().map(Cube::containment_signature).collect();
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // sig(i) ⊄ sig(j) proves cube j cannot contain cube i.
                if sigs[i].0 & !sigs[j].0 != 0 || sigs[i].1 & !sigs[j].1 != 0 {
                    continue;
                }
                if self.cubes[j].contains(&self.cubes[i])
                    && (i > j || self.cubes[i] != self.cubes[j])
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        self.cubes.retain(|_| *it.next().unwrap());
    }

    /// Union of two covers (cube list concatenation).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        assert_eq!(self.n_outputs, other.n_outputs, "output arity mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover::from_cubes(self.n_inputs, self.n_outputs, cubes)
    }

    /// The single-output projection: cubes driving output `j`, reduced to a
    /// one-output cover of their input parts.
    pub fn output_slice(&self, j: usize) -> Cover {
        assert!(j < self.n_outputs, "output index out of range");
        let mut out = Cover::new(self.n_inputs, 1);
        for c in &self.cubes {
            if c.has_output(j) {
                out.push(c.input_part());
            }
        }
        out
    }

    /// Re-assemble a multi-output cover from per-output single-output covers.
    ///
    /// Identical input parts driving several outputs are merged back into one
    /// multi-output cube, which models the product-term sharing of a PLA row.
    ///
    /// # Panics
    ///
    /// Panics if any slice is not single-output or arities differ.
    pub fn from_output_slices(slices: &[Cover]) -> Cover {
        assert!(!slices.is_empty(), "need at least one output slice");
        let n_inputs = slices[0].n_inputs;
        let n_outputs = slices.len();
        let mut merged: Vec<Cube> = Vec::new();
        for (j, s) in slices.iter().enumerate() {
            assert_eq!(s.n_outputs, 1, "slice {j} must be single-output");
            assert_eq!(s.n_inputs, n_inputs, "slice {j} input arity mismatch");
            for c in &s.cubes {
                let mut tris = Vec::with_capacity(n_inputs);
                for i in 0..n_inputs {
                    tris.push(c.input(i));
                }
                let mut outs = vec![false; n_outputs];
                outs[j] = true;
                let cube = Cube::from_tris(&tris, &outs);
                if let Some(existing) = merged
                    .iter_mut()
                    .find(|m| m.input_contains(&cube) && cube.input_contains(m))
                {
                    existing.set_output(j);
                } else {
                    merged.push(cube);
                }
            }
        }
        Cover::from_cubes(n_inputs, n_outputs, merged)
    }

    /// Evaluate the function on a packed input assignment (bit `i` of `bits`
    /// is input `i`); returns one bool per output.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs > 64`.
    pub fn eval_bits(&self, bits: u64) -> Vec<bool> {
        assert!(self.n_inputs <= 64, "eval_bits supports at most 64 inputs");
        let mut out = vec![false; self.n_outputs];
        for c in &self.cubes {
            if c.covers_bits(bits) {
                for j in c.outputs() {
                    out[j] = true;
                }
            }
        }
        out
    }

    /// Evaluate up to `words × 64` packed input vectors at once into a
    /// caller-allocated buffer — the width-generic, allocation-free SOP
    /// kernel behind every block-level consumer in the workspace.
    ///
    /// Layout is **signal-major**: `inputs[i·words .. (i+1)·words]` are
    /// the `words` lane words of input `i` (lane `L` of the block is bit
    /// `L % 64` of word `L / 64`), and `out[j·words .. (j+1)·words]` are
    /// the lane words of output `j` on return. With `words == 1` this is
    /// exactly the classic 64-lane column-major block. This is what the
    /// `Simulator` trait in `ambipla_core::sim` exposes as `eval_words`
    /// for every backend, and the engine behind the batched
    /// [`check_equivalent`](crate::eval::check_equivalent) /
    /// [`check_implements`](crate::eval::check_implements) sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `inputs.len() != n_inputs() × words`, or
    /// `out.len() != n_outputs() × words`.
    pub fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        /// Lane words processed per pass over the cube list: cube literals
        /// are decoded once per tile, so wider blocks amortize the decode;
        /// 8 words (512 lanes) of live state still fit in registers / L1.
        const EVAL_TILE: usize = 8;
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.n_inputs * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            self.n_outputs * words,
            "output buffer size mismatch"
        );
        out.fill(0);
        let mut base = 0;
        while base < words {
            let tile = (words - base).min(EVAL_TILE);
            'cube: for c in &self.cubes {
                let mut covered = [!0u64; EVAL_TILE];
                for i in 0..self.n_inputs {
                    let row = &inputs[i * words + base..i * words + base + tile];
                    match c.input(i) {
                        Tri::DontCare => continue,
                        Tri::One => {
                            for (cw, &x) in covered.iter_mut().zip(row) {
                                *cw &= x;
                            }
                        }
                        Tri::Zero => {
                            for (cw, &x) in covered.iter_mut().zip(row) {
                                *cw &= !x;
                            }
                        }
                    }
                    if covered[..tile].iter().all(|&w| w == 0) {
                        continue 'cube;
                    }
                }
                for j in c.outputs() {
                    let orow = &mut out[j * words + base..j * words + base + tile];
                    for (o, &cw) in orow.iter_mut().zip(&covered) {
                        *o |= cw;
                    }
                }
            }
            base += tile;
        }
    }

    /// Evaluate 64 packed input vectors at once (bit-parallel lanes).
    ///
    /// `inputs[i]` carries input `i` of all 64 lanes: bit `L` of that word
    /// is input `i` of lane `L`. The returned words carry the outputs in
    /// the same layout. The allocating single-word form of
    /// [`Cover::eval_words`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n_inputs()`.
    pub fn eval_batch(&self, inputs: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.n_outputs];
        self.eval_words(inputs, &mut out, 1);
        out
    }

    /// Evaluate on an explicit boolean assignment.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.n_inputs, "assignment arity mismatch");
        let mut out = vec![false; self.n_outputs];
        for c in &self.cubes {
            let hit = (0..self.n_inputs).all(|i| match c.input(i) {
                Tri::DontCare => true,
                Tri::One => assignment[i],
                Tri::Zero => !assignment[i],
            });
            if hit {
                for j in c.outputs() {
                    out[j] = true;
                }
            }
        }
        out
    }

    /// Cofactor of the cover by cube `p` (cubes not intersecting `p` drop out).
    pub fn cofactor(&self, p: &Cube) -> Cover {
        let cubes = self.cubes.iter().filter_map(|c| c.cofactor(p)).collect();
        Cover::from_cubes(self.n_inputs, self.n_outputs, cubes)
    }

    /// True if this single-output cover is the tautology (covers the whole
    /// input space). Delegates to the unate recursive paradigm.
    ///
    /// # Panics
    ///
    /// Panics if the cover is not single-output; use [`Cover::output_slice`]
    /// first for multi-output covers.
    pub fn is_tautology(&self) -> bool {
        assert_eq!(self.n_outputs, 1, "tautology is defined per output");
        urp::tautology(self)
    }

    /// Complement of this single-output cover via the unate recursive
    /// paradigm.
    ///
    /// # Panics
    ///
    /// Panics if the cover is not single-output.
    pub fn complement(&self) -> Cover {
        assert_eq!(self.n_outputs, 1, "complement is defined per output");
        urp::complement(self)
    }

    /// Sort cubes by descending size (don't-care count), the order ESPRESSO
    /// prefers for EXPAND.
    pub fn sort_by_size_desc(&mut self) {
        self.cubes
            .sort_by_key(|c| std::cmp::Reverse(self.n_inputs - c.literal_count()));
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cover(i={}, o={}, p={})",
            self.n_inputs,
            self.n_outputs,
            self.cubes.len()
        )?;
        for c in &self.cubes {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cubes {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Cover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn parse_eval_xor() {
        let f = cover("10 1\n01 1", 2, 1);
        assert_eq!(f.len(), 2);
        assert!(!f.eval_bits(0b00)[0]);
        assert!(f.eval_bits(0b01)[0]);
        assert!(f.eval_bits(0b10)[0]);
        assert!(!f.eval_bits(0b11)[0]);
    }

    #[test]
    fn eval_multi_output() {
        let f = cover("1- 10\n-1 01", 2, 2);
        assert_eq!(f.eval_bits(0b01), vec![true, false]);
        assert_eq!(f.eval_bits(0b10), vec![false, true]);
        assert_eq!(f.eval_bits(0b11), vec![true, true]);
        assert_eq!(f.eval_bits(0b00), vec![false, false]);
    }

    #[test]
    fn eval_slice_agrees_with_eval() {
        let f = cover("1-0 110\n011 011\n--1 100", 3, 3);
        for bits in 0..8u64 {
            let full = f.eval_bits(bits);
            for (j, &want) in full.iter().enumerate() {
                assert_eq!(f.output_slice(j).eval_bits(bits)[0], want);
            }
        }
    }

    #[test]
    fn scc_removes_contained_and_duplicate_cubes() {
        let mut f = cover("1-- 1\n110 1\n1-- 1\n0-- 1", 3, 1);
        f.make_scc_minimal();
        assert_eq!(f.len(), 2);
        for bits in 0..8u64 {
            assert!(f.eval_bits(bits)[0]);
        }
    }

    #[test]
    fn scc_respects_output_parts() {
        // Input-contained but driving a different output: must be kept.
        let mut f = cover("11 10\n1- 01", 2, 2);
        f.make_scc_minimal();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn output_slices_roundtrip_with_sharing() {
        let f = cover("11 11\n0- 10\n-0 01", 2, 2);
        let slices: Vec<Cover> = (0..2).map(|j| f.output_slice(j)).collect();
        let back = Cover::from_output_slices(&slices);
        // Shared cube `11` must be merged back into a single row.
        assert_eq!(back.len(), 3);
        for bits in 0..4u64 {
            assert_eq!(back.eval_bits(bits), f.eval_bits(bits));
        }
    }

    #[test]
    fn eval_matches_eval_bits() {
        let f = cover("10-1 1\n0--- 1", 4, 1);
        for bits in 0..16u64 {
            let assignment: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(f.eval(&assignment)[0], f.eval_bits(bits)[0]);
        }
    }

    #[test]
    fn eval_batch_matches_eval_bits_lanewise() {
        let f = cover("10-1 10\n0--- 01\n11-- 11", 4, 2);
        // Lane L carries assignment L (only lanes 0..16 are meaningful).
        let inputs: Vec<u64> = (0..4)
            .map(|i| (0..64u64).fold(0u64, |w, lane| w | ((lane % 16) >> i & 1) << lane))
            .collect();
        let words = f.eval_batch(&inputs);
        for lane in 0..64u64 {
            let scalar = f.eval_bits(lane % 16);
            for j in 0..2 {
                assert_eq!(
                    words[j] >> lane & 1 == 1,
                    scalar[j],
                    "lane {lane} output {j}"
                );
            }
        }
    }

    #[test]
    fn cofactor_drops_disjoint_cubes() {
        let f = cover("11 1\n00 1", 2, 1);
        let p = Cube::parse("1- 1", 2, 1).unwrap();
        let cf = f.cofactor(&p);
        assert_eq!(cf.len(), 1);
        assert_eq!(cf.cubes()[0].to_string(), "-1 1");
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let f = Cover::new(3, 2);
        assert!(f.is_empty());
        assert_eq!(f.eval_bits(0b101), vec![false, false]);
    }

    #[test]
    fn literal_count_sums_cubes() {
        let f = cover("10- 1\n--- 1\n111 1", 3, 1);
        assert_eq!(f.literal_count(), 5);
    }
}
