//! Exact two-level minimization (Quine–McCluskey with branch-and-bound
//! covering).
//!
//! Used as the quality baseline for the heuristic ESPRESSO loop: on every
//! function small enough for exact minimization, ESPRESSO's cover must be
//! within a documented factor of the optimum (the test-suite pins this).
//!
//! Multi-output primes are generated per output subset `S`: a pair
//! `(cube, S)` is a prime iff the cube is a prime implicant of
//! `∩_{j∈S}(ON_j ∪ DC_j)` and `S` cannot be enlarged. The covering step is
//! a classic unate-covering branch-and-bound with essential-column
//! extraction and row/column dominance.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};
use crate::tt::TruthTable;

/// Maximum input count accepted by [`exact_minimize`] (3^n cube
/// enumeration).
pub const EXACT_INPUT_LIMIT: usize = 8;

/// Maximum output count accepted by [`exact_minimize`] (2^o output
/// subsets).
pub const EXACT_OUTPUT_LIMIT: usize = 6;

/// Exactly minimize `(on, dc)`: returns a minimum-cube cover (ties broken
/// by fewer literals among the covers the search visits).
///
/// # Example
///
/// ```
/// use logic::{exact_minimize, Cover};
///
/// // Four scattered minterms of x0: optimal is a single cube.
/// let f = Cover::parse("100 1\n110 1\n101 1\n111 1", 3, 1).unwrap();
/// let min = exact_minimize(&f, &Cover::new(3, 1));
/// assert_eq!(min.len(), 1);
/// ```
///
/// # Panics
///
/// Panics if the function exceeds [`EXACT_INPUT_LIMIT`] inputs or
/// [`EXACT_OUTPUT_LIMIT`] outputs, or if arities mismatch.
pub fn exact_minimize(on: &Cover, dc: &Cover) -> Cover {
    let n = on.n_inputs();
    let o = on.n_outputs();
    assert!(
        n <= EXACT_INPUT_LIMIT,
        "exact minimization limited to {EXACT_INPUT_LIMIT} inputs"
    );
    assert!(
        o <= EXACT_OUTPUT_LIMIT,
        "exact minimization limited to {EXACT_OUTPUT_LIMIT} outputs"
    );
    assert_eq!(dc.n_inputs(), n, "input arity mismatch");
    assert_eq!(dc.n_outputs(), o, "output arity mismatch");

    let on_tt = TruthTable::from_cover(on);
    let dc_tt = TruthTable::from_cover(dc);

    // Care ON requirements: (minterm, output) pairs that must be covered.
    let mut requirements: Vec<(u64, usize)> = Vec::new();
    for j in 0..o {
        for m in on_tt.on_minterms(j) {
            if !dc_tt.get(m, j) {
                requirements.push((m, j));
            }
        }
    }
    if requirements.is_empty() {
        return Cover::new(n, o);
    }

    let primes = multi_output_primes(&on_tt, &dc_tt);
    debug_assert!(!primes.is_empty(), "nonempty ON-set must have primes");

    // Build the covering matrix: which primes cover each requirement.
    let cover_sets: Vec<Vec<usize>> = requirements
        .iter()
        .map(|&(m, j)| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.has_output(j) && p.covers_bits(m))
                .map(|(k, _)| k)
                .collect()
        })
        .collect();

    let chosen = unate_cover(&cover_sets, &primes);
    let cubes: Vec<Cube> = chosen.into_iter().map(|k| primes[k].clone()).collect();
    let mut result = Cover::from_cubes(n, o, cubes);
    result.make_scc_minimal();
    result
}

/// All multi-output primes of `(on, dc)`.
fn multi_output_primes(on: &TruthTable, dc: &TruthTable) -> Vec<Cube> {
    let n = on.n_inputs();
    let o = on.n_outputs();

    // For each output: bitset of ON ∪ DC minterms, as a closure over get().
    let allowed = |m: u64, j: usize| on.get(m, j) || dc.get(m, j);

    // Enumerate all 3^n input cubes; for each, compute the maximal output
    // set it implies, then keep input-maximal (prime) ones.
    let mut primes: Vec<Cube> = Vec::new();
    let mut stack: Vec<Vec<Tri>> = vec![Vec::new()];
    // Iterative enumeration of ternary vectors.
    let mut ternary = vec![0u8; n];
    loop {
        // Build cube for current ternary assignment.
        let tris: Vec<Tri> = ternary
            .iter()
            .map(|&t| match t {
                0 => Tri::Zero,
                1 => Tri::One,
                _ => Tri::DontCare,
            })
            .collect();
        let outs = implied_outputs(&tris, o, n, &allowed);
        if outs.iter().any(|&b| b) {
            let cube = Cube::from_tris(&tris, &outs);
            if is_input_maximal(&cube, n, o, &allowed) {
                primes.push(cube);
            }
        }
        // Next ternary vector.
        let mut i = 0;
        loop {
            if i == n {
                let _ = &mut stack; // silence unused in odd configurations
                                    // Deduplicate (output-subset generation can repeat cubes).
                dedup(&mut primes);
                return primes;
            }
            if ternary[i] < 2 {
                ternary[i] += 1;
                break;
            }
            ternary[i] = 0;
            i += 1;
        }
    }
}

/// The maximal output set for which `tris` is an implicant.
fn implied_outputs(
    tris: &[Tri],
    o: usize,
    n: usize,
    allowed: &impl Fn(u64, usize) -> bool,
) -> Vec<bool> {
    let mut outs = vec![true; o];
    for_each_minterm(tris, n, |m| {
        for (j, ok) in outs.iter_mut().enumerate() {
            if *ok && !allowed(m, j) {
                *ok = false;
            }
        }
    });
    outs
}

/// True if no single literal of `cube` can be raised while keeping its
/// (full) output set implied.
fn is_input_maximal(
    cube: &Cube,
    n: usize,
    o: usize,
    allowed: &impl Fn(u64, usize) -> bool,
) -> bool {
    let outs: Vec<bool> = (0..o).map(|j| cube.has_output(j)).collect();
    for i in 0..n {
        if cube.input(i) == Tri::DontCare {
            continue;
        }
        let mut tris: Vec<Tri> = (0..n).map(|k| cube.input(k)).collect();
        tris[i] = Tri::DontCare;
        let implied = implied_outputs(&tris, o, n, allowed);
        if outs.iter().zip(&implied).all(|(&want, &got)| !want || got) {
            return false; // the raise keeps every output: not maximal
        }
    }
    true
}

/// Visit every minterm of a ternary vector.
fn for_each_minterm(tris: &[Tri], n: usize, mut f: impl FnMut(u64)) {
    let free: Vec<usize> = (0..n).filter(|&i| tris[i] == Tri::DontCare).collect();
    let mut base = 0u64;
    for (i, t) in tris.iter().enumerate() {
        if *t == Tri::One {
            base |= 1 << i;
        }
    }
    for combo in 0..(1u64 << free.len()) {
        let mut m = base;
        for (k, &pos) in free.iter().enumerate() {
            if combo >> k & 1 == 1 {
                m |= 1 << pos;
            }
        }
        f(m);
    }
}

fn dedup(primes: &mut Vec<Cube>) {
    let mut seen = std::collections::HashSet::new();
    primes.retain(|c| seen.insert(c.clone()));
}

/// Branch-and-bound unate covering. `rows[r]` lists the columns covering
/// requirement `r`; returns a minimum set of columns.
fn unate_cover(rows: &[Vec<usize>], primes: &[Cube]) -> Vec<usize> {
    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();
    let active: Vec<usize> = (0..rows.len()).collect();
    branch(rows, primes, &active, &mut chosen, &mut best);
    best.expect("a cover always exists (primes cover all requirements)")
}

fn branch(
    rows: &[Vec<usize>],
    primes: &[Cube],
    active: &[usize],
    chosen: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    if active.is_empty() {
        let better = match best {
            None => true,
            Some(b) => {
                chosen.len() < b.len()
                    || (chosen.len() == b.len()
                        && literal_cost(chosen, primes) < literal_cost(b, primes))
            }
        };
        if better {
            *best = Some(chosen.clone());
        }
        return;
    }
    // Prune by cube count: even one more column must beat the best.
    if let Some(b) = best {
        // Lower bound: independent-row count (greedy): rows that share no
        // columns each need a distinct column.
        let lb = independent_rows_bound(rows, active);
        if chosen.len() + lb > b.len() {
            // chosen + lb columns needed ≥ best+1 → cannot improve count;
            // allow equal count only if literal tie-break possible: keep
            // the conservative prune on strictly-worse counts.
            if chosen.len() + lb > b.len() {
                return;
            }
        }
    }
    // Essential column: a requirement covered by exactly one column.
    if let Some(&r) = active.iter().find(|&&r| rows[r].len() == 1) {
        let col = rows[r][0];
        chosen.push(col);
        let remaining: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&rr| !rows[rr].contains(&col))
            .collect();
        branch(rows, primes, &remaining, chosen, best);
        chosen.pop();
        return;
    }
    // Branch on the hardest requirement (fewest covering columns).
    let &r = active
        .iter()
        .min_by_key(|&&r| rows[r].len())
        .expect("nonempty active set");
    for &col in &rows[r] {
        chosen.push(col);
        let remaining: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&rr| !rows[rr].contains(&col))
            .collect();
        branch(rows, primes, &remaining, chosen, best);
        chosen.pop();
    }
}

fn literal_cost(cols: &[usize], primes: &[Cube]) -> usize {
    cols.iter().map(|&k| primes[k].literal_count()).sum()
}

/// Greedy set of pairwise column-disjoint rows — a covering lower bound.
fn independent_rows_bound(rows: &[Vec<usize>], active: &[usize]) -> usize {
    let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut count = 0;
    let mut order: Vec<usize> = active.to_vec();
    order.sort_by_key(|&r| rows[r].len());
    for r in order {
        if rows[r].iter().all(|c| !used.contains(c)) {
            for &c in &rows[r] {
                used.insert(c);
            }
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::espresso;
    use crate::eval::assert_equivalent;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    fn dc(ni: usize, no: usize) -> Cover {
        Cover::new(ni, no)
    }

    #[test]
    fn xor_needs_two_cubes() {
        let f = cover("10 1\n01 1", 2, 1);
        let min = exact_minimize(&f, &dc(2, 1));
        assert_eq!(min.len(), 2);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn constant_one_is_one_cube() {
        let f = cover("0 1\n1 1", 1, 1);
        let min = exact_minimize(&f, &dc(1, 1));
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
    }

    #[test]
    fn empty_function_is_empty_cover() {
        let min = exact_minimize(&Cover::new(3, 2), &dc(3, 2));
        assert!(min.is_empty());
    }

    #[test]
    fn majority_of_three_is_three_cubes() {
        // MAJ3 = ab + bc + ac: known minimum 3.
        let f = cover("11- 1\n-11 1\n1-1 1", 3, 1);
        let min = exact_minimize(&f, &dc(3, 1));
        assert_eq!(min.len(), 3);
        assert_equivalent(&f, &min);
    }

    #[test]
    fn dc_set_reduces_cost() {
        // ON = {00}, DC = rest → constant 1 possible.
        let on = cover("00 1", 2, 1);
        let d = cover("01 1\n10 1\n11 1", 2, 1);
        let min = exact_minimize(&on, &d);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].input_is_full());
    }

    #[test]
    fn multi_output_sharing_is_found() {
        // out0 = ab, out1 = ab ∪ āb̄: optimal shares the ab cube → 2 cubes.
        let f = cover("11 11\n00 01", 2, 2);
        let min = exact_minimize(&f, &dc(2, 2));
        assert_eq!(min.len(), 2);
        assert_equivalent(&f, &min);
        assert!(min.iter().any(|c| c.output_count() == 2), "shared cube");
    }

    #[test]
    fn exact_never_beaten_by_espresso() {
        let mut state = 0xdeadbeefu64;
        for _ in 0..12 {
            let mut f = Cover::new(4, 2);
            for m in 0..16u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let o0 = state >> 33 & 1 == 1;
                let o1 = state >> 35 & 1 == 1;
                if o0 || o1 {
                    let mut c = Cube::minterm(m, 4, 2);
                    if !o0 {
                        c.clear_output(0);
                    }
                    if !o1 {
                        c.clear_output(1);
                    }
                    f.push(c);
                }
            }
            if f.is_empty() {
                continue;
            }
            let exact = exact_minimize(&f, &dc(4, 2));
            let (heur, _) = espresso(&f);
            assert!(
                exact.len() <= heur.len(),
                "exact {} > espresso {} cubes",
                exact.len(),
                heur.len()
            );
            assert_equivalent(&f, &exact);
        }
    }

    #[test]
    fn espresso_stays_close_to_optimum() {
        // Quality pin: on these random 4-input functions ESPRESSO is within
        // 1.5x of optimal cube count.
        let mut state = 0x1234_5678u64;
        for _ in 0..8 {
            let mut f = Cover::new(4, 1);
            for m in 0..16u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 40 & 1 == 1 {
                    f.push(Cube::minterm(m, 4, 1));
                }
            }
            if f.is_empty() {
                continue;
            }
            let exact = exact_minimize(&f, &dc(4, 1));
            let (heur, _) = espresso(&f);
            assert!(
                heur.len() as f64 <= 1.5 * exact.len() as f64 + 0.01,
                "espresso {} vs exact {}",
                heur.len(),
                exact.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_wide_rejected() {
        let f = Cover::new(9, 1);
        let _ = exact_minimize(&f, &Cover::new(9, 1));
    }
}
