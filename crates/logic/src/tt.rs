//! Dense truth tables for small functions.
//!
//! A [`TruthTable`] stores one bit per minterm per output — the natural
//! exchange format between the cube-based tools and exhaustive algorithms
//! (exact minimization, equivalence checking, spectral analysis). Limited
//! to 20 inputs (1 Mi minterms), which covers every function in this
//! repository.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};
use std::fmt;

/// Maximum supported input count (2^20 minterms).
pub const MAX_INPUTS: usize = 20;

/// A dense multi-output truth table.
///
/// # Example
///
/// ```
/// use logic::{Cover, TruthTable};
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let tt = TruthTable::from_cover(&xor);
/// assert_eq!(tt.popcount(0), 2);
/// assert!(tt.get(0b01, 0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    n_inputs: usize,
    n_outputs: usize,
    /// One `Vec<u64>` bitset per output, bit `m` = value on minterm `m`.
    bits: Vec<Vec<u64>>,
}

impl TruthTable {
    /// The constant-0 table.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs > MAX_INPUTS` or `n_outputs == 0`.
    pub fn zero(n_inputs: usize, n_outputs: usize) -> TruthTable {
        assert!(n_inputs <= MAX_INPUTS, "truth tables limited to 20 inputs");
        assert!(n_outputs > 0, "need at least one output");
        let words = (1usize << n_inputs).div_ceil(64);
        TruthTable {
            n_inputs,
            n_outputs,
            bits: vec![vec![0; words]; n_outputs],
        }
    }

    /// Build from a cover by exhaustive evaluation.
    pub fn from_cover(cover: &Cover) -> TruthTable {
        let mut tt = TruthTable::zero(cover.n_inputs(), cover.n_outputs());
        for cube in cover.iter() {
            tt.or_cube(cube);
        }
        tt
    }

    /// OR one cube into the table (enumerates the cube's minterms without
    /// touching the rest of the space).
    fn or_cube(&mut self, cube: &Cube) {
        // Free positions of the cube.
        let free: Vec<usize> = (0..self.n_inputs)
            .filter(|&i| cube.input(i) == Tri::DontCare)
            .collect();
        let mut base = 0u64;
        for i in 0..self.n_inputs {
            if cube.input(i) == Tri::One {
                base |= 1 << i;
            }
        }
        for combo in 0..(1u64 << free.len()) {
            let mut m = base;
            for (k, &pos) in free.iter().enumerate() {
                if combo >> k & 1 == 1 {
                    m |= 1 << pos;
                }
            }
            for j in cube.outputs() {
                self.set(m, j, true);
            }
        }
    }

    /// Number of inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of minterms (2^inputs).
    pub fn size(&self) -> u64 {
        1u64 << self.n_inputs
    }

    /// Value of output `j` on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `j` is out of range.
    pub fn get(&self, m: u64, j: usize) -> bool {
        assert!(m < self.size() && j < self.n_outputs, "index out of range");
        self.bits[j][(m / 64) as usize] >> (m % 64) & 1 == 1
    }

    /// Set output `j` on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `j` is out of range.
    pub fn set(&mut self, m: u64, j: usize, value: bool) {
        assert!(m < self.size() && j < self.n_outputs, "index out of range");
        let word = &mut self.bits[j][(m / 64) as usize];
        if value {
            *word |= 1 << (m % 64);
        } else {
            *word &= !(1 << (m % 64));
        }
    }

    /// Number of ON-minterms of output `j`.
    pub fn popcount(&self, j: usize) -> u64 {
        self.bits[j].iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Iterator over the ON-minterms of output `j`.
    pub fn on_minterms(&self, j: usize) -> impl Iterator<Item = u64> + '_ {
        let size = self.size();
        (0..size).filter(move |&m| self.get(m, j))
    }

    /// The canonical minterm cover (one cube per ON-minterm).
    pub fn to_minterm_cover(&self) -> Cover {
        let mut cover = Cover::new(self.n_inputs, self.n_outputs);
        for m in 0..self.size() {
            let outs: Vec<bool> = (0..self.n_outputs).map(|j| self.get(m, j)).collect();
            if outs.iter().any(|&b| b) {
                let mut cube = Cube::minterm(m, self.n_inputs, self.n_outputs);
                for (j, &on) in outs.iter().enumerate() {
                    if !on {
                        cube.clear_output(j);
                    }
                }
                cover.push(cube);
            }
        }
        cover
    }

    /// Pointwise complement.
    pub fn complement(&self) -> TruthTable {
        let mut out = self.clone();
        let size = self.size();
        for j in 0..self.n_outputs {
            for (w, word) in out.bits[j].iter_mut().enumerate() {
                *word = !*word;
                // Mask the tail beyond 2^n.
                let first = (w * 64) as u64;
                if first + 64 > size {
                    *word &= (1u64 << (size - first)) - 1;
                }
            }
        }
        out
    }

    /// True if the two tables are the same function.
    pub fn equivalent(&self, other: &TruthTable) -> bool {
        self == other
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TruthTable({}i/{}o, on-counts: {:?})",
            self.n_inputs,
            self.n_outputs,
            (0..self.n_outputs)
                .map(|j| self.popcount(j))
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn from_cover_matches_eval() {
        let f = cover("1-0 10\n011 01\n--1 11", 3, 2);
        let tt = TruthTable::from_cover(&f);
        for m in 0..8u64 {
            let v = f.eval_bits(m);
            assert_eq!(tt.get(m, 0), v[0], "m={m}");
            assert_eq!(tt.get(m, 1), v[1], "m={m}");
        }
    }

    #[test]
    fn minterm_cover_roundtrip() {
        let f = cover("10 1\n01 1", 2, 1);
        let tt = TruthTable::from_cover(&f);
        let back = tt.to_minterm_cover();
        assert_eq!(back.len(), 2);
        for m in 0..4u64 {
            assert_eq!(back.eval_bits(m), f.eval_bits(m));
        }
    }

    #[test]
    fn complement_flips_everything() {
        let f = cover("1- 1", 2, 1);
        let tt = TruthTable::from_cover(&f);
        let c = tt.complement();
        for m in 0..4u64 {
            assert_eq!(c.get(m, 0), !tt.get(m, 0));
        }
        assert_eq!(c.popcount(0), 2);
        assert!(tt.complement().complement().equivalent(&tt));
    }

    #[test]
    fn popcount_and_iteration() {
        let f = cover("11 1\n00 1", 2, 1);
        let tt = TruthTable::from_cover(&f);
        assert_eq!(tt.popcount(0), 2);
        let on: Vec<u64> = tt.on_minterms(0).collect();
        assert_eq!(on, vec![0b00, 0b11]);
    }

    #[test]
    fn seven_inputs_cross_word_boundary() {
        let f = cover("1------ 1", 7, 1);
        let tt = TruthTable::from_cover(&f);
        assert_eq!(tt.popcount(0), 64);
        assert!(tt.get(1, 0));
        assert!(!tt.get(0, 0));
        assert!(tt.get(127, 0));
    }

    #[test]
    fn zero_table_is_empty() {
        let tt = TruthTable::zero(4, 2);
        assert_eq!(tt.popcount(0) + tt.popcount(1), 0);
        assert!(tt.to_minterm_cover().is_empty());
    }

    #[test]
    #[should_panic(expected = "limited to 20 inputs")]
    fn too_many_inputs_rejected() {
        let _ = TruthTable::zero(21, 1);
    }
}
