//! Karnaugh-map rendering for small functions.
//!
//! A debugging aid: render any output of a cover (2–4 variables) as the
//! classic Gray-coded Karnaugh map. Cells show `1`, `0`, or `d` (don't
//! care) when a DC cover is supplied.
//!
//! ```
//! use logic::kmap::render_kmap;
//! use logic::Cover;
//!
//! let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
//! let map = render_kmap(&xor, None, 0).unwrap();
//! assert!(map.contains("x0\\x1"));
//! ```

use crate::cover::Cover;
use std::fmt::Write as _;

/// Gray-code sequence for `bits` variables (2 bits max per axis).
fn gray(bits: usize) -> Vec<u64> {
    match bits {
        1 => vec![0, 1],
        2 => vec![0b00, 0b01, 0b11, 0b10],
        _ => unreachable!("axes carry 1 or 2 variables"),
    }
}

/// Render output `j` of `on` (and optional `dc`) as a Karnaugh map.
///
/// Returns `None` if the function has fewer than 2 or more than 4 inputs,
/// or `j` is out of range. Variables `x0..` (low half) label the rows and
/// the rest the columns.
pub fn render_kmap(on: &Cover, dc: Option<&Cover>, j: usize) -> Option<String> {
    let n = on.n_inputs();
    if !(2..=4).contains(&n) || j >= on.n_outputs() {
        return None;
    }
    if let Some(d) = dc {
        if d.n_inputs() != n || j >= d.n_outputs() {
            return None;
        }
    }
    let row_bits = n.div_ceil(2); // x0.. on rows
    let col_bits = n - row_bits;
    let rows = gray(row_bits);
    let cols = gray(col_bits);

    let mut s = String::new();
    let row_label: String = (0..row_bits)
        .map(|i| format!("x{i}"))
        .collect::<Vec<_>>()
        .join("");
    let col_label: String = (row_bits..n)
        .map(|i| format!("x{i}"))
        .collect::<Vec<_>>()
        .join("");
    let _ = writeln!(s, "{row_label}\\{col_label}");
    // Header row.
    let _ = write!(s, "{:>width$} |", "", width = row_bits + 1);
    for &c in &cols {
        let _ = write!(s, " {:0w$b} |", c, w = col_bits.max(1));
    }
    let _ = writeln!(s);
    for &r in &rows {
        let _ = write!(s, "{:0w$b} |", r, w = row_bits);
        for &c in &cols {
            let bits = r | c << row_bits;
            let on_v = on.eval_bits(bits)[j];
            let dc_v = dc.map(|d| d.eval_bits(bits)[j]).unwrap_or(false);
            let ch = if dc_v {
                'd'
            } else if on_v {
                '1'
            } else {
                '0'
            };
            let _ = write!(s, " {ch:^w$} |", w = col_bits.max(1) + 1);
        }
        let _ = writeln!(s);
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_map_has_checkerboard() {
        let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
        let map = render_kmap(&xor, None, 0).unwrap();
        // 2 data rows, each with one 1 and one 0.
        let ones = map.matches('1').count();
        assert!(ones >= 2, "map:\n{map}");
        assert!(map.contains("x0\\x1"));
    }

    #[test]
    fn four_variable_map_is_4x4() {
        let f = Cover::parse("11-- 1", 4, 1).unwrap();
        let map = render_kmap(&f, None, 0).unwrap();
        let data_rows = map.lines().count() - 2; // minus the two header lines
        assert_eq!(data_rows, 4);
    }

    #[test]
    fn dont_cares_render_as_d() {
        let on = Cover::parse("00 1", 2, 1).unwrap();
        let dc = Cover::parse("11 1", 2, 1).unwrap();
        let map = render_kmap(&on, Some(&dc), 0).unwrap();
        assert!(map.contains('d'), "map:\n{map}");
    }

    #[test]
    fn out_of_range_returns_none() {
        let f = Cover::parse("10 1", 2, 1).unwrap();
        assert!(render_kmap(&f, None, 1).is_none());
        let wide = Cover::parse("10100 1", 5, 1).unwrap();
        assert!(render_kmap(&wide, None, 0).is_none());
        let narrow = Cover::parse("1 1", 1, 1).unwrap();
        assert!(render_kmap(&narrow, None, 0).is_none());
    }

    #[test]
    fn gray_order_adjacent_cells_differ_by_one_bit() {
        for seq in [gray(1), gray(2)] {
            for w in seq.windows(2) {
                assert_eq!((w[0] ^ w[1]).count_ones(), 1);
            }
        }
    }

    #[test]
    fn cell_values_match_eval() {
        // Spot-check the 3-variable layout: rows carry x0x1, column x2.
        let f = Cover::parse("101 1", 3, 1).unwrap();
        let map = render_kmap(&f, None, 0).unwrap();
        // Exactly one ON cell.
        assert_eq!(map.matches('1').count() - count_header_ones(&map), 1);
    }

    fn count_header_ones(map: &str) -> usize {
        // Header lines contain binary labels with 1s; count them so the
        // data-cell assertion above is exact.
        map.lines()
            .take(2)
            .map(|l| l.matches('1').count())
            .sum::<usize>()
            + map
                .lines()
                .skip(2)
                .map(|l| l.split('|').next().unwrap_or("").matches('1').count())
                .sum::<usize>()
    }
}
