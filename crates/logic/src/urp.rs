//! The Unate Recursive Paradigm (URP): tautology checking and
//! complementation of single-output covers.
//!
//! These are the two recursive primitives underneath ESPRESSO (Brayton et
//! al., *Logic Minimization Algorithms for VLSI Synthesis*): both recurse on
//! the Shannon expansion around the "most binate" variable and exploit unate
//! covers in the base cases.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};

/// How a variable appears across a cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VarUse {
    pos: usize,
    neg: usize,
}

impl VarUse {
    fn is_binate(self) -> bool {
        self.pos > 0 && self.neg > 0
    }
}

fn var_usage(cover: &Cover) -> Vec<VarUse> {
    let mut use_ = vec![VarUse { pos: 0, neg: 0 }; cover.n_inputs()];
    for c in cover.iter() {
        for (i, u) in use_.iter_mut().enumerate() {
            match c.input(i) {
                Tri::One => u.pos += 1,
                Tri::Zero => u.neg += 1,
                Tri::DontCare => {}
            }
        }
    }
    use_
}

/// Pick the most binate variable (largest `min(pos, neg)`, ties broken by
/// total literal count). Returns `None` if the cover is unate in every
/// variable.
fn most_binate_var(cover: &Cover) -> Option<usize> {
    let usage = var_usage(cover);
    usage
        .iter()
        .enumerate()
        .filter(|(_, u)| u.is_binate())
        .max_by_key(|(_, u)| (u.pos.min(u.neg), u.pos + u.neg))
        .map(|(i, _)| i)
}

/// Shannon cofactor of a single-output cover with respect to literal
/// `x_i = value`.
fn shannon_cofactor(cover: &Cover, i: usize, value: bool) -> Cover {
    let mut p = Cube::universe(cover.n_inputs(), 1);
    p.set_input(i, if value { Tri::One } else { Tri::Zero });
    cover.cofactor(&p)
}

/// True if the single-output cover covers the whole input space.
///
/// This is the classic URP tautology check: unate leaves answer immediately
/// (a unate cover is a tautology iff it contains the full cube), binate nodes
/// split on the most binate variable.
///
/// # Panics
///
/// Panics if the cover is not single-output.
pub fn tautology(cover: &Cover) -> bool {
    assert_eq!(cover.n_outputs(), 1, "tautology is defined per output");
    tautology_rec(cover)
}

fn tautology_rec(cover: &Cover) -> bool {
    // Quick accept: any all-don't-care cube covers everything.
    if cover.iter().any(|c| c.input_is_full()) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    // Quick reject: a variable appearing in only one phase and in *every*
    // cube means the opposite half-space is uncovered.
    let usage = var_usage(cover);
    let n = cover.len();
    for u in &usage {
        if (u.pos == n && u.neg == 0) || (u.neg == n && u.pos == 0) {
            return false;
        }
    }
    match most_binate_var(cover) {
        None => {
            // Unate cover without a full cube: never a tautology.
            false
        }
        Some(i) => {
            tautology_rec(&shannon_cofactor(cover, i, true))
                && tautology_rec(&shannon_cofactor(cover, i, false))
        }
    }
}

/// Complement of a single-output cover via URP.
///
/// Returns a cover `R` with `R(x) = !F(x)` for all assignments `x`. The
/// result is SCC-minimal but not necessarily minimal in the ESPRESSO sense.
///
/// # Panics
///
/// Panics if the cover is not single-output.
pub fn complement(cover: &Cover) -> Cover {
    assert_eq!(cover.n_outputs(), 1, "complement is defined per output");
    let mut r = complement_rec(cover);
    r.make_scc_minimal();
    r
}

fn complement_rec(cover: &Cover) -> Cover {
    let n = cover.n_inputs();
    if cover.iter().any(|c| c.input_is_full()) {
        return Cover::new(n, 1);
    }
    if cover.is_empty() {
        return Cover::from_cubes(n, 1, vec![Cube::universe(n, 1)]);
    }
    if cover.len() == 1 {
        return complement_cube(&cover.cubes()[0]);
    }
    match most_binate_var(cover) {
        Some(i) => merge_complement(cover, i),
        None => {
            // Unate cover: still split, on the most frequent variable, which
            // guarantees progress (some cube loses a literal each level).
            let usage = var_usage(cover);
            let (i, _) = usage
                .iter()
                .enumerate()
                .max_by_key(|(_, u)| u.pos + u.neg)
                .expect("nonempty cover has variables");
            merge_complement(cover, i)
        }
    }
}

/// `R = x̄·comp(F_x̄) + x·comp(F_x)`, with single-literal lifting.
fn merge_complement(cover: &Cover, i: usize) -> Cover {
    let n = cover.n_inputs();
    let comp_pos = complement_rec(&shannon_cofactor(cover, i, true));
    let comp_neg = complement_rec(&shannon_cofactor(cover, i, false));
    let mut cubes = Vec::with_capacity(comp_pos.len() + comp_neg.len());
    for (value, part) in [(true, comp_pos), (false, comp_neg)] {
        for c in part.iter() {
            let mut c = c.clone();
            c.set_input(i, if value { Tri::One } else { Tri::Zero });
            cubes.push(c);
        }
    }
    let mut r = Cover::from_cubes(n, 1, cubes);
    r.make_scc_minimal();
    r
}

/// De Morgan complement of a single cube: one cube per literal.
fn complement_cube(cube: &Cube) -> Cover {
    let n = cube.n_inputs();
    let mut out = Cover::new(n, 1);
    for i in 0..n {
        match cube.input(i) {
            Tri::DontCare => {}
            t => {
                let mut c = Cube::universe(n, 1);
                c.set_input(i, if t == Tri::One { Tri::Zero } else { Tri::One });
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize) -> Cover {
        Cover::parse(text, ni, 1).expect("parse cover")
    }

    #[test]
    fn full_cube_is_tautology() {
        assert!(tautology(&cover("--- 1", 3)));
    }

    #[test]
    fn empty_cover_is_not_tautology() {
        assert!(!tautology(&Cover::new(3, 1)));
    }

    #[test]
    fn x_or_notx_is_tautology() {
        assert!(tautology(&cover("1- 1\n0- 1", 2)));
    }

    #[test]
    fn xor_cover_is_not_tautology() {
        assert!(!tautology(&cover("10 1\n01 1", 2)));
    }

    #[test]
    fn all_four_minterms_are_tautology() {
        assert!(tautology(&cover("00 1\n01 1\n10 1\n11 1", 2)));
    }

    #[test]
    fn three_minterms_are_not() {
        assert!(!tautology(&cover("00 1\n01 1\n10 1", 2)));
    }

    #[test]
    fn tautology_matches_exhaustive_eval() {
        let samples = [
            "1-- 1\n-1- 1\n--1 1\n000 1",
            "1-- 1\n-1- 1\n--1 1",
            "11- 1\n0-- 1\n-0- 1",
            "1-1 1\n-11 1\n00- 1\n-00 1",
        ];
        for text in samples {
            let f = cover(text, 3);
            let exhaustive = (0..8u64).all(|b| f.eval_bits(b)[0]);
            assert_eq!(tautology(&f), exhaustive, "cover:\n{f:?}");
        }
    }

    #[test]
    fn complement_of_empty_is_universe() {
        let r = complement(&Cover::new(3, 1));
        assert_eq!(r.len(), 1);
        assert!(r.cubes()[0].input_is_full());
    }

    #[test]
    fn complement_of_universe_is_empty() {
        assert!(complement(&cover("-- 1", 2)).is_empty());
    }

    #[test]
    fn complement_single_cube() {
        let r = complement(&cover("10 1", 2));
        for bits in 0..4u64 {
            let want = bits != 0b01; // cube 10 covers exactly x0=1? bit0=1,bit1=0
            assert_eq!(r.eval_bits(bits)[0], want, "bits={bits:02b}");
        }
    }

    #[test]
    fn complement_is_pointwise_negation() {
        let samples = [
            "10- 1\n0-1 1",
            "1-- 1\n-1- 1\n--1 1",
            "101 1\n010 1\n110 1",
            "00- 1\n-11 1",
        ];
        for text in samples {
            let f = cover(text, 3);
            let r = complement(&f);
            for bits in 0..8u64 {
                assert_eq!(
                    r.eval_bits(bits)[0],
                    !f.eval_bits(bits)[0],
                    "bits={bits:03b} cover:\n{f:?}"
                );
            }
        }
    }

    #[test]
    fn complement_wide_cover() {
        // 10 variables, complement must stay correct across recursion depth.
        let f = Cover::parse("1--------- 1\n-1-------- 1\n--1------- 1", 10, 1).unwrap();
        let r = complement(&f);
        for bits in [0u64, 1, 2, 4, 7, 0b1111111111, 0b1000000000, 0b0000000111] {
            assert_eq!(r.eval_bits(bits)[0], !f.eval_bits(bits)[0]);
        }
        // f is x0+x1+x2, complement is x0'x1'x2' — a single cube.
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 3);
    }

    #[test]
    fn double_complement_preserves_function() {
        let f = cover("11- 1\n-01 1\n0-0 1", 3);
        let rr = complement(&complement(&f));
        for bits in 0..8u64 {
            assert_eq!(rr.eval_bits(bits)[0], f.eval_bits(bits)[0]);
        }
    }
}
