//! The Unate Recursive Paradigm (URP): tautology checking and
//! complementation of single-output covers.
//!
//! These are the two recursive primitives underneath ESPRESSO (Brayton et
//! al., *Logic Minimization Algorithms for VLSI Synthesis*): both recurse on
//! the Shannon expansion around the "most binate" variable and exploit unate
//! covers in the base cases.
//!
//! # Word-parallel, allocation-free implementation
//!
//! The kernels here never materialize intermediate [`Cover`]s. A call loads
//! the cover once into a flat **row matrix** (the packed pair-words of each
//! cube's input part, 32 variables per `u64`), and the Shannon recursion
//! operates on two stack arenas owned by a reusable [`UrpContext`]:
//!
//! * an **index arena** — each node's active cube set is a contiguous range
//!   of row indices, pushed when descending into a cofactor and truncated on
//!   return;
//! * a **raised-variable arena** — the cofactor cube of the path from the
//!   root, kept as an LO-aligned bit mask per node so "this variable was
//!   cofactored away" is a single AND-NOT during mask extraction.
//!
//! Variable usage (`pos`/`neg` counts, the binate test, the quick
//! unateness rejects) is computed with masked popcounts over the pair-words
//! instead of per-variable [`Cube::input`] calls, and — unlike the scalar
//! implementation this replaced — usage is derived **once** per node: the
//! quick-reject masks and the most-binate selection share a single scan.

use crate::cover::Cover;
use crate::cube::{conflict_word, Cube, Tri, LO_MASK};

/// Number of input variables packed into one pair-word.
const VARS_PER_WORD: usize = 32;

/// Mask of the pair bits belonging to valid variables in word `w`.
#[inline]
fn pair_tail_mask(n_inputs: usize, w: usize) -> u64 {
    let first = w * VARS_PER_WORD;
    let valid = n_inputs.saturating_sub(first).min(VARS_PER_WORD);
    if valid == VARS_PER_WORD {
        !0
    } else {
        (1u64 << (2 * valid)).wrapping_sub(1)
    }
}

/// Reusable scratch state for the word-parallel URP kernels.
///
/// All recursion-level storage (active row index lists, raised-variable
/// masks, usage accumulators and per-variable counters) lives in arenas
/// inside the context, so repeated calls — e.g. the thousands of
/// per-(cube, output) tautology checks of one ESPRESSO IRREDUNDANT pass —
/// stop touching the allocator once the arenas are warm.
///
/// A context is cheap to create and can be dropped freely; holding one
/// across calls is purely a performance optimization. Results are
/// independent of context reuse.
#[derive(Debug, Default)]
pub struct UrpContext {
    n_inputs: usize,
    words: usize,
    /// Row matrix: packed input pair-words, `words` per row.
    rows: Vec<u64>,
    /// Stack arena of active row indices (one contiguous range per node).
    idx: Vec<u32>,
    /// Stack arena of raised-variable masks (`words` per node frame).
    raised: Vec<u64>,
    /// Per-level usage accumulators `[all_one, all_zero, ever_one,
    /// ever_zero]`, each `words` long. Consumed before recursing, so one
    /// block serves every level.
    acc: Vec<u64>,
    /// Per-variable phase counters; only candidate entries are touched and
    /// they are reset after each split selection.
    cnt_one: Vec<u32>,
    cnt_zero: Vec<u32>,
}

impl UrpContext {
    /// A fresh context with empty arenas.
    pub fn new() -> UrpContext {
        UrpContext::default()
    }

    /// True if the single-output cover covers the whole input space.
    ///
    /// # Panics
    ///
    /// Panics if the cover is not single-output.
    pub fn tautology(&mut self, cover: &Cover) -> bool {
        assert_eq!(cover.n_outputs(), 1, "tautology is defined per output");
        self.load_cover(cover);
        self.taut_node(0, self.idx.len(), 0)
    }

    /// Complement of a single-output cover.
    ///
    /// # Panics
    ///
    /// Panics if the cover is not single-output.
    pub fn complement(&mut self, cover: &Cover) -> Cover {
        assert_eq!(cover.n_outputs(), 1, "complement is defined per output");
        self.load_cover(cover);
        let mut r = self.comp_node(0, self.idx.len(), 0);
        r.make_scc_minimal();
        r
    }

    /// True if the cofactor (w.r.t. the input part of `p`) of the input
    /// parts of `cubes` is a tautology.
    ///
    /// Equivalent to collecting `cubes` into a single-output cover of
    /// their input parts and asking `cover.cofactor(&p).is_tautology()`,
    /// without building either cover. Output parts of `cubes` and `p` are
    /// ignored — callers filter by output beforehand (this is exactly the
    /// per-(cube, output) containment check of ESPRESSO's IRREDUNDANT).
    ///
    /// # Panics
    ///
    /// Panics if any cube's (or `p`'s) input arity differs from
    /// `n_inputs`.
    pub fn cofactor_tautology<'a, I>(&mut self, n_inputs: usize, cubes: I, p: &Cube) -> bool
    where
        I: IntoIterator<Item = &'a Cube>,
    {
        self.load_cofactor(n_inputs, cubes, p);
        self.taut_node(0, self.idx.len(), 0)
    }

    /// Complement of the cofactor (w.r.t. the input part of `p`) of the
    /// input parts of `cubes`, as a single-output cover.
    ///
    /// The cover-free counterpart of
    /// `rest.cofactor(&p).complement()` — the inner computation of
    /// ESPRESSO's REDUCE pass.
    ///
    /// # Panics
    ///
    /// Panics if any cube's (or `p`'s) input arity differs from
    /// `n_inputs`.
    pub fn cofactor_complement<'a, I>(&mut self, n_inputs: usize, cubes: I, p: &Cube) -> Cover
    where
        I: IntoIterator<Item = &'a Cube>,
    {
        self.load_cofactor(n_inputs, cubes, p);
        let mut r = self.comp_node(0, self.idx.len(), 0);
        r.make_scc_minimal();
        r
    }

    /// Reset arenas and record the dimensions of a new run.
    fn begin(&mut self, n_inputs: usize) {
        self.n_inputs = n_inputs;
        self.words = n_inputs.div_ceil(VARS_PER_WORD).max(1);
        self.rows.clear();
        self.idx.clear();
        self.raised.clear();
        self.acc.clear();
        self.acc.resize(4 * self.words, 0);
        self.cnt_one.clear();
        self.cnt_one.resize(n_inputs, 0);
        self.cnt_zero.clear();
        self.cnt_zero.resize(n_inputs, 0);
    }

    /// Load the input parts of a cover as matrix rows. Cubes denoting the
    /// empty set (an empty input pair) contribute nothing and are skipped.
    fn load_cover(&mut self, cover: &Cover) {
        self.begin(cover.n_inputs());
        for c in cover.iter() {
            let src = c.input_words();
            if (0..self.words).any(|w| conflict_word(src[w], self.n_inputs, w) != 0) {
                continue;
            }
            self.rows.extend_from_slice(&src[..self.words]);
        }
        self.finish_load();
    }

    /// Load the cofactor of `cubes` w.r.t. `p`: rows conflicting with `p`
    /// drop out, surviving rows raise the positions `p` fixes.
    fn load_cofactor<'a, I>(&mut self, n_inputs: usize, cubes: I, p: &Cube)
    where
        I: IntoIterator<Item = &'a Cube>,
    {
        assert_eq!(p.n_inputs(), n_inputs, "cofactor cube input arity mismatch");
        self.begin(n_inputs);
        let pw = p.input_words();
        for c in cubes {
            assert_eq!(c.n_inputs(), n_inputs, "cube input arity mismatch");
            let src = c.input_words();
            if (0..self.words).any(|w| conflict_word(src[w] & pw[w], n_inputs, w) != 0) {
                continue;
            }
            for w in 0..self.words {
                self.rows
                    .push((src[w] | !pw[w]) & pair_tail_mask(n_inputs, w));
            }
        }
        self.finish_load();
    }

    /// Initialize the root node: all rows active, nothing raised.
    fn finish_load(&mut self) {
        let n_rows = self.rows.len() / self.words;
        self.idx.extend(0..n_rows as u32);
        self.raised.extend(std::iter::repeat_n(0, self.words));
    }

    /// One scan over the active rows `idx[lo..hi]`: fills the
    /// `[all_one, all_zero, ever_one, ever_zero]` accumulators with the
    /// effective (raised-adjusted) literal masks. Returns `true` — with
    /// the accumulators only partially filled — as soon as a row without
    /// any effective literal (a full cube of the subspace) is found.
    fn scan_level(&mut self, lo: usize, hi: usize, rlo: usize) -> bool {
        let words = self.words;
        for w in 0..words {
            self.acc[w] = !0;
            self.acc[words + w] = !0;
            self.acc[2 * words + w] = 0;
            self.acc[3 * words + w] = 0;
        }
        for t in lo..hi {
            let base = self.idx[t] as usize * words;
            let mut any = 0u64;
            for w in 0..words {
                let word = self.rows[base + w];
                let raised = self.raised[rlo + w];
                let lo_b = word & LO_MASK;
                let hi_b = (word >> 1) & LO_MASK;
                let one = hi_b & !lo_b & !raised;
                let zero = lo_b & !hi_b & !raised;
                self.acc[w] &= one;
                self.acc[words + w] &= zero;
                self.acc[2 * words + w] |= one;
                self.acc[3 * words + w] |= zero;
                any |= one | zero;
            }
            if any == 0 {
                return true;
            }
        }
        false
    }

    /// True if some variable is binate per the `ever_*` accumulators.
    fn has_binate_var(&self) -> bool {
        let words = self.words;
        (0..words).any(|w| self.acc[2 * words + w] & self.acc[3 * words + w] != 0)
    }

    /// Pick the split variable from the accumulators filled by
    /// [`UrpContext::scan_level`]: the most binate variable (largest
    /// `min(pos, neg)`, ties by total count, last maximum — matching
    /// `Iterator::max_by_key`) when `binate_only`, otherwise the most
    /// frequent variable over all literals (the unate-split fallback of
    /// complementation).
    fn select_split_var(&mut self, lo: usize, hi: usize, rlo: usize, binate_only: bool) -> usize {
        let words = self.words;
        // Candidate mask goes into acc[0..words]; the all_* slices are
        // dead by the time a split is needed.
        for w in 0..words {
            let e1 = self.acc[2 * words + w];
            let e0 = self.acc[3 * words + w];
            self.acc[w] = if binate_only { e1 & e0 } else { e1 | e0 };
        }
        for t in lo..hi {
            let base = self.idx[t] as usize * words;
            for w in 0..words {
                let word = self.rows[base + w];
                let raised = self.raised[rlo + w];
                let lo_b = word & LO_MASK;
                let hi_b = (word >> 1) & LO_MASK;
                let mut one = hi_b & !lo_b & !raised & self.acc[w];
                let mut zero = lo_b & !hi_b & !raised & self.acc[w];
                while one != 0 {
                    self.cnt_one[w * VARS_PER_WORD + one.trailing_zeros() as usize / 2] += 1;
                    one &= one - 1;
                }
                while zero != 0 {
                    self.cnt_zero[w * VARS_PER_WORD + zero.trailing_zeros() as usize / 2] += 1;
                    zero &= zero - 1;
                }
            }
        }
        let mut best: Option<(usize, (u32, u32))> = None;
        for w in 0..words {
            let mut m = self.acc[w];
            while m != 0 {
                let var = w * VARS_PER_WORD + m.trailing_zeros() as usize / 2;
                let p = self.cnt_one[var];
                let q = self.cnt_zero[var];
                let key = if binate_only {
                    (p.min(q), p + q)
                } else {
                    (p + q, 0)
                };
                if best.is_none_or(|(_, k)| key >= k) {
                    best = Some((var, key));
                }
                m &= m - 1;
            }
        }
        // Reset the touched counters for the next selection.
        for w in 0..words {
            let mut m = self.acc[w];
            while m != 0 {
                let var = w * VARS_PER_WORD + m.trailing_zeros() as usize / 2;
                self.cnt_one[var] = 0;
                self.cnt_zero[var] = 0;
                m &= m - 1;
            }
        }
        best.expect("candidate variable exists").0
    }

    /// Push the child node for the cofactor `x_v = value`: rows carrying
    /// the opposite literal at `v` drop, `v` joins the raised mask.
    /// Returns `(child_lo, child_hi, child_raised)`.
    fn push_child(
        &mut self,
        lo: usize,
        hi: usize,
        rlo: usize,
        v: usize,
        value: bool,
    ) -> (usize, usize, usize) {
        let words = self.words;
        let wv = v / VARS_PER_WORD;
        let bit = 1u64 << (2 * (v % VARS_PER_WORD));
        let rchild = self.raised.len();
        for w in 0..words {
            let m = self.raised[rlo + w];
            self.raised.push(if w == wv { m | bit } else { m });
        }
        let clo = self.idx.len();
        for t in lo..hi {
            let r = self.idx[t] as usize;
            let word = self.rows[r * words + wv];
            let lo_b = word & LO_MASK;
            let hi_b = (word >> 1) & LO_MASK;
            let conflict = if value { lo_b & !hi_b } else { hi_b & !lo_b } & bit;
            if conflict == 0 {
                self.idx.push(r as u32);
            }
        }
        (clo, self.idx.len(), rchild)
    }

    /// Pop a child node pushed by [`UrpContext::push_child`].
    fn pop_child(&mut self, clo: usize, rchild: usize) {
        self.idx.truncate(clo);
        self.raised.truncate(rchild);
    }

    /// URP tautology over the node `idx[lo..hi]` / raised frame `rlo`.
    fn taut_node(&mut self, lo: usize, hi: usize, rlo: usize) -> bool {
        if lo == hi {
            return false;
        }
        // Quick accept: an effectively-full row covers the subspace.
        if self.scan_level(lo, hi, rlo) {
            return true;
        }
        // Quick reject: a variable appearing in one phase in *every* row
        // leaves the opposite half-space uncovered.
        let words = self.words;
        for w in 0..words {
            if self.acc[w] != 0 || self.acc[words + w] != 0 {
                return false;
            }
        }
        if !self.has_binate_var() {
            // Unate cover without a full cube: never a tautology.
            return false;
        }
        let v = self.select_split_var(lo, hi, rlo, true);
        for value in [true, false] {
            let (clo, chi, rchild) = self.push_child(lo, hi, rlo, v, value);
            let ok = self.taut_node(clo, chi, rchild);
            self.pop_child(clo, rchild);
            if !ok {
                return false;
            }
        }
        true
    }

    /// URP complementation over the node `idx[lo..hi]` / raised frame
    /// `rlo`. Returns an SCC-minimal single-output cover of the
    /// complement.
    fn comp_node(&mut self, lo: usize, hi: usize, rlo: usize) -> Cover {
        let n = self.n_inputs;
        if lo == hi {
            return Cover::from_cubes(n, 1, vec![Cube::universe(n, 1)]);
        }
        if self.scan_level(lo, hi, rlo) {
            // A full row covers the subspace: empty complement.
            return Cover::new(n, 1);
        }
        if hi - lo == 1 {
            return self.demorgan_leaf(self.idx[lo] as usize, rlo);
        }
        // Split on the most binate variable; a unate node (no binate
        // variable) splits on the most frequent one, which guarantees
        // progress — some row loses a literal each level.
        let binate = self.has_binate_var();
        let v = self.select_split_var(lo, hi, rlo, binate);
        let mut cubes: Vec<Cube> = Vec::new();
        for value in [true, false] {
            let (clo, chi, rchild) = self.push_child(lo, hi, rlo, v, value);
            let part = self.comp_node(clo, chi, rchild);
            self.pop_child(clo, rchild);
            for mut c in part.into_cubes() {
                c.set_input(v, if value { Tri::One } else { Tri::Zero });
                cubes.push(c);
            }
        }
        // No SCC pass here: each part is SCC-minimal by induction and the
        // lifted literal at `v` makes cross-part containment impossible,
        // so the merge is already SCC-minimal.
        Cover::from_cubes(n, 1, cubes)
    }

    /// De Morgan complement of a single effective row: one cube per
    /// remaining literal, in ascending variable order.
    fn demorgan_leaf(&self, r: usize, rlo: usize) -> Cover {
        let n = self.n_inputs;
        let words = self.words;
        let mut out = Cover::new(n, 1);
        let base = r * words;
        for w in 0..words {
            let word = self.rows[base + w];
            let raised = self.raised[rlo + w];
            let lo_b = word & LO_MASK;
            let hi_b = (word >> 1) & LO_MASK;
            let one = hi_b & !lo_b & !raised;
            let zero = lo_b & !hi_b & !raised;
            let mut lits = one | zero;
            while lits != 0 {
                let b = lits.trailing_zeros() as usize;
                let var = w * VARS_PER_WORD + b / 2;
                let mut c = Cube::universe(n, 1);
                c.set_input(
                    var,
                    if one >> b & 1 == 1 {
                        Tri::Zero
                    } else {
                        Tri::One
                    },
                );
                out.push(c);
                lits &= lits - 1;
            }
        }
        out
    }
}

/// True if the single-output cover covers the whole input space.
///
/// This is the classic URP tautology check: unate leaves answer immediately
/// (a unate cover is a tautology iff it contains the full cube), binate nodes
/// split on the most binate variable. Convenience wrapper creating a fresh
/// [`UrpContext`]; hot paths should hold a context and call
/// [`UrpContext::tautology`] to reuse its arenas.
///
/// # Panics
///
/// Panics if the cover is not single-output.
pub fn tautology(cover: &Cover) -> bool {
    UrpContext::new().tautology(cover)
}

/// Complement of a single-output cover via URP.
///
/// Returns a cover `R` with `R(x) = !F(x)` for all assignments `x`. The
/// result is SCC-minimal but not necessarily minimal in the ESPRESSO sense.
/// Convenience wrapper creating a fresh [`UrpContext`].
///
/// # Panics
///
/// Panics if the cover is not single-output.
pub fn complement(cover: &Cover) -> Cover {
    UrpContext::new().complement(cover)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize) -> Cover {
        Cover::parse(text, ni, 1).expect("parse cover")
    }

    #[test]
    fn full_cube_is_tautology() {
        assert!(tautology(&cover("--- 1", 3)));
    }

    #[test]
    fn empty_cover_is_not_tautology() {
        assert!(!tautology(&Cover::new(3, 1)));
    }

    #[test]
    fn x_or_notx_is_tautology() {
        assert!(tautology(&cover("1- 1\n0- 1", 2)));
    }

    #[test]
    fn xor_cover_is_not_tautology() {
        assert!(!tautology(&cover("10 1\n01 1", 2)));
    }

    #[test]
    fn all_four_minterms_are_tautology() {
        assert!(tautology(&cover("00 1\n01 1\n10 1\n11 1", 2)));
    }

    #[test]
    fn three_minterms_are_not() {
        assert!(!tautology(&cover("00 1\n01 1\n10 1", 2)));
    }

    #[test]
    fn tautology_matches_exhaustive_eval() {
        let samples = [
            "1-- 1\n-1- 1\n--1 1\n000 1",
            "1-- 1\n-1- 1\n--1 1",
            "11- 1\n0-- 1\n-0- 1",
            "1-1 1\n-11 1\n00- 1\n-00 1",
        ];
        for text in samples {
            let f = cover(text, 3);
            let exhaustive = (0..8u64).all(|b| f.eval_bits(b)[0]);
            assert_eq!(tautology(&f), exhaustive, "cover:\n{f:?}");
        }
    }

    #[test]
    fn context_reuse_is_transparent() {
        let mut ctx = UrpContext::new();
        assert!(ctx.tautology(&cover("1- 1\n0- 1", 2)));
        assert!(!ctx.tautology(&cover("10 1\n01 1", 2)));
        // A wider cover after a narrow one must resize cleanly.
        assert!(ctx.tautology(&cover("1---------- 1\n0---------- 1", 11)));
        let comp = ctx.complement(&cover("10 1", 2));
        for bits in 0..4u64 {
            assert_eq!(comp.eval_bits(bits)[0], bits != 0b01);
        }
    }

    #[test]
    fn cofactor_tautology_matches_cover_path() {
        let rest = cover("1-- 1\n-1- 1\n--1 1\n000 1", 3);
        let mut ctx = UrpContext::new();
        for text in ["1-- 1", "-00 1", "111 1", "--- 1"] {
            let p = Cube::parse(text, 3, 1).unwrap();
            let want = rest.cofactor(&p).is_tautology();
            let got = ctx.cofactor_tautology(3, rest.iter(), &p);
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn cofactor_complement_matches_cover_path() {
        let rest = cover("11- 1\n0-1 1", 3);
        let mut ctx = UrpContext::new();
        for text in ["1-- 1", "-1- 1", "--- 1"] {
            let p = Cube::parse(text, 3, 1).unwrap();
            let want = rest.cofactor(&p).complement();
            let got = ctx.cofactor_complement(3, rest.iter(), &p);
            assert_eq!(got.to_string(), want.to_string(), "p={p}");
        }
    }

    #[test]
    fn complement_of_empty_is_universe() {
        let r = complement(&Cover::new(3, 1));
        assert_eq!(r.len(), 1);
        assert!(r.cubes()[0].input_is_full());
    }

    #[test]
    fn complement_of_universe_is_empty() {
        assert!(complement(&cover("-- 1", 2)).is_empty());
    }

    #[test]
    fn complement_single_cube() {
        let r = complement(&cover("10 1", 2));
        for bits in 0..4u64 {
            let want = bits != 0b01; // cube 10 covers exactly x0=1? bit0=1,bit1=0
            assert_eq!(r.eval_bits(bits)[0], want, "bits={bits:02b}");
        }
    }

    #[test]
    fn complement_is_pointwise_negation() {
        let samples = [
            "10- 1\n0-1 1",
            "1-- 1\n-1- 1\n--1 1",
            "101 1\n010 1\n110 1",
            "00- 1\n-11 1",
        ];
        for text in samples {
            let f = cover(text, 3);
            let r = complement(&f);
            for bits in 0..8u64 {
                assert_eq!(
                    r.eval_bits(bits)[0],
                    !f.eval_bits(bits)[0],
                    "bits={bits:03b} cover:\n{f:?}"
                );
            }
        }
    }

    #[test]
    fn complement_wide_cover() {
        // 10 variables, complement must stay correct across recursion depth.
        let f = Cover::parse("1--------- 1\n-1-------- 1\n--1------- 1", 10, 1).unwrap();
        let r = complement(&f);
        for bits in [0u64, 1, 2, 4, 7, 0b1111111111, 0b1000000000, 0b0000000111] {
            assert_eq!(r.eval_bits(bits)[0], !f.eval_bits(bits)[0]);
        }
        // f is x0+x1+x2, complement is x0'x1'x2' — a single cube.
        assert_eq!(r.len(), 1);
        assert_eq!(r.literal_count(), 3);
    }

    #[test]
    fn cross_word_covers_recurse_correctly() {
        // 40 variables spans two pair-words; literals on both sides.
        let mut a = Cube::universe(40, 1);
        a.set_input(0, Tri::One);
        a.set_input(35, Tri::Zero);
        let mut b = Cube::universe(40, 1);
        b.set_input(0, Tri::Zero);
        let mut c = Cube::universe(40, 1);
        c.set_input(35, Tri::One);
        let f = Cover::from_cubes(40, 1, vec![a, b, c]);
        // f = x0·x̄35 + x̄0 + x35 — a tautology.
        assert!(tautology(&f));
        let g = Cover::from_cubes(40, 1, f.cubes()[..2].to_vec());
        // x0·x̄35 + x̄0 misses x0·x35.
        assert!(!tautology(&g));
        let r = complement(&g);
        let mut probe = vec![false; 40];
        probe[0] = true;
        probe[35] = true;
        assert!(r.eval(&probe)[0]);
    }

    #[test]
    fn double_complement_preserves_function() {
        let f = cover("11- 1\n-01 1\n0-0 1", 3);
        let rr = complement(&complement(&f));
        for bits in 0..8u64 {
            assert_eq!(rr.eval_bits(bits)[0], f.eval_bits(bits)[0]);
        }
    }
}
