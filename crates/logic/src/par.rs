//! Deterministic scoped-thread parallelism for the minimization kernels.
//!
//! The `logic` crate sits at the bottom of the workspace dependency graph,
//! below `ambipla_core`, so it cannot use `ambipla_core::pool::WorkerPool`
//! directly. This module carries a minimal pool with the **same
//! bit-identical contract**: `pool.map_range(n, f)` returns exactly what
//! the sequential `(0..n).map(f)` loop returns, in the same order, for any
//! thread count — items are split into contiguous index ranges, each
//! worker computes its range independently, and results are reassembled in
//! range order. Threads only change wall-clock time, never results.
//!
//! Used by [`mod@crate::espresso`] to shard the per-output OFF-set
//! complements and the per-cube EXPAND step, both of which are
//! embarrassingly parallel.

use std::num::NonZeroUsize;

/// A fixed-width fork-join pool over [`std::thread::scope`].
///
/// Holds no threads while idle — each [`map_range`](Pool::map_range) call
/// spawns, joins and tears down its scoped workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running `threads` workers per parallel section.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Pool {
        assert!(threads > 0, "pool needs at least one thread");
        Pool { threads }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    pub fn available() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Worker count per parallel section.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every index in `0..n`, in parallel, returning results
    /// in index order — bit-identical to `(0..n).map(f).collect()`,
    /// including on panic (a panicking worker propagates the panic).
    pub fn map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.threads);
        let mut shards: Vec<Vec<U>> = Vec::with_capacity(self.threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|lo| {
                    let f = &f;
                    let hi = (lo + chunk).min(n);
                    s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(shard) => shards.push(shard),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        let mut out = Vec::with_capacity(n);
        out.extend(shards.into_iter().flatten());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_matches_sequential_loop_for_any_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 3;
        let expected: Vec<u64> = (0..500).map(f).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(
                Pool::new(threads).map_range(500, f),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_tiny_ranges_are_fine() {
        let pool = Pool::new(8);
        assert_eq!(pool.map_range(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_range(1, |i| i * 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        Pool::new(0);
    }
}
