//! Functional evaluation and equivalence checking.
//!
//! Every transformation in this workspace (ESPRESSO passes, phase
//! optimization, GNOR-PLA mapping, fault repair) is validated against these
//! checkers: exhaustive up to [`EXHAUSTIVE_LIMIT`] inputs, deterministic
//! stratified sampling beyond.

use crate::cover::Cover;

/// Maximum input count for exhaustive equivalence checking (2^20 ≈ 1M
/// assignments per output pair).
pub const EXHAUSTIVE_LIMIT: usize = 20;

/// Number of sampled assignments used beyond the exhaustive limit.
const SAMPLES: usize = 1 << 14;

/// Number of lanes (input vectors) carried by one `u64` lane word.
pub const LANES: usize = 64;

/// Lane words per signal used by the built-in verification sweeps
/// ([`check_equivalent`], [`check_implements`], and the `&dyn Simulator`
/// sweeps in `ambipla_core::sim`): 4 words = 256 assignments per
/// `eval_words` call, which amortizes per-call overhead without inflating
/// the reusable buffers.
pub const SWEEP_WORDS: usize = 4;

/// Lane patterns of the low six input columns when lanes enumerate 64
/// consecutive assignments: bit `L` of `EXHAUSTIVE_PATTERNS[i]` is bit `i`
/// of the integer `L`.
const EXHAUSTIVE_PATTERNS: [u64; 6] = [
    0xaaaa_aaaa_aaaa_aaaa,
    0xcccc_cccc_cccc_cccc,
    0xf0f0_f0f0_f0f0_f0f0,
    0xff00_ff00_ff00_ff00,
    0xffff_0000_ffff_0000,
    0xffff_ffff_0000_0000,
];

/// Fill `out` with column-major lane words for the `words × 64`
/// consecutive packed assignments `base .. base + words·64`, in the
/// signal-major multi-word layout: `out[i·words + w]` carries input `i`
/// of lanes `w·64 .. (w+1)·64`, and bit `L` of that word is bit `i` of
/// the assignment `base + w·64 + L`.
///
/// # Panics
///
/// Panics if `base` is not 64-aligned, `n_inputs > 64`, `words == 0`, or
/// `out.len() != n_inputs × words`.
pub fn exhaustive_words(base: u64, n_inputs: usize, words: usize, out: &mut [u64]) {
    assert_eq!(base % LANES as u64, 0, "block base must be 64-aligned");
    assert!(n_inputs <= 64, "at most 64 inputs");
    assert!(words > 0, "at least one lane word per signal");
    assert_eq!(out.len(), n_inputs * words, "buffer size mismatch");
    for i in 0..n_inputs {
        for w in 0..words {
            out[i * words + w] = match EXHAUSTIVE_PATTERNS.get(i) {
                Some(&pattern) => pattern,
                None => {
                    let word_base = base + (w as u64) * LANES as u64;
                    if word_base >> i & 1 == 1 {
                        !0
                    } else {
                        0
                    }
                }
            };
        }
    }
}

/// Column-major lane words for the 64 consecutive packed assignments
/// `base .. base + 64` (bit `L` of word `i` is bit `i` of `base + L`) —
/// the allocating single-word form of [`exhaustive_words`].
///
/// # Panics
///
/// Panics if `base` is not 64-aligned or `n_inputs > 64`.
pub fn exhaustive_block(base: u64, n_inputs: usize) -> Vec<u64> {
    let mut out = vec![0u64; n_inputs];
    exhaustive_words(base, n_inputs, 1, &mut out);
    out
}

/// Transpose up to `words × 64` packed assignments (bit `i` of
/// `vectors[L]` is input `i`) into signal-major lane words: lane `L` of
/// input `i` lands in bit `L % 64` of `out[i·words + L/64]`. Unused lanes
/// are zero.
///
/// # Panics
///
/// Panics if `words == 0`, more than `words × 64` vectors are supplied,
/// or `out.len() != n_inputs × words`.
pub fn pack_vectors_words(vectors: &[u64], n_inputs: usize, words: usize, out: &mut [u64]) {
    assert!(words > 0, "at least one lane word per signal");
    assert!(
        vectors.len() <= words * LANES,
        "at most {words}×{LANES} lanes per block"
    );
    assert_eq!(out.len(), n_inputs * words, "buffer size mismatch");
    out.fill(0);
    for (lane, &v) in vectors.iter().enumerate() {
        let (w, bit) = (lane / LANES, lane % LANES);
        for i in 0..n_inputs {
            out[i * words + w] |= (v >> i & 1) << bit;
        }
    }
}

/// Transpose up to 64 packed assignments (bit `i` of `vectors[L]` is input
/// `i`) into column-major lane words (bit `L` of word `i` is input `i` of
/// lane `L`). Unused lanes are zero — the allocating single-word form of
/// [`pack_vectors_words`].
///
/// # Panics
///
/// Panics if more than [`LANES`] vectors are supplied.
pub fn pack_vectors(vectors: &[u64], n_inputs: usize) -> Vec<u64> {
    let mut words = vec![0u64; n_inputs];
    pack_vectors_words(vectors, n_inputs, 1, &mut words);
    words
}

/// Extract lane `lane` (in `0 .. words × 64`) of a signal-major
/// multi-word block (`words` lane words per signal, as produced by
/// `eval_words`) as a `Vec<bool>`.
///
/// # Panics
///
/// Panics if `words == 0`, the lane is out of range, or `block.len()` is
/// not a multiple of `words`.
pub fn unpack_lane_words(block: &[u64], lane: usize, words: usize) -> Vec<bool> {
    assert!(words > 0, "at least one lane word per signal");
    assert!(lane < words * LANES, "lane out of range");
    assert_eq!(block.len() % words, 0, "ragged multi-word block");
    let (w, bit) = (lane / LANES, lane % LANES);
    block
        .chunks_exact(words)
        .map(|signal| signal[w] >> bit & 1 == 1)
        .collect()
}

/// Extract lane `lane` of column-major words as a `Vec<bool>` — the
/// single-word form of [`unpack_lane_words`].
pub fn unpack_lane(words: &[u64], lane: usize) -> Vec<bool> {
    unpack_lane_words(words, lane, 1)
}

/// Lane mask covering the first `lanes` lanes of a block: bit `L` is set
/// iff lane `L < lanes`.
///
/// [`Cover::eval_batch`] (and every `Simulator::eval_block`
/// implementation in the workspace) always computes all 64 lanes; when fewer than 64 input
/// vectors were packed, the remaining lanes of the output words are the
/// evaluation of whatever the unused input lanes held (all-zero vectors
/// after [`pack_vectors`], arbitrary garbage otherwise). Any consumer of a
/// partial block **must** AND output words — or XOR-difference words —
/// with `lane_mask(valid_lanes)` before interpreting them. This is the
/// single helper all batched sweeps in the workspace use for their tails.
///
/// ```
/// use logic::eval::{lane_mask, LANES};
///
/// assert_eq!(lane_mask(0), 0);
/// assert_eq!(lane_mask(3), 0b111);
/// assert_eq!(lane_mask(LANES), !0);
/// ```
pub fn lane_mask(lanes: usize) -> u64 {
    if lanes >= LANES {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// [`lane_mask`] for one lane word of a multi-word block: the mask for
/// word `word` when the first `lanes` lanes of the whole block are valid.
/// All-ones for fully valid words, all-zero for words past the tail.
///
/// ```
/// use logic::eval::lane_mask_words;
///
/// assert_eq!(lane_mask_words(130, 0), !0);     // lanes 0..64 all valid
/// assert_eq!(lane_mask_words(130, 1), !0);     // lanes 64..128 all valid
/// assert_eq!(lane_mask_words(130, 2), 0b11);   // lanes 128, 129 only
/// assert_eq!(lane_mask_words(130, 3), 0);      // past the tail
/// ```
pub fn lane_mask_words(lanes: usize, word: usize) -> u64 {
    lane_mask(lanes.saturating_sub(word * LANES))
}

/// Earliest `(lane, output)` over a signal-major multi-word difference
/// block where `diff(output, word)` has a bit set under the valid-lane
/// masks, in (lane, then output) order — the bit-parallel counterpart of
/// the scalar "first differing assignment, first differing output"
/// contract. `lane` is the global lane index (`word·64 + bit`). Shared
/// by the cover sweeps here and the `&dyn Simulator` sweeps in
/// `ambipla_core::sim`.
pub fn first_set_lane_words(
    diff: impl Fn(usize, usize) -> u64,
    n_outputs: usize,
    words: usize,
    valid: usize,
) -> Option<(usize, usize)> {
    for w in 0..words {
        let mask = lane_mask_words(valid, w);
        if mask == 0 {
            break;
        }
        let mut best: Option<(usize, usize)> = None;
        for j in 0..n_outputs {
            let d = diff(j, w) & mask;
            if d != 0 {
                let lane = d.trailing_zeros() as usize;
                if best.is_none_or(|(l, _)| lane < l) {
                    best = Some((lane, j));
                }
            }
        }
        if let Some((lane, j)) = best {
            return Some((w * LANES + lane, j));
        }
    }
    None
}

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The functions agreed on every checked assignment. `exhaustive` tells
    /// whether the whole space was enumerated (a proof) or sampled.
    Equivalent {
        /// True if every assignment was checked.
        exhaustive: bool,
    },
    /// The functions differ on `bits` at output `output`.
    Counterexample {
        /// Packed input assignment exhibiting the difference.
        bits: u64,
        /// Output index on which the two functions disagree.
        output: usize,
    },
}

impl Equivalence {
    /// True for either kind of `Equivalent`.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Check whether two covers implement the same multi-output function.
///
/// Exhaustive for up to [`EXHAUSTIVE_LIMIT`] inputs; beyond that a
/// deterministic pseudo-random sample plus structured corner patterns is
/// used (so a result of `Equivalent { exhaustive: false }` is strong evidence
/// but not proof).
///
/// # Panics
///
/// Panics if the arities of `a` and `b` differ, or if `n_inputs > 64`.
pub fn check_equivalent(a: &Cover, b: &Cover) -> Equivalence {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    let n = a.n_inputs();
    let o = a.n_outputs();
    assert!(n <= 64, "evaluation supports at most 64 inputs");

    // All buffers are allocated once per sweep and reused across blocks.
    let words = sweep_words(n);
    let mut inputs = vec![0u64; n * words];
    let mut va = vec![0u64; o * words];
    let mut vb = vec![0u64; o * words];
    let step = (words * LANES) as u64;

    if n <= EXHAUSTIVE_LIMIT {
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            exhaustive_words(base, n, words, &mut inputs);
            a.eval_words(&inputs, &mut va, words);
            b.eval_words(&inputs, &mut vb, words);
            let valid = (total - base).min(step) as usize;
            let diff = |j: usize, w: usize| va[j * words + w] ^ vb[j * words + w];
            if let Some((lane, output)) = first_set_lane_words(diff, o, words, valid) {
                return Equivalence::Counterexample {
                    bits: base + lane as u64,
                    output,
                };
            }
            base += step;
        }
        return Equivalence::Equivalent { exhaustive: true };
    }

    for chunk in sample_assignments(n).chunks(words * LANES) {
        // A partial tail chunk only pays for the lane words it needs.
        let words = chunk.len().div_ceil(LANES);
        let (inputs, va, vb) = (
            &mut inputs[..n * words],
            &mut va[..o * words],
            &mut vb[..o * words],
        );
        pack_vectors_words(chunk, n, words, inputs);
        a.eval_words(inputs, va, words);
        b.eval_words(inputs, vb, words);
        let diff = |j: usize, w: usize| va[j * words + w] ^ vb[j * words + w];
        if let Some((lane, output)) = first_set_lane_words(diff, o, words, chunk.len()) {
            return Equivalence::Counterexample {
                bits: chunk[lane],
                output,
            };
        }
    }
    Equivalence::Equivalent { exhaustive: false }
}

/// Lane words per sweep step for an `n`-input space: [`SWEEP_WORDS`],
/// but never more than the whole space needs. Shared by the cover sweeps
/// here and the `&dyn Simulator` sweeps in `ambipla_core::sim`.
pub fn sweep_words(n: usize) -> usize {
    if n >= 64 {
        return SWEEP_WORDS;
    }
    SWEEP_WORDS.min(((1u64 << n) as usize).div_ceil(LANES))
}

/// Check that `f` lies between `on` and `on ∪ dc` (the contract of
/// minimization with don't-cares): every ON-minterm stays covered, and `f`
/// asserts nothing outside ON ∪ DC.
///
/// Returns the first violating `(bits, output)` if any.
pub fn check_implements(on: &Cover, dc: &Cover, f: &Cover) -> Option<(u64, usize)> {
    assert_eq!(on.n_inputs(), f.n_inputs(), "input arity mismatch");
    assert_eq!(on.n_outputs(), f.n_outputs(), "output arity mismatch");
    assert_eq!(on.n_inputs(), dc.n_inputs(), "dc input arity mismatch");
    let n = on.n_inputs();
    let o = on.n_outputs();
    assert!(n <= 64, "evaluation supports at most 64 inputs");

    // All buffers are allocated once per sweep and reused across blocks.
    let words = sweep_words(n);
    let mut inputs = vec![0u64; n * words];
    let mut von = vec![0u64; o * words];
    let mut vdc = vec![0u64; o * words];
    let mut vf = vec![0u64; o * words];
    let step = (words * LANES) as u64;
    // Per-lane violation: an ON-minterm `f` lost, or an OFF-minterm `f`
    // asserts (outside ON ∪ DC).
    macro_rules! violation {
        () => {
            |j: usize, w: usize| {
                let (von, vdc, vf) = (von[j * words + w], vdc[j * words + w], vf[j * words + w]);
                (von & !vf) | (vf & !von & !vdc)
            }
        };
    }

    if n <= EXHAUSTIVE_LIMIT {
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            exhaustive_words(base, n, words, &mut inputs);
            on.eval_words(&inputs, &mut von, words);
            dc.eval_words(&inputs, &mut vdc, words);
            f.eval_words(&inputs, &mut vf, words);
            let valid = (total - base).min(step) as usize;
            if let Some((lane, output)) = first_set_lane_words(violation!(), o, words, valid) {
                return Some((base + lane as u64, output));
            }
            base += step;
        }
        return None;
    }
    for chunk in sample_assignments(n).chunks(words * LANES) {
        // A partial tail chunk only pays for the lane words it needs.
        let words = chunk.len().div_ceil(LANES);
        let inputs = &mut inputs[..n * words];
        pack_vectors_words(chunk, n, words, inputs);
        on.eval_words(inputs, &mut von[..o * words], words);
        dc.eval_words(inputs, &mut vdc[..o * words], words);
        f.eval_words(inputs, &mut vf[..o * words], words);
        if let Some((lane, output)) = first_set_lane_words(violation!(), o, words, chunk.len()) {
            return Some((chunk[lane], output));
        }
    }
    None
}

/// Panic with a readable message if two covers are not equivalent.
/// Intended for tests.
///
/// # Panics
///
/// Panics on the first differing assignment.
pub fn assert_equivalent(a: &Cover, b: &Cover) {
    if let Equivalence::Counterexample { bits, output } = check_equivalent(a, b) {
        panic!(
            "covers differ at input bits {bits:0width$b}, output {output}\nA = {a:?}\nB = {b:?}",
            width = a.n_inputs()
        );
    }
}

/// Deterministic sample of assignments for functions too wide to sweep
/// exhaustively: corners, walking ones/zeros, and an xorshift stream. The
/// canonical sampling space for every wide-function check in the
/// workspace — simulators beyond [`EXHAUSTIVE_LIMIT`] inputs (e.g.
/// `GnorPla::implements`) sample exactly this list so all "sampled
/// equivalence" verdicts refer to the same assignments.
pub fn sample_assignments(n: usize) -> Vec<u64> {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut v = Vec::with_capacity(SAMPLES + 2 * n + 2);
    v.push(0);
    v.push(mask);
    for i in 0..n {
        v.push(1u64 << i); // walking one
        v.push(mask ^ (1u64 << i)); // walking zero
    }
    let mut x = 0x243f6a8885a308d3u64; // deterministic seed (pi digits)
    for _ in 0..SAMPLES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x & mask);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn identical_covers_are_equivalent() {
        let f = cover("10- 1\n0-1 1", 3, 1);
        assert!(check_equivalent(&f, &f).is_equivalent());
    }

    #[test]
    fn syntactically_different_equivalents() {
        // x0 = (x0 & x1) | (x0 & !x1)
        let a = cover("1- 1", 2, 1);
        let b = cover("11 1\n10 1", 2, 1);
        assert_eq!(
            check_equivalent(&a, &b),
            Equivalence::Equivalent { exhaustive: true }
        );
    }

    #[test]
    fn counterexample_is_reported() {
        let a = cover("1- 1", 2, 1);
        let b = cover("11 1", 2, 1);
        match check_equivalent(&a, &b) {
            Equivalence::Counterexample { bits, output } => {
                assert_eq!(output, 0);
                assert_eq!(bits, 0b01); // x0=1, x1=0 distinguishes them
            }
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn multi_output_difference_names_the_output() {
        let a = cover("1- 11", 2, 2);
        let b = cover("1- 10\n1- 01", 2, 2);
        assert!(check_equivalent(&a, &b).is_equivalent());
        let c = cover("1- 10", 2, 2);
        match check_equivalent(&a, &c) {
            Equivalence::Counterexample { output, .. } => assert_eq!(output, 1),
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn implements_accepts_dc_freedom() {
        let on = cover("00 1", 2, 1);
        let dc = cover("01 1", 2, 1);
        let f = cover("0- 1", 2, 1); // uses the DC minterm
        assert_eq!(check_implements(&on, &dc, &f), None);
    }

    #[test]
    fn implements_rejects_off_minterms() {
        let on = cover("00 1", 2, 1);
        let dc = Cover::new(2, 1);
        let f = cover("0- 1", 2, 1); // also covers 01 which is OFF
        assert_eq!(check_implements(&on, &dc, &f), Some((0b10, 0)));
    }

    #[test]
    fn implements_rejects_lost_on_minterms() {
        let on = cover("0- 1", 2, 1);
        let dc = Cover::new(2, 1);
        let f = cover("00 1", 2, 1);
        assert!(check_implements(&on, &dc, &f).is_some());
    }

    #[test]
    fn sampled_equivalence_on_wide_functions() {
        // 24 inputs forces the sampled path.
        let mut a = Cover::new(24, 1);
        let mut b = Cover::new(24, 1);
        let mut c1 = Cube::universe(24, 1);
        c1.set_input(3, crate::cube::Tri::One);
        a.push(c1.clone());
        b.push(c1.clone());
        // b gets a redundant contained cube.
        let mut c2 = c1.clone();
        c2.set_input(7, crate::cube::Tri::Zero);
        b.push(c2);
        match check_equivalent(&a, &b) {
            Equivalence::Equivalent { exhaustive } => assert!(!exhaustive),
            e => panic!("expected equivalence, got {e:?}"),
        }
    }

    #[test]
    fn lane_mask_covers_exactly_the_valid_lanes() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(5), 0b1_1111);
        assert_eq!(lane_mask(63), !0 >> 1);
        assert_eq!(lane_mask(64), !0);
        assert_eq!(lane_mask(100), !0);
    }

    #[test]
    fn partial_blocks_are_safe_under_lane_mask() {
        // Regression: eval_batch on a partial block computes *something* in
        // the unused lanes (the evaluation of whatever garbage those input
        // lanes hold). Masking with lane_mask(valid) must make the result
        // independent of that garbage.
        let f = cover("10- 1\n0-1 1", 3, 1);
        let vectors = [0b001u64, 0b101, 0b110];
        let valid = vectors.len();
        let clean = pack_vectors(&vectors, 3);
        // Same three vectors, but the 61 unused lanes of every input word
        // are filled with garbage instead of zeros.
        let garbage: Vec<u64> = clean
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                w | (0xdead_beef_cafe_f00du64.rotate_left(i as u32 * 7) & !lane_mask(valid))
            })
            .collect();
        let out_clean = f.eval_batch(&clean);
        let out_garbage = f.eval_batch(&garbage);
        // Unmasked, the garbage lanes generally differ...
        // ...but under the mask the valid lanes are identical.
        let mask = lane_mask(valid);
        for (a, b) in out_clean.iter().zip(&out_garbage) {
            assert_eq!(a & mask, b & mask, "masked lanes must agree");
        }
        for (lane, &bits) in vectors.iter().enumerate() {
            assert_eq!(
                out_garbage[0] >> lane & 1 == 1,
                f.eval_bits(bits)[0],
                "lane {lane}"
            );
        }
    }

    #[test]
    fn multi_word_partial_blocks_are_safe_under_lane_mask_words() {
        // The multi-word generalization of the garbage-lane regression:
        // 130 vectors fill 2 lane words plus 2 lanes of a third; filling
        // the 62 unused tail lanes (and nothing else) with garbage must
        // not change any masked lane of any output word.
        let f = cover("10- 1\n0-1 1", 3, 1);
        let vectors: Vec<u64> = (0..130u64).map(|i| i % 8).collect();
        let words = vectors.len().div_ceil(LANES);
        assert_eq!(words, 3);
        let mut clean = vec![0u64; 3 * words];
        pack_vectors_words(&vectors, 3, words, &mut clean);
        let mut garbage = clean.clone();
        for i in 0..3 {
            for w in 0..words {
                garbage[i * words + w] |= 0xdead_beef_cafe_f00du64
                    .rotate_left((i * words + w) as u32 * 7)
                    & !lane_mask_words(vectors.len(), w);
            }
        }
        let mut out_clean = vec![0u64; words];
        let mut out_garbage = vec![0u64; words];
        f.eval_words(&clean, &mut out_clean, words);
        f.eval_words(&garbage, &mut out_garbage, words);
        for w in 0..words {
            let mask = lane_mask_words(vectors.len(), w);
            assert_eq!(
                out_clean[w] & mask,
                out_garbage[w] & mask,
                "masked lanes of word {w} must agree"
            );
        }
        for (lane, &bits) in vectors.iter().enumerate() {
            assert_eq!(
                unpack_lane_words(&out_garbage, lane, words),
                f.eval_bits(bits),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn sampled_counterexample_found_by_walking_patterns() {
        let mut a = Cover::new(24, 1);
        let b = Cover::new(24, 1);
        let mut c = Cube::universe(24, 1);
        c.set_input(23, crate::cube::Tri::One);
        a.push(c);
        assert!(!check_equivalent(&a, &b).is_equivalent());
    }
}
