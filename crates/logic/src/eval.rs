//! Functional evaluation and equivalence checking.
//!
//! Every transformation in this workspace (ESPRESSO passes, phase
//! optimization, GNOR-PLA mapping, fault repair) is validated against these
//! checkers: exhaustive up to [`EXHAUSTIVE_LIMIT`] inputs, deterministic
//! stratified sampling beyond.

use crate::cover::Cover;

/// Maximum input count for exhaustive equivalence checking (2^20 ≈ 1M
/// assignments per output pair).
pub const EXHAUSTIVE_LIMIT: usize = 20;

/// Number of sampled assignments used beyond the exhaustive limit.
const SAMPLES: usize = 1 << 14;

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The functions agreed on every checked assignment. `exhaustive` tells
    /// whether the whole space was enumerated (a proof) or sampled.
    Equivalent {
        /// True if every assignment was checked.
        exhaustive: bool,
    },
    /// The functions differ on `bits` at output `output`.
    Counterexample {
        /// Packed input assignment exhibiting the difference.
        bits: u64,
        /// Output index on which the two functions disagree.
        output: usize,
    },
}

impl Equivalence {
    /// True for either kind of `Equivalent`.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Check whether two covers implement the same multi-output function.
///
/// Exhaustive for up to [`EXHAUSTIVE_LIMIT`] inputs; beyond that a
/// deterministic pseudo-random sample plus structured corner patterns is
/// used (so a result of `Equivalent { exhaustive: false }` is strong evidence
/// but not proof).
///
/// # Panics
///
/// Panics if the arities of `a` and `b` differ, or if `n_inputs > 64`.
pub fn check_equivalent(a: &Cover, b: &Cover) -> Equivalence {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    let n = a.n_inputs();
    assert!(n <= 64, "evaluation supports at most 64 inputs");

    if n <= EXHAUSTIVE_LIMIT {
        for bits in 0..(1u64 << n) {
            if let Some(j) = first_difference(a, b, bits) {
                return Equivalence::Counterexample { bits, output: j };
            }
        }
        return Equivalence::Equivalent { exhaustive: true };
    }

    for bits in sample_assignments(n) {
        if let Some(j) = first_difference(a, b, bits) {
            return Equivalence::Counterexample { bits, output: j };
        }
    }
    Equivalence::Equivalent { exhaustive: false }
}

/// Check that `f` lies between `on` and `on ∪ dc` (the contract of
/// minimization with don't-cares): every ON-minterm stays covered, and `f`
/// asserts nothing outside ON ∪ DC.
///
/// Returns the first violating `(bits, output)` if any.
pub fn check_implements(on: &Cover, dc: &Cover, f: &Cover) -> Option<(u64, usize)> {
    assert_eq!(on.n_inputs(), f.n_inputs(), "input arity mismatch");
    assert_eq!(on.n_outputs(), f.n_outputs(), "output arity mismatch");
    let n = on.n_inputs();
    assert!(n <= 64, "evaluation supports at most 64 inputs");
    let space: Box<dyn Iterator<Item = u64>> = if n <= EXHAUSTIVE_LIMIT {
        Box::new(0..(1u64 << n))
    } else {
        Box::new(sample_assignments(n).into_iter())
    };
    for bits in space {
        let von = on.eval_bits(bits);
        let vdc = dc.eval_bits(bits);
        let vf = f.eval_bits(bits);
        for j in 0..on.n_outputs() {
            if von[j] && !vf[j] {
                return Some((bits, j)); // lost an ON-minterm
            }
            if vf[j] && !von[j] && !vdc[j] {
                return Some((bits, j)); // asserted an OFF-minterm
            }
        }
    }
    None
}

/// Panic with a readable message if two covers are not equivalent.
/// Intended for tests.
///
/// # Panics
///
/// Panics on the first differing assignment.
pub fn assert_equivalent(a: &Cover, b: &Cover) {
    if let Equivalence::Counterexample { bits, output } = check_equivalent(a, b) {
        panic!(
            "covers differ at input bits {bits:0width$b}, output {output}\nA = {a:?}\nB = {b:?}",
            width = a.n_inputs()
        );
    }
}

fn first_difference(a: &Cover, b: &Cover, bits: u64) -> Option<usize> {
    let va = a.eval_bits(bits);
    let vb = b.eval_bits(bits);
    (0..va.len()).find(|&j| va[j] != vb[j])
}

/// Deterministic sample of assignments: corners, walking ones/zeros, and an
/// xorshift stream.
fn sample_assignments(n: usize) -> Vec<u64> {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut v = Vec::with_capacity(SAMPLES + 2 * n + 2);
    v.push(0);
    v.push(mask);
    for i in 0..n {
        v.push(1u64 << i); // walking one
        v.push(mask ^ (1u64 << i)); // walking zero
    }
    let mut x = 0x243f6a8885a308d3u64; // deterministic seed (pi digits)
    for _ in 0..SAMPLES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x & mask);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn identical_covers_are_equivalent() {
        let f = cover("10- 1\n0-1 1", 3, 1);
        assert!(check_equivalent(&f, &f).is_equivalent());
    }

    #[test]
    fn syntactically_different_equivalents() {
        // x0 = (x0 & x1) | (x0 & !x1)
        let a = cover("1- 1", 2, 1);
        let b = cover("11 1\n10 1", 2, 1);
        assert_eq!(
            check_equivalent(&a, &b),
            Equivalence::Equivalent { exhaustive: true }
        );
    }

    #[test]
    fn counterexample_is_reported() {
        let a = cover("1- 1", 2, 1);
        let b = cover("11 1", 2, 1);
        match check_equivalent(&a, &b) {
            Equivalence::Counterexample { bits, output } => {
                assert_eq!(output, 0);
                assert_eq!(bits, 0b01); // x0=1, x1=0 distinguishes them
            }
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn multi_output_difference_names_the_output() {
        let a = cover("1- 11", 2, 2);
        let b = cover("1- 10\n1- 01", 2, 2);
        assert!(check_equivalent(&a, &b).is_equivalent());
        let c = cover("1- 10", 2, 2);
        match check_equivalent(&a, &c) {
            Equivalence::Counterexample { output, .. } => assert_eq!(output, 1),
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn implements_accepts_dc_freedom() {
        let on = cover("00 1", 2, 1);
        let dc = cover("01 1", 2, 1);
        let f = cover("0- 1", 2, 1); // uses the DC minterm
        assert_eq!(check_implements(&on, &dc, &f), None);
    }

    #[test]
    fn implements_rejects_off_minterms() {
        let on = cover("00 1", 2, 1);
        let dc = Cover::new(2, 1);
        let f = cover("0- 1", 2, 1); // also covers 01 which is OFF
        assert_eq!(check_implements(&on, &dc, &f), Some((0b10, 0)));
    }

    #[test]
    fn implements_rejects_lost_on_minterms() {
        let on = cover("0- 1", 2, 1);
        let dc = Cover::new(2, 1);
        let f = cover("00 1", 2, 1);
        assert!(check_implements(&on, &dc, &f).is_some());
    }

    #[test]
    fn sampled_equivalence_on_wide_functions() {
        // 24 inputs forces the sampled path.
        let mut a = Cover::new(24, 1);
        let mut b = Cover::new(24, 1);
        let mut c1 = Cube::universe(24, 1);
        c1.set_input(3, crate::cube::Tri::One);
        a.push(c1.clone());
        b.push(c1.clone());
        // b gets a redundant contained cube.
        let mut c2 = c1.clone();
        c2.set_input(7, crate::cube::Tri::Zero);
        b.push(c2);
        match check_equivalent(&a, &b) {
            Equivalence::Equivalent { exhaustive } => assert!(!exhaustive),
            e => panic!("expected equivalence, got {e:?}"),
        }
    }

    #[test]
    fn sampled_counterexample_found_by_walking_patterns() {
        let mut a = Cover::new(24, 1);
        let b = Cover::new(24, 1);
        let mut c = Cube::universe(24, 1);
        c.set_input(23, crate::cube::Tri::One);
        a.push(c);
        assert!(!check_equivalent(&a, &b).is_equivalent());
    }
}
