//! Two-level logic substrate for the ambipolar-CNFET PLA reproduction.
//!
//! This crate is a from-scratch reimplementation of the classical two-level
//! logic-minimization toolbox that the DAC 2008 paper leans on (ESPRESSO and
//! the MCNC `.pla` exchange format), built on the positional-cube ("bit-pair")
//! representation used by the original UC Berkeley tools:
//!
//! * [`Cube`] — a product term over `n` binary inputs with an attached
//!   multi-output part, packed two bits per input variable,
//! * [`Cover`] — a set of cubes implementing a multi-output Boolean function,
//! * [`urp`] — the Unate Recursive Paradigm: tautology checking and
//!   complementation,
//! * [`mod@espresso`] — the EXPAND / IRREDUNDANT / REDUCE minimization loop,
//! * [`pla`] — reader/writer for the espresso `.pla` format so that real MCNC
//!   benchmark files can be dropped in unchanged,
//! * [`eval`] — fast functional evaluation and (exhaustive or sampled)
//!   equivalence checking used to validate every transformation.
//!
//! # Example
//!
//! ```
//! use logic::{Cover, Cube, Tri};
//!
//! // f(a, b) = a XOR b as a two-cube cover.
//! let mut cover = Cover::new(2, 1);
//! cover.push(Cube::from_tris(&[Tri::One, Tri::Zero], &[true]));
//! cover.push(Cube::from_tris(&[Tri::Zero, Tri::One], &[true]));
//! assert!(cover.eval_bits(0b01)[0]);
//! assert!(!cover.eval_bits(0b11)[0]);
//! ```

pub mod bdd;
pub mod cover;
pub mod cube;
pub mod espresso;
pub mod eval;
pub mod exact;
pub mod kmap;
pub mod ops;
pub mod par;
pub mod pla;
pub mod tt;
pub mod urp;

pub use bdd::{bdd_equivalent, Bdd};
pub use cover::Cover;
pub use cube::{Cube, Tri};
pub use espresso::{
    espresso, espresso_traced, espresso_with_dc, espresso_with_dc_traced, relatively_essential,
    EspressoStats, MinimizeTrace, Pass, PassSample,
};
pub use eval::{check_equivalent, Equivalence};
pub use exact::exact_minimize;
pub use ops::{disjoint_cover, intersect, minterm_count, sharp};
pub use pla::{parse_pla, write_pla, ParsePlaError, Pla, PlaType};
pub use tt::TruthTable;
pub use urp::UrpContext;
