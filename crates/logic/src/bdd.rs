//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! A small hash-consed BDD package used for **complete** equivalence
//! checking where exhaustive enumeration stops scaling (the `eval` module
//! samples beyond 20 inputs; BDDs prove). Supports the operations the
//! toolchain needs: build from a [`Cover`], boolean `apply`, negation,
//! satisfiability/tautology tests and model counting.
//!
//! Variable order is the natural input order — good enough for PLA covers,
//! which are shallow; no dynamic reordering.

use crate::cover::Cover;
use crate::cube::Tri;
use std::collections::HashMap;

/// Node reference: index into the manager's node table. `0` and `1` are
/// the terminal FALSE/TRUE nodes.
pub type Ref = u32;

/// Terminal FALSE.
pub const ZERO: Ref = 0;
/// Terminal TRUE.
pub const ONE: Ref = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A BDD manager: node table, unique table, and operation cache.
///
/// # Example
///
/// ```
/// use logic::bdd::Bdd;
/// use logic::Cover;
///
/// let mut bdd = Bdd::new(2);
/// let f = bdd.from_cover(&Cover::parse("10 1\n01 1", 2, 1).unwrap(), 0);
/// let x0 = bdd.var(0);
/// let x1 = bdd.var(1);
/// let xor = bdd.xor(x0, x1);
/// assert_eq!(f, xor); // hash-consing makes equivalence a pointer check
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    n_vars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    and_cache: HashMap<(Ref, Ref), Ref>,
    or_cache: HashMap<(Ref, Ref), Ref>,
    not_cache: HashMap<Ref, Ref>,
}

impl Bdd {
    /// A manager over `n_vars` variables.
    pub fn new(n_vars: usize) -> Bdd {
        Bdd {
            n_vars,
            // Terminals occupy slots 0 and 1 with a sentinel var.
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: ZERO,
                    hi: ZERO,
                },
                Node {
                    var: u32::MAX,
                    lo: ONE,
                    hi: ONE,
                },
            ],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Live node count (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = self.nodes.len() as Ref;
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The function `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_vars`.
    pub fn var(&mut self, i: usize) -> Ref {
        assert!(i < self.n_vars, "variable out of range");
        self.mk(i as u32, ZERO, ONE)
    }

    /// The function `x̄_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_vars`.
    pub fn nvar(&mut self, i: usize) -> Ref {
        assert!(i < self.n_vars, "variable out of range");
        self.mk(i as u32, ONE, ZERO)
    }

    /// Conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        if a == ZERO || b == ZERO {
            return ZERO;
        }
        if a == ONE {
            return b;
        }
        if b == ONE {
            return a;
        }
        if a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.and_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.nodes[a as usize].var, self.nodes[b as usize].var);
        let v = va.min(vb);
        let (a_lo, a_hi) = self.cofactors(a, v);
        let (b_lo, b_hi) = self.cofactors(b, v);
        let lo = self.and(a_lo, b_lo);
        let hi = self.and(a_hi, b_hi);
        let r = self.mk(v, lo, hi);
        self.and_cache.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        if a == ONE || b == ONE {
            return ONE;
        }
        if a == ZERO {
            return b;
        }
        if b == ZERO {
            return a;
        }
        if a == b {
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.or_cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.nodes[a as usize].var, self.nodes[b as usize].var);
        let v = va.min(vb);
        let (a_lo, a_hi) = self.cofactors(a, v);
        let (b_lo, b_hi) = self.cofactors(b, v);
        let lo = self.or(a_lo, b_lo);
        let hi = self.or(a_hi, b_hi);
        let r = self.mk(v, lo, hi);
        self.or_cache.insert(key, r);
        r
    }

    /// Negation.
    pub fn not(&mut self, a: Ref) -> Ref {
        match a {
            ZERO => ONE,
            ONE => ZERO,
            _ => {
                if let Some(&r) = self.not_cache.get(&a) {
                    return r;
                }
                let n = self.nodes[a as usize];
                let lo = self.not(n.lo);
                let hi = self.not(n.hi);
                let r = self.mk(n.var, lo, hi);
                self.not_cache.insert(a, r);
                r
            }
        }
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        let nb = self.not(b);
        let na = self.not(a);
        let t1 = self.and(a, nb);
        let t2 = self.and(na, b);
        self.or(t1, t2)
    }

    fn cofactors(&self, a: Ref, v: u32) -> (Ref, Ref) {
        let n = self.nodes[a as usize];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (a, a)
        }
    }

    /// Build the BDD of output `j` of a cover.
    ///
    /// # Panics
    ///
    /// Panics if the cover's input count differs from the manager's, or
    /// `j` is out of range.
    pub fn from_cover(&mut self, cover: &Cover, j: usize) -> Ref {
        assert_eq!(cover.n_inputs(), self.n_vars, "variable count mismatch");
        assert!(j < cover.n_outputs(), "output out of range");
        let mut f = ZERO;
        for cube in cover.iter() {
            if !cube.has_output(j) {
                continue;
            }
            let mut term = ONE;
            // AND literals from the highest variable down so intermediate
            // BDDs stay small under the natural order.
            for i in (0..self.n_vars).rev() {
                let lit = match cube.input(i) {
                    Tri::One => self.var(i),
                    Tri::Zero => self.nvar(i),
                    Tri::DontCare => continue,
                };
                term = self.and(term, lit);
            }
            f = self.or(f, term);
        }
        f
    }

    /// Evaluate a BDD on a packed assignment.
    pub fn eval(&self, mut f: Ref, bits: u64) -> bool {
        loop {
            match f {
                ZERO => return false,
                ONE => return true,
                _ => {
                    let n = self.nodes[f as usize];
                    f = if bits >> n.var & 1 == 1 { n.hi } else { n.lo };
                }
            }
        }
    }

    /// Number of satisfying assignments over all `n_vars` variables.
    pub fn sat_count(&self, f: Ref) -> u64 {
        let mut memo: HashMap<Ref, u64> = HashMap::new();
        self.sat_rec(f, &mut memo) << self.gap(f)
    }

    fn gap(&self, f: Ref) -> u32 {
        match f {
            ZERO | ONE => self.n_vars as u32,
            _ => self.nodes[f as usize].var,
        }
    }

    fn sat_rec(&self, f: Ref, memo: &mut HashMap<Ref, u64>) -> u64 {
        match f {
            ZERO => 0,
            ONE => 1,
            _ => {
                if let Some(&c) = memo.get(&f) {
                    return c;
                }
                let n = self.nodes[f as usize];
                let lo = self.sat_rec(n.lo, memo) << (self.gap(n.lo) - n.var - 1);
                let hi = self.sat_rec(n.hi, memo) << (self.gap(n.hi) - n.var - 1);
                let c = lo + hi;
                memo.insert(f, c);
                c
            }
        }
    }

    /// True if `f` is the constant TRUE (tautology).
    pub fn is_tautology(&self, f: Ref) -> bool {
        f == ONE
    }

    /// Number of nodes reachable from `f` (the size of the function's own
    /// diagram; the manager also retains dead intermediates — there is no
    /// garbage collection).
    pub fn reachable_count(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) || r == ZERO || r == ONE {
                continue;
            }
            let n = self.nodes[r as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }
}

/// Prove or refute multi-output equivalence of two covers with BDDs
/// (complete, unlike the sampled checker for wide functions).
///
/// # Panics
///
/// Panics if the arities differ.
pub fn bdd_equivalent(a: &Cover, b: &Cover) -> bool {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    let mut bdd = Bdd::new(a.n_inputs());
    (0..a.n_outputs()).all(|j| {
        let fa = bdd.from_cover(a, j);
        let fb = bdd.from_cover(b, j);
        fa == fb // canonical: equivalence is reference equality
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::espresso;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn terminals_and_vars() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        assert!(b.eval(x, 0b01));
        assert!(!b.eval(x, 0b10));
        let nx = b.nvar(0);
        assert!(!b.eval(nx, 0b01));
        let n = b.not(x);
        assert_eq!(n, nx, "canonical negation");
    }

    #[test]
    fn reduction_merges_equal_children() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let nx = b.not(x);
        assert_eq!(b.or(x, nx), ONE);
        assert_eq!(b.and(x, nx), ZERO);
    }

    #[test]
    fn from_cover_matches_eval() {
        let f = cover("1-0 1\n011 1", 3, 1);
        let mut b = Bdd::new(3);
        let r = b.from_cover(&f, 0);
        for bits in 0..8u64 {
            assert_eq!(b.eval(r, bits), f.eval_bits(bits)[0], "bits {bits:03b}");
        }
    }

    #[test]
    fn canonical_equivalence() {
        // Same function, different covers → same node.
        let a = cover("1- 1", 2, 1);
        let b_cover = cover("11 1\n10 1", 2, 1);
        assert!(bdd_equivalent(&a, &b_cover));
        let c = cover("11 1", 2, 1);
        assert!(!bdd_equivalent(&a, &c));
    }

    #[test]
    fn espresso_verified_by_bdd() {
        let f = cover("1-0 10\n011 01\n--1 11\n110 10", 3, 2);
        let (min, _) = espresso(&f);
        assert!(bdd_equivalent(&f, &min));
    }

    #[test]
    fn sat_count_matches_exhaustive() {
        for text in ["10 1\n01 1", "1-- 1\n-1- 1\n--1 1", "11- 1\n-11 1\n1-1 1"] {
            let ni = text
                .lines()
                .next()
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .len();
            let f = Cover::parse(text, ni, 1).unwrap();
            let mut b = Bdd::new(ni);
            let r = b.from_cover(&f, 0);
            let want = (0..(1u64 << ni)).filter(|&m| f.eval_bits(m)[0]).count() as u64;
            assert_eq!(b.sat_count(r), want, "{text}");
        }
    }

    #[test]
    fn wide_function_proved_not_sampled() {
        // 30 variables — far beyond exhaustive range. AND-chain vs itself
        // with a redundant cube.
        let n = 30;
        let mut base = String::new();
        for i in 0..n {
            base.push(if i < 15 { '1' } else { '-' });
        }
        let a = Cover::parse(&format!("{base} 1"), n, 1).unwrap();
        let mut two = format!("{base} 1\n");
        // Contained cube (adds one literal).
        let mut tight = base.clone();
        tight.replace_range(20..21, "0");
        two.push_str(&format!("{tight} 1"));
        let b_cover = Cover::parse(&two, n, 1).unwrap();
        assert!(bdd_equivalent(&a, &b_cover), "containment proved at n=30");
    }

    #[test]
    fn tautology_detection() {
        let f = cover("1- 1\n0- 1", 2, 1);
        let mut b = Bdd::new(2);
        let r = b.from_cover(&f, 0);
        assert!(b.is_tautology(r));
        assert_eq!(b.sat_count(r), 4);
    }

    #[test]
    fn xor_chain_node_growth_is_linear() {
        // XOR of n variables has 2n-1 internal nodes under any order.
        let n = 16;
        let mut b = Bdd::new(n);
        let mut f = ZERO;
        for i in 0..n {
            let x = b.var(i);
            f = b.xor(f, x);
        }
        // The final diagram is linear in n (terminals + 2 nodes/level),
        // even though the un-collected manager retains intermediates.
        assert!(
            b.reachable_count(f) <= 2 * n + 2,
            "reachable count {}",
            b.reachable_count(f)
        );
        assert_eq!(b.sat_count(f), 1u64 << (n - 1));
    }
}
