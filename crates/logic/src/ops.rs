//! Cover-level set algebra: intersection, sharp (difference) and disjoint
//! sharp.
//!
//! These are the remaining classical cube-calculus operations used by
//! synthesis flows on top of the URP primitives: `A ∩ B` distributes over
//! cubes, `A # B` (sharp) is computed cube-wise with the non-disjoint
//! sharp, and `A #d B` produces a disjoint cover of the difference —
//! useful for disjoint SOP forms and probability/activity computations.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};

/// Intersection of two single-output covers: every pairwise non-empty cube
/// intersection.
///
/// # Panics
///
/// Panics if arities differ.
pub fn intersect(a: &Cover, b: &Cover) -> Cover {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    let mut out = Cover::new(a.n_inputs(), a.n_outputs());
    for x in a.iter() {
        for y in b.iter() {
            let meet = x.intersect(y);
            if !meet.is_empty() {
                out.push(meet);
            }
        }
    }
    out.make_scc_minimal();
    out
}

/// Sharp of two cubes (`a # b`): a cover of the points of `a` not in `b`,
/// using the non-disjoint formulation (one cube per conflicting literal).
/// Outputs follow `a`.
pub fn cube_sharp(a: &Cube, b: &Cube) -> Cover {
    let n = a.n_inputs();
    let mut out = Cover::new(n, a.n_outputs());
    if !a.inputs_intersect(b) {
        out.push(a.clone());
        return out;
    }
    for i in 0..n {
        let (av, bv) = (a.input(i), b.input(i));
        if bv == Tri::DontCare {
            continue;
        }
        // Points of `a` where variable i takes the value excluded by b.
        let flipped = match bv {
            Tri::One => Tri::Zero,
            Tri::Zero => Tri::One,
            Tri::DontCare => unreachable!(),
        };
        if av == Tri::DontCare {
            let mut c = a.clone();
            c.set_input(i, flipped);
            out.push(c);
        } else if av == flipped {
            // a is already entirely outside b on this variable — but then
            // inputs would not intersect; unreachable given the guard.
            out.push(a.clone());
            return out;
        }
    }
    out.make_scc_minimal();
    out
}

/// Sharp of two covers (`A # B`): the points of `A` not covered by `B`.
///
/// # Panics
///
/// Panics if arities differ.
pub fn sharp(a: &Cover, b: &Cover) -> Cover {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    let mut current: Vec<Cube> = a.cubes().to_vec();
    for bc in b.iter() {
        let mut next = Vec::new();
        for ac in &current {
            for piece in cube_sharp(ac, bc).iter() {
                next.push(piece.clone());
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    let mut out = Cover::from_cubes(a.n_inputs(), a.n_outputs(), current);
    out.make_scc_minimal();
    out
}

/// Disjoint sharp (`a #d b`): like [`cube_sharp`] but the produced cubes
/// are pairwise disjoint (each fixes the previously-split variables).
pub fn cube_disjoint_sharp(a: &Cube, b: &Cube) -> Cover {
    let n = a.n_inputs();
    let mut out = Cover::new(n, a.n_outputs());
    if !a.inputs_intersect(b) {
        out.push(a.clone());
        return out;
    }
    let mut prefix = a.clone();
    for i in 0..n {
        let (av, bv) = (a.input(i), b.input(i));
        if bv == Tri::DontCare || av != Tri::DontCare {
            continue;
        }
        let flipped = match bv {
            Tri::One => Tri::Zero,
            Tri::Zero => Tri::One,
            Tri::DontCare => unreachable!(),
        };
        let mut c = prefix.clone();
        c.set_input(i, flipped);
        out.push(c);
        // Subsequent pieces agree with b on this variable.
        prefix.set_input(i, bv);
    }
    out
}

/// A disjoint SOP cover of `a` (pairwise disjoint cubes, same function).
pub fn disjoint_cover(a: &Cover) -> Cover {
    let mut disjoint: Vec<Cube> = Vec::new();
    for cube in a.iter() {
        let mut pieces = vec![cube.clone()];
        for d in &disjoint {
            let mut next = Vec::new();
            for p in pieces {
                for q in cube_disjoint_sharp(&p, d).iter() {
                    next.push(q.clone());
                }
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        disjoint.extend(pieces);
    }
    Cover::from_cubes(a.n_inputs(), a.n_outputs(), disjoint)
}

/// Exact ON-set size of a single-output cover, via a disjoint cover
/// (sum of 2^free over disjoint cubes). Usable as a signal-probability
/// primitive.
///
/// # Panics
///
/// Panics if the cover is not single-output.
pub fn minterm_count(a: &Cover) -> u64 {
    assert_eq!(a.n_outputs(), 1, "minterm count is per output");
    let d = disjoint_cover(a);
    d.iter()
        .map(|c| 1u64 << (a.n_inputs() - c.literal_count()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize) -> Cover {
        Cover::parse(text, ni, 1).expect("parse cover")
    }

    fn check_pointwise(op: impl Fn(bool, bool) -> bool, a: &Cover, b: &Cover, r: &Cover, n: usize) {
        for bits in 0..(1u64 << n) {
            assert_eq!(
                r.eval_bits(bits)[0],
                op(a.eval_bits(bits)[0], b.eval_bits(bits)[0]),
                "bits {bits:b}"
            );
        }
    }

    #[test]
    fn intersection_is_pointwise_and() {
        let a = cover("1-- 1\n-1- 1", 3);
        let b = cover("--1 1\n0-- 1", 3);
        let r = intersect(&a, &b);
        check_pointwise(|x, y| x && y, &a, &b, &r, 3);
    }

    #[test]
    fn sharp_is_pointwise_and_not() {
        let a = cover("1-- 1\n-1- 1", 3);
        let b = cover("11- 1", 3);
        let r = sharp(&a, &b);
        check_pointwise(|x, y| x && !y, &a, &b, &r, 3);
    }

    #[test]
    fn sharp_with_disjoint_cover_is_identity() {
        let a = cover("11- 1", 3);
        let b = cover("00- 1", 3);
        let r = sharp(&a, &b);
        check_pointwise(|x, _| x, &a, &b, &r, 3);
    }

    #[test]
    fn sharp_with_superset_is_empty() {
        let a = cover("11- 1", 3);
        let b = cover("1-- 1", 3);
        assert!(sharp(&a, &b).is_empty());
    }

    #[test]
    fn disjoint_sharp_pieces_are_disjoint() {
        let a = Cube::universe(4, 1);
        let b = Cube::parse("1100 1", 4, 1).unwrap();
        let pieces = cube_disjoint_sharp(&a, &b);
        for (i, x) in pieces.iter().enumerate() {
            for y in pieces.cubes().iter().skip(i + 1) {
                assert!(!x.intersects(y), "{x} and {y} overlap");
            }
        }
        // Function check: pieces = a \ b.
        for bits in 0..16u64 {
            let in_pieces = pieces.eval_bits(bits)[0];
            let want = !b.covers_bits(bits);
            assert_eq!(in_pieces, want, "bits {bits:04b}");
        }
    }

    #[test]
    fn disjoint_cover_preserves_function_and_disjointness() {
        let a = cover("1-- 1\n-1- 1\n--1 1", 3);
        let d = disjoint_cover(&a);
        for bits in 0..8u64 {
            assert_eq!(d.eval_bits(bits)[0], a.eval_bits(bits)[0]);
        }
        for (i, x) in d.iter().enumerate() {
            for y in d.cubes().iter().skip(i + 1) {
                assert!(!x.intersects(y), "{x} and {y} overlap");
            }
        }
    }

    #[test]
    fn minterm_count_matches_exhaustive() {
        for text in ["1-- 1\n-1- 1\n--1 1", "10 1\n01 1", "11- 1\n-11 1\n1-1 1"] {
            let ni = text
                .lines()
                .next()
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .len();
            let a = Cover::parse(text, ni, 1).unwrap();
            let exhaustive = (0..(1u64 << ni)).filter(|&b| a.eval_bits(b)[0]).count() as u64;
            assert_eq!(minterm_count(&a), exhaustive, "{text}");
        }
    }

    #[test]
    fn empty_cover_has_no_minterms() {
        assert_eq!(minterm_count(&Cover::new(5, 1)), 0);
    }
}
