//! Reader/writer for the Berkeley/espresso `.pla` exchange format.
//!
//! Supports the directives used by the MCNC benchmark suite (`.i`, `.o`,
//! `.p`, `.ilb`, `.ob`, `.type`, `.e`/`.end`) and the `f`, `fd`, `fr`, `fdr`
//! logical types. This lets the original `max46`, `apla` and `t2` files (and
//! any other MCNC PLA) be dropped into the benchmark harness unchanged.

use crate::cover::Cover;
use crate::cube::{Cube, Tri};
use std::error::Error;
use std::fmt;

/// The logical interpretation of the output plane of a `.pla` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaType {
    /// `1` = ON; everything else unspecified (treated as OFF).
    F,
    /// `1` = ON, `-` = DC, `0` = no meaning (default for MCNC files).
    #[default]
    Fd,
    /// `1` = ON, `0` = OFF, `-` = no meaning.
    Fr,
    /// `1` = ON, `0` = OFF, `-` = DC.
    Fdr,
}

impl PlaType {
    fn parse(s: &str) -> Option<PlaType> {
        match s {
            "f" => Some(PlaType::F),
            "fd" => Some(PlaType::Fd),
            "fr" => Some(PlaType::Fr),
            "fdr" => Some(PlaType::Fdr),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            PlaType::F => "f",
            PlaType::Fd => "fd",
            PlaType::Fr => "fr",
            PlaType::Fdr => "fdr",
        }
    }
}

/// An in-memory `.pla` file: ON / DC / OFF covers plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Pla {
    /// ON-set cover.
    pub on: Cover,
    /// Don't-care cover (may be empty).
    pub dc: Cover,
    /// Explicit OFF-set cover (only populated for `fr`/`fdr` files).
    pub off: Cover,
    /// Output-plane semantics.
    pub pla_type: PlaType,
    /// Input labels from `.ilb`, if present.
    pub input_labels: Option<Vec<String>>,
    /// Output labels from `.ob`, if present.
    pub output_labels: Option<Vec<String>>,
}

impl Pla {
    /// Wrap an ON-set cover with no don't-cares.
    pub fn from_cover(on: Cover) -> Pla {
        let (ni, no) = (on.n_inputs(), on.n_outputs());
        Pla {
            on,
            dc: Cover::new(ni, no),
            off: Cover::new(ni, no),
            pla_type: PlaType::Fd,
            input_labels: None,
            output_labels: None,
        }
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.on.n_inputs()
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.on.n_outputs()
    }
}

/// Error parsing a `.pla` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePlaError {
    /// `.i`/`.o` directive missing before the first cube line.
    MissingHeader,
    /// A directive had a malformed argument.
    BadDirective {
        /// 1-based line number.
        line: usize,
        /// Directive text.
        directive: String,
    },
    /// A cube line had the wrong length or an invalid character.
    BadCube {
        /// 1-based line number.
        line: usize,
    },
    /// `.p` declared a different number of cubes than were present.
    ProductCountMismatch {
        /// Count from the `.p` directive.
        declared: usize,
        /// Number of cube lines actually parsed.
        found: usize,
    },
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePlaError::MissingHeader => {
                write!(f, "missing .i/.o header before first cube line")
            }
            ParsePlaError::BadDirective { line, directive } => {
                write!(f, "malformed directive `{directive}` on line {line}")
            }
            ParsePlaError::BadCube { line } => write!(f, "malformed cube on line {line}"),
            ParsePlaError::ProductCountMismatch { declared, found } => write!(
                f,
                "product count mismatch: .p declared {declared}, found {found}"
            ),
        }
    }
}

impl Error for ParsePlaError {}

/// Parse espresso `.pla` text.
///
/// # Errors
///
/// Returns [`ParsePlaError`] on missing headers, malformed directives or
/// cube lines, and `.p` count mismatches.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), logic::ParsePlaError> {
/// let pla = logic::parse_pla(
///     ".i 2\n.o 1\n.p 2\n10 1\n01 1\n.e\n",
/// )?;
/// assert_eq!(pla.on.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_pla(text: &str) -> Result<Pla, ParsePlaError> {
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut declared_p: Option<usize> = None;
    let mut pla_type = PlaType::default();
    let mut input_labels = None;
    let mut output_labels = None;
    let mut raw_cubes: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if s.is_empty() {
            continue;
        }
        if let Some(rest) = s.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("");
            let args: Vec<&str> = parts.collect();
            let bad = || ParsePlaError::BadDirective {
                line,
                directive: s.to_string(),
            };
            match key {
                "i" => ni = Some(args.first().and_then(|a| a.parse().ok()).ok_or_else(bad)?),
                "o" => no = Some(args.first().and_then(|a| a.parse().ok()).ok_or_else(bad)?),
                "p" => {
                    declared_p = Some(args.first().and_then(|a| a.parse().ok()).ok_or_else(bad)?)
                }
                "type" => {
                    pla_type = args
                        .first()
                        .and_then(|a| PlaType::parse(a))
                        .ok_or_else(bad)?
                }
                "ilb" => input_labels = Some(args.iter().map(|s| s.to_string()).collect()),
                "ob" => output_labels = Some(args.iter().map(|s| s.to_string()).collect()),
                "e" | "end" => break,
                // Directives we accept and ignore (common in MCNC files).
                "phase" | "pair" | "symbolic" | "kiss" | "label" => {}
                _ => return Err(bad()),
            }
        } else {
            raw_cubes.push((line, s.to_string()));
        }
    }

    let (ni, no) = match (ni, no) {
        (Some(i), Some(o)) => (i, o),
        _ => return Err(ParsePlaError::MissingHeader),
    };
    if let Some(p) = declared_p {
        if p != raw_cubes.len() {
            return Err(ParsePlaError::ProductCountMismatch {
                declared: p,
                found: raw_cubes.len(),
            });
        }
    }

    let mut on = Cover::new(ni, no);
    let mut dc = Cover::new(ni, no);
    let mut off = Cover::new(ni, no);
    for (line, s) in raw_cubes {
        let chars: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        if chars.len() != ni + no {
            return Err(ParsePlaError::BadCube { line });
        }
        let mut tris = Vec::with_capacity(ni);
        for &c in &chars[..ni] {
            tris.push(Tri::from_char(c).ok_or(ParsePlaError::BadCube { line })?);
        }
        let mut on_outs = vec![false; no];
        let mut dc_outs = vec![false; no];
        let mut off_outs = vec![false; no];
        for (j, &c) in chars[ni..].iter().enumerate() {
            match (c, pla_type) {
                ('1' | '4', _) => on_outs[j] = true,
                ('0', PlaType::Fr | PlaType::Fdr) => off_outs[j] = true,
                ('0' | '~', _) => {}
                ('-' | '2', PlaType::Fd | PlaType::Fdr) => dc_outs[j] = true,
                ('-' | '2' | '3', _) => {}
                _ => return Err(ParsePlaError::BadCube { line }),
            }
        }
        if on_outs.iter().any(|&b| b) {
            on.push(Cube::from_tris(&tris, &on_outs));
        }
        if dc_outs.iter().any(|&b| b) {
            dc.push(Cube::from_tris(&tris, &dc_outs));
        }
        if off_outs.iter().any(|&b| b) {
            off.push(Cube::from_tris(&tris, &off_outs));
        }
    }

    Ok(Pla {
        on,
        dc,
        off,
        pla_type,
        input_labels,
        output_labels,
    })
}

/// Serialize a [`Pla`] back to espresso `.pla` text.
///
/// ON cubes are written with `1` outputs and DC cubes with `-` outputs (type
/// `fd`); explicit OFF cubes are written with `0` outputs when the type
/// includes `r`. Output positions a cube does not assert are written as `0`
/// for `f`/`fd` files (where `0` carries no meaning) but as `~` for
/// `fr`/`fdr` files — there `0` would wrongly enroll the position in the
/// OFF-set, so `parse → write → parse` would not be a fixpoint.
pub fn write_pla(pla: &Pla) -> String {
    let mut s = String::new();
    s.push_str(&format!(".i {}\n.o {}\n", pla.n_inputs(), pla.n_outputs()));
    if let Some(labels) = &pla.input_labels {
        s.push_str(&format!(".ilb {}\n", labels.join(" ")));
    }
    if let Some(labels) = &pla.output_labels {
        s.push_str(&format!(".ob {}\n", labels.join(" ")));
    }
    s.push_str(&format!(".type {}\n", pla.pla_type.as_str()));
    let total = pla.on.len()
        + pla.dc.len()
        + if matches!(pla.pla_type, PlaType::Fr | PlaType::Fdr) {
            pla.off.len()
        } else {
            0
        };
    s.push_str(&format!(".p {total}\n"));
    let filler = if matches!(pla.pla_type, PlaType::Fr | PlaType::Fdr) {
        '~'
    } else {
        '0'
    };
    let emit = |s: &mut String, cover: &Cover, mark: char| {
        for c in cover.iter() {
            for i in 0..cover.n_inputs() {
                s.push(c.input(i).to_char());
            }
            s.push(' ');
            for j in 0..cover.n_outputs() {
                s.push(if c.has_output(j) { mark } else { filler });
            }
            s.push('\n');
        }
    };
    emit(&mut s, &pla.on, '1');
    if matches!(pla.pla_type, PlaType::Fd | PlaType::Fdr) {
        emit(&mut s, &pla.dc, '-');
    }
    if matches!(pla.pla_type, PlaType::Fr | PlaType::Fdr) {
        emit(&mut s, &pla.off, '0');
    }
    s.push_str(".e\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_file() {
        let pla = parse_pla(".i 2\n.o 1\n10 1\n01 1\n.e\n").unwrap();
        assert_eq!(pla.n_inputs(), 2);
        assert_eq!(pla.n_outputs(), 1);
        assert_eq!(pla.on.len(), 2);
        assert!(pla.dc.is_empty());
    }

    #[test]
    fn parse_with_labels_and_comments() {
        let text = "# a comment\n.i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 1\n1-0 11 # trailing\n.e\n";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.input_labels.as_deref().unwrap(), ["a", "b", "c"]);
        assert_eq!(pla.output_labels.as_deref().unwrap(), ["f", "g"]);
        assert_eq!(pla.on.len(), 1);
        assert_eq!(pla.on.cubes()[0].output_count(), 2);
    }

    #[test]
    fn fd_type_splits_on_and_dc() {
        let pla = parse_pla(".i 2\n.o 2\n.type fd\n11 1-\n00 -1\n").unwrap();
        assert_eq!(pla.on.len(), 2);
        assert_eq!(pla.dc.len(), 2);
        assert!(pla.on.cubes()[0].has_output(0));
        assert!(!pla.on.cubes()[0].has_output(1));
        assert!(pla.dc.cubes()[0].has_output(1));
    }

    #[test]
    fn fr_type_collects_off() {
        let pla = parse_pla(".i 2\n.o 1\n.type fr\n11 1\n00 0\n").unwrap();
        assert_eq!(pla.on.len(), 1);
        assert_eq!(pla.off.len(), 1);
        assert!(pla.dc.is_empty());
    }

    #[test]
    fn product_count_mismatch_detected() {
        let err = parse_pla(".i 2\n.o 1\n.p 3\n11 1\n.e\n").unwrap_err();
        assert_eq!(
            err,
            ParsePlaError::ProductCountMismatch {
                declared: 3,
                found: 1
            }
        );
    }

    #[test]
    fn missing_header_detected() {
        assert_eq!(
            parse_pla("11 1\n").unwrap_err(),
            ParsePlaError::MissingHeader
        );
    }

    #[test]
    fn bad_cube_reports_line() {
        let err = parse_pla(".i 2\n.o 1\n1X 1\n").unwrap_err();
        assert_eq!(err, ParsePlaError::BadCube { line: 3 });
    }

    #[test]
    fn roundtrip_preserves_function() {
        let text = ".i 3\n.o 2\n.type fd\n1-0 10\n011 01\n--- -1\n.e\n";
        let pla = parse_pla(text).unwrap();
        let back = parse_pla(&write_pla(&pla)).unwrap();
        assert_eq!(back.on, pla.on);
        assert_eq!(back.dc, pla.dc);
        for bits in 0..8u64 {
            assert_eq!(back.on.eval_bits(bits), pla.on.eval_bits(bits));
        }
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_pla(".i 2\n.o 1\n.bogus x\n11 1\n").unwrap_err();
        assert!(matches!(err, ParsePlaError::BadDirective { line: 3, .. }));
    }

    #[test]
    fn ignored_directives_pass() {
        let pla = parse_pla(".i 2\n.o 1\n.phase 1\n11 1\n.e\n").unwrap();
        assert_eq!(pla.on.len(), 1);
    }
}
