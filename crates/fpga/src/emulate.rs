//! The Table 2 emulation harness.
//!
//! Reproduces the paper's methodology: take one circuit; implement it on a
//! standard FPGA sized to be ~99 % full; then implement the *same* circuit
//! on the *same die* with half-area CLBs and without the complement rails
//! (the GNOR-PLA FPGA emulation); report occupancy and maximum frequency.

use crate::arch::{FpgaArch, FpgaFlavor};
use crate::circuit::Circuit;
use crate::place::place;
use crate::route::route;
use crate::timing::critical_path;

/// One row of the Table 2 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulationReport {
    /// Flavor this report describes.
    pub flavor: FpgaFlavor,
    /// Fraction of the die area occupied by CLBs.
    pub occupancy: f64,
    /// Maximum clock frequency, hertz.
    pub frequency: f64,
    /// Number of routed two-pin connections.
    pub routed_connections: usize,
    /// Total routed wirelength, channel segments.
    pub wirelength: usize,
    /// Channel segments loaded beyond capacity.
    pub overused_segments: usize,
}

impl EmulationReport {
    /// Frequency in megahertz (Table 2's unit).
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency / 1e6
    }

    /// Occupancy as a percentage (Table 2's unit).
    pub fn occupancy_percent(&self) -> f64 {
        self.occupancy * 100.0
    }
}

/// Run the full place-and-route flow for `circuit` on `arch` under
/// `flavor` and measure the Table 2 quantities.
///
/// # Panics
///
/// Panics if the circuit does not fit the die under `flavor`.
pub fn emulate(
    circuit: &Circuit,
    arch: &FpgaArch,
    flavor: FpgaFlavor,
    seed: u64,
) -> EmulationReport {
    let placement = place(circuit, arch, flavor, seed);
    let routing = route(circuit, &placement, arch);
    let timing = critical_path(circuit, &routing, arch);
    let occupancy = circuit.n_blocks() as f64 * flavor.clb_area() / arch.tiles() as f64;
    EmulationReport {
        flavor,
        occupancy,
        frequency: timing.frequency,
        routed_connections: routing.connections.len(),
        wirelength: routing.total_wirelength,
        overused_segments: routing.overused_segments,
    }
}

/// Run both flavors on the same circuit and die (the complete Table 2
/// experiment). Returns `(standard, cnfet)`.
pub fn table2(circuit: &Circuit, arch: &FpgaArch, seed: u64) -> (EmulationReport, EmulationReport) {
    (
        emulate(circuit, arch, FpgaFlavor::Standard, seed),
        emulate(circuit, arch, FpgaFlavor::CnfetPla, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> (EmulationReport, EmulationReport) {
        let circuit = Circuit::random(63, 3, 0.95, 11);
        let arch = FpgaArch::sized_for(63, 0.99);
        table2(&circuit, &arch, 11)
    }

    #[test]
    fn standard_die_is_nearly_full() {
        let (std_r, _) = run();
        assert!(
            std_r.occupancy > 0.95,
            "standard occupancy {:.1}%",
            std_r.occupancy_percent()
        );
    }

    #[test]
    fn cnfet_occupancy_is_about_half() {
        let (std_r, cn_r) = run();
        let ratio = cn_r.occupancy / std_r.occupancy;
        assert!(
            (ratio - 0.5).abs() < 1e-9,
            "half-area CLBs halve the occupied area, got ratio {ratio}"
        );
    }

    #[test]
    fn cnfet_is_faster_with_fewer_signals() {
        let (std_r, cn_r) = run();
        assert!(cn_r.routed_connections < std_r.routed_connections);
        assert!(cn_r.wirelength < std_r.wirelength);
        assert!(
            cn_r.frequency > std_r.frequency,
            "CNFET {:.0} MHz <= standard {:.0} MHz",
            cn_r.frequency_mhz(),
            std_r.frequency_mhz()
        );
    }

    #[test]
    fn speedup_is_in_the_paper_ballpark() {
        // Table 2 reports 349/154 ≈ 2.27×. The shape requirement: a clear
        // speedup, at least 1.3× and at most ~4×.
        let (std_r, cn_r) = run();
        let speedup = cn_r.frequency / std_r.frequency;
        assert!(speedup > 1.3, "speedup only {speedup:.2}x");
        assert!(speedup < 4.0, "speedup implausibly high: {speedup:.2}x");
    }

    #[test]
    fn emulation_is_deterministic() {
        let circuit = Circuit::random(40, 3, 0.95, 2);
        let arch = FpgaArch::sized_for(40, 0.99);
        let a = emulate(&circuit, &arch, FpgaFlavor::Standard, 5);
        let b = emulate(&circuit, &arch, FpgaFlavor::Standard, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_relief_shows_in_overuse() {
        let (std_r, cn_r) = run();
        assert!(
            cn_r.overused_segments <= std_r.overused_segments,
            "dropping half the signals cannot increase overuse"
        );
    }
}
