//! Parameter sweeps around the Table 2 operating point.
//!
//! Table 2 is a single pair of measurements; these sweeps show *why* the
//! numbers move — frequency vs. routing-channel capacity (congestion
//! relief) and vs. die utilization (the "standard one is full" condition).

use crate::arch::{FpgaArch, FpgaFlavor};
use crate::circuit::Circuit;
use crate::emulate::{emulate, EmulationReport};

/// One sweep sample: the swept parameter plus both flavors' reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Value of the swept parameter.
    pub x: f64,
    /// Standard-FPGA report.
    pub standard: EmulationReport,
    /// CNFET-PLA-FPGA report.
    pub cnfet: EmulationReport,
}

impl SweepPoint {
    /// CNFET/standard frequency ratio at this point.
    pub fn speedup(&self) -> f64 {
        self.cnfet.frequency / self.standard.frequency
    }
}

/// Sweep the routing-channel capacity at fixed die and circuit.
///
/// As capacity grows, congestion vanishes and the standard FPGA catches
/// up: the CNFET advantage shrinks towards the pure wirelength/packing
/// ratio — showing how much of Table 2's speedup is congestion relief.
///
/// # Panics
///
/// Panics if `capacities` is empty.
pub fn channel_capacity_sweep(
    circuit: &Circuit,
    capacities: &[usize],
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(!capacities.is_empty(), "nothing to sweep");
    let mut arch = FpgaArch::sized_for(circuit.n_blocks(), 0.99);
    capacities
        .iter()
        .map(|&cap| {
            arch.channel_capacity = cap;
            SweepPoint {
                x: cap as f64,
                standard: emulate(circuit, &arch, FpgaFlavor::Standard, seed),
                cnfet: emulate(circuit, &arch, FpgaFlavor::CnfetPla, seed),
            }
        })
        .collect()
}

/// Sweep the standard-FPGA target utilization (die size) at fixed circuit.
///
/// At low utilization the standard FPGA routes freely and the speedup
/// collapses towards the signal-count ratio; at ~99 % (the paper's
/// condition) congestion amplifies it.
///
/// # Panics
///
/// Panics if `targets` is empty or any target is outside `(0, 1]`.
pub fn utilization_sweep(circuit: &Circuit, targets: &[f64], seed: u64) -> Vec<SweepPoint> {
    assert!(!targets.is_empty(), "nothing to sweep");
    targets
        .iter()
        .map(|&t| {
            let arch = FpgaArch::sized_for(circuit.n_blocks(), t);
            SweepPoint {
                x: t,
                standard: emulate(circuit, &arch, FpgaFlavor::Standard, seed),
                cnfet: emulate(circuit, &arch, FpgaFlavor::CnfetPla, seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> Circuit {
        Circuit::random(40, 3, 0.95, 7)
    }

    #[test]
    fn capacity_sweep_monotone_standard_frequency() {
        // More tracks can only help the congested standard FPGA.
        let pts = channel_capacity_sweep(&circuit(), &[4, 10, 24], 7);
        assert!(pts[0].standard.frequency <= pts[2].standard.frequency * 1.05);
        assert_eq!(pts.len(), 3);
    }

    #[test]
    fn congestion_relief_shrinks_the_speedup() {
        let pts = channel_capacity_sweep(&circuit(), &[4, 32], 7);
        assert!(
            pts[1].speedup() <= pts[0].speedup() + 0.15,
            "uncongested speedup {} should not exceed congested {}",
            pts[1].speedup(),
            pts[0].speedup()
        );
        // Even uncongested, fewer signals + packing keep CNFET ahead.
        assert!(pts[1].speedup() > 1.0);
    }

    #[test]
    fn utilization_sweep_runs_and_orders() {
        let pts = utilization_sweep(&circuit(), &[0.4, 0.99], 7);
        // A fuller die cannot be faster for the standard flavor.
        assert!(pts[1].standard.frequency <= pts[0].standard.frequency * 1.05);
        assert!(pts[1].standard.occupancy > pts[0].standard.occupancy);
    }

    #[test]
    #[should_panic(expected = "nothing to sweep")]
    fn empty_sweep_rejected() {
        let _ = channel_capacity_sweep(&circuit(), &[], 1);
    }
}
