//! Mapping logic functions onto k-input CLBs.
//!
//! The paper notes that "FPGAs implement any function within a limited
//! number of inputs … we expect the function implemented in a PLA-based
//! FPGA to be split into blocks the same way standard FPGAs split large
//! functions into different CLBs." This module implements that split: a
//! recursive **Shannon decomposition** that breaks a multi-input cover
//! into a DAG of blocks with at most `k` inputs each:
//!
//! * leaves are sub-covers over ≤ k variables (one CLB each),
//! * internal nodes are 3-input multiplexers `(sel, then, else)` — also a
//!   CLB — selecting between the two cofactor subtrees.
//!
//! The result is both a [`Circuit`] (for place-and-route) and an
//! evaluable [`MappedNetwork`] whose function is verified against the
//! original cover.

use crate::circuit::{Circuit, Net};
use ambipla_core::{sim, Simulator};
use logic::{Cover, Cube, Tri};

/// One CLB-sized block of a mapped network.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A leaf function over the listed primary inputs (cover is
    /// single-output over exactly those variables, in order).
    Leaf {
        /// Primary-input indices feeding this block.
        inputs: Vec<usize>,
        /// The block's local single-output cover.
        cover: Cover,
    },
    /// A 2:1 multiplexer: `sel ? hi : lo`, where `sel` is a primary input
    /// and `hi`/`lo` are earlier block indices.
    Mux {
        /// Primary input used as the select.
        sel: usize,
        /// Block evaluated when `sel` is 1 (the positive cofactor).
        hi: usize,
        /// Block evaluated when `sel` is 0.
        lo: usize,
    },
}

/// A cover decomposed into a DAG of ≤ k-input blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedNetwork {
    n_inputs: usize,
    blocks: Vec<Block>,
    /// Root block per output of the original cover.
    roots: Vec<usize>,
    k: usize,
}

impl MappedNetwork {
    /// Decompose `cover` into blocks of at most `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (a mux needs 3 inputs) or the cover has no
    /// outputs.
    pub fn decompose(cover: &Cover, k: usize) -> MappedNetwork {
        assert!(k >= 3, "CLBs need at least 3 inputs (mux)");
        assert!(cover.n_outputs() > 0, "cover must have outputs");
        let mut net = MappedNetwork {
            n_inputs: cover.n_inputs(),
            blocks: Vec::new(),
            roots: Vec::new(),
            k,
        };
        for j in 0..cover.n_outputs() {
            let slice = cover.output_slice(j);
            let all_vars: Vec<usize> = (0..cover.n_inputs()).collect();
            let root = net.build(&slice, &all_vars);
            net.roots.push(root);
        }
        net
    }

    /// Recursively build blocks for `cover` over primary variables `vars`
    /// (cover's variable `i` is primary input `vars[i]`).
    fn build(&mut self, cover: &Cover, vars: &[usize]) -> usize {
        // Project away unused variables first.
        let (cover, vars) = project_support(cover, vars);
        if vars.len() <= self.k {
            self.blocks.push(Block::Leaf {
                inputs: vars.clone(),
                cover,
            });
            return self.blocks.len() - 1;
        }
        // Shannon split on the most frequent variable (keeps cofactors
        // small).
        let split = most_used_var(&cover);
        let hi_cof = shannon(&cover, split, true);
        let lo_cof = shannon(&cover, split, false);
        let sub_vars: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != split)
            .map(|(_, &v)| v)
            .collect();
        let hi = self.build(&drop_var(&hi_cof, split), &sub_vars);
        let lo = self.build(&drop_var(&lo_cof, split), &sub_vars);
        self.blocks.push(Block::Mux {
            sel: vars[split],
            hi,
            lo,
        });
        self.blocks.len() - 1
    }

    /// Number of blocks (CLBs).
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks, in dependency (index) order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Root block index per output.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The CLB input bound this network was mapped for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// True if the network implements `cover` (exhaustive up to
    /// [`logic::eval::EXHAUSTIVE_LIMIT`] inputs), swept 64 lanes per step
    /// through the block path.
    pub fn implements(&self, cover: &Cover) -> bool {
        let n = self.n_inputs.min(logic::eval::EXHAUSTIVE_LIMIT);
        sim::equivalent_to_cover(self, cover, n)
    }

    /// Convert into a routable [`Circuit`]: one circuit block per mapped
    /// block, block-to-block nets from the mux structure. (Primary-input
    /// fanout is local to the tile in this model and not routed.)
    pub fn to_circuit(&self, complement_fraction_hint: f64) -> Circuit {
        let _ = complement_fraction_hint;
        let mut nets = Vec::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            if let Block::Mux { hi, lo, .. } = block {
                for &src in [hi, lo].into_iter() {
                    nets.push(Net {
                        source: src,
                        sinks: vec![idx],
                        is_complement: false,
                    });
                }
            }
        }
        Circuit::new(self.blocks.len(), nets)
    }
}

/// The FPGA flow's block path: the mapped DAG evaluates word-level,
/// `words` lane words of 64 lanes each per net. Leaves gather their
/// primary-input word groups (whole-signal copies in the signal-major
/// layout) and evaluate their local cover with `Cover::eval_words`; a mux
/// block is three word ops per lane word (`sel & hi | !sel & lo`). This
/// is what lets mapped networks ride the same verification sweeps and
/// `SimService` batching as the PLA architectures.
impl Simulator for MappedNetwork {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn n_outputs(&self) -> usize {
        self.roots.len()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.n_inputs * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            self.roots.len() * words,
            "output buffer size mismatch"
        );
        let mut value = vec![0u64; self.blocks.len() * words];
        let mut local: Vec<u64> = Vec::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            match block {
                Block::Leaf { inputs: pis, cover } => {
                    local.clear();
                    for &pi in pis {
                        local.extend_from_slice(&inputs[pi * words..(pi + 1) * words]);
                    }
                    cover.eval_words(&local, &mut value[idx * words..(idx + 1) * words], words);
                }
                Block::Mux { sel, hi, lo } => {
                    for w in 0..words {
                        let s = inputs[sel * words + w];
                        value[idx * words + w] =
                            (s & value[hi * words + w]) | (!s & value[lo * words + w]);
                    }
                }
            }
        }
        for (orow, &r) in out.chunks_exact_mut(words).zip(&self.roots) {
            orow.copy_from_slice(&value[r * words..(r + 1) * words]);
        }
    }
}

/// Restrict a cover to its support variables; returns the projected cover
/// and the corresponding primary-variable list.
fn project_support(cover: &Cover, vars: &[usize]) -> (Cover, Vec<usize>) {
    let support: Vec<usize> = (0..cover.n_inputs())
        .filter(|&i| cover.iter().any(|c| c.input(i) != Tri::DontCare))
        .collect();
    if support.len() == cover.n_inputs() {
        return (cover.clone(), vars.to_vec());
    }
    if support.is_empty() {
        // Constant function: keep one dummy variable for a 1-input leaf.
        let keep = [0usize];
        let cubes: Vec<Cube> = cover.iter().map(|_| Cube::universe(1, 1)).collect();
        let projected = Cover::from_cubes(1, 1, cubes);
        return (projected, vec![vars[keep[0]]]);
    }
    let cubes: Vec<Cube> = cover
        .iter()
        .map(|c| {
            let tris: Vec<Tri> = support.iter().map(|&i| c.input(i)).collect();
            Cube::from_tris(&tris, &[true])
        })
        .collect();
    let projected = Cover::from_cubes(support.len(), 1, cubes);
    let new_vars: Vec<usize> = support.iter().map(|&i| vars[i]).collect();
    (projected, new_vars)
}

/// The variable used by the most cubes.
fn most_used_var(cover: &Cover) -> usize {
    (0..cover.n_inputs())
        .max_by_key(|&i| cover.iter().filter(|c| c.input(i) != Tri::DontCare).count())
        .expect("cover has variables")
}

/// Shannon cofactor (variable stays in place as don't-care).
fn shannon(cover: &Cover, var: usize, value: bool) -> Cover {
    let mut p = Cube::universe(cover.n_inputs(), 1);
    p.set_input(var, if value { Tri::One } else { Tri::Zero });
    cover.cofactor(&p)
}

/// Remove variable `var` from every cube (it must be don't-care).
fn drop_var(cover: &Cover, var: usize) -> Cover {
    let cubes: Vec<Cube> = cover
        .iter()
        .map(|c| {
            let tris: Vec<Tri> = (0..cover.n_inputs())
                .filter(|&i| i != var)
                .map(|i| c.input(i))
                .collect();
            Cube::from_tris(&tris, &[true])
        })
        .collect();
    Cover::from_cubes(cover.n_inputs() - 1, 1, cubes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn small_function_is_one_leaf() {
        let f = cover("10 1\n01 1", 2, 1);
        let net = MappedNetwork::decompose(&f, 4);
        assert_eq!(net.n_blocks(), 1);
        assert!(net.implements(&f));
    }

    #[test]
    fn wide_function_gets_split() {
        // 6-variable parity-ish function with k=4 must introduce muxes.
        let f = cover("111111 1\n000000 1\n110000 1\n001100 1\n000011 1", 6, 1);
        let net = MappedNetwork::decompose(&f, 4);
        assert!(net.n_blocks() > 1);
        assert!(net.implements(&f));
        // Every leaf respects the input bound.
        for b in net.blocks() {
            if let Block::Leaf { inputs, .. } = b {
                assert!(inputs.len() <= 4);
            }
        }
    }

    #[test]
    fn multi_output_maps_every_output() {
        let f = cover("11- 10\n--1 01\n0-0 11", 3, 2);
        let net = MappedNetwork::decompose(&f, 3);
        assert_eq!(net.roots().len(), 2);
        assert!(net.implements(&f));
    }

    #[test]
    fn support_projection_shrinks_leaves() {
        // Function only depends on x5 out of 8 variables: one 1-input leaf.
        let f = cover("-----1-- 1", 8, 1);
        let net = MappedNetwork::decompose(&f, 4);
        assert_eq!(net.n_blocks(), 1);
        match &net.blocks()[0] {
            Block::Leaf { inputs, .. } => assert_eq!(inputs, &vec![5]),
            b => panic!("expected leaf, got {b:?}"),
        }
        assert!(net.implements(&f));
    }

    #[test]
    fn mux_dag_is_index_ordered() {
        let f = cover("111111 1\n000000 1\n101010 1\n010101 1", 6, 1);
        let net = MappedNetwork::decompose(&f, 3);
        for (idx, b) in net.blocks().iter().enumerate() {
            if let Block::Mux { hi, lo, .. } = b {
                assert!(*hi < idx && *lo < idx, "children precede parents");
            }
        }
        assert!(net.implements(&f));
    }

    #[test]
    fn to_circuit_is_routable_shape() {
        let f = cover("111111 1\n000000 1\n101010 1\n010101 1", 6, 1);
        let net = MappedNetwork::decompose(&f, 3);
        let circuit = net.to_circuit(0.9);
        assert_eq!(circuit.n_blocks(), net.n_blocks());
        // Mux blocks each contribute two incoming nets.
        let mux_count = net
            .blocks()
            .iter()
            .filter(|b| matches!(b, Block::Mux { .. }))
            .count();
        assert_eq!(circuit.nets().len(), 2 * mux_count);
    }

    #[test]
    fn deep_split_still_correct() {
        // 10 variables at k=3: forces several mux levels.
        let f = cover("1111100000 1\n0000011111 1\n1010101010 1", 10, 1);
        let net = MappedNetwork::decompose(&f, 3);
        assert!(net.n_blocks() >= 4);
        assert!(net.implements(&f));
    }

    #[test]
    #[should_panic(expected = "at least 3 inputs")]
    fn tiny_k_rejected() {
        let f = cover("10 1", 2, 1);
        let _ = MappedNetwork::decompose(&f, 2);
    }
}
