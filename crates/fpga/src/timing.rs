//! Net delays and critical-path analysis.
//!
//! Connection delay is a first-order switched-wire model: each channel
//! segment crossed costs one programmable-switch delay plus one tile of
//! wire delay, inflated by the local congestion (detoured/slow tracks).
//! The circuit is a DAG in block-index order, so the critical path is a
//! single forward sweep.

use crate::arch::FpgaArch;
use crate::circuit::Circuit;
use crate::route::RoutingResult;

/// Timing analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical-path delay, seconds.
    pub critical_path: f64,
    /// Maximum clock frequency, hertz.
    pub frequency: f64,
    /// Mean connection delay, seconds.
    pub mean_net_delay: f64,
    /// Logic depth (blocks) of the critical path.
    pub critical_depth: usize,
}

/// Delay of one routed connection under `arch`: every connection pays one
/// pin switch (even block-to-block inside a tile), plus a switch and a tile
/// of wire per channel segment, inflated by the local congestion.
pub fn connection_delay(arch: &FpgaArch, hops: usize, mean_overuse: f64) -> f64 {
    let base = arch.switch_delay + hops as f64 * (arch.switch_delay + arch.wire_delay_per_tile);
    base * (1.0 + arch.congestion_penalty * mean_overuse)
}

/// Critical path of the placed-and-routed circuit.
///
/// # Panics
///
/// Panics if `routing` does not belong to `circuit` (connection indices out
/// of range).
pub fn critical_path(circuit: &Circuit, routing: &RoutingResult, arch: &FpgaArch) -> TimingReport {
    let n = circuit.n_blocks();
    let mut arrival = vec![arch.clb_delay; n];
    let mut depth = vec![1usize; n];
    let mut delay_sum = 0.0;
    for c in &routing.connections {
        assert!(c.source < n && c.sink < n, "foreign routing result");
        let d = connection_delay(arch, c.hops, c.mean_overuse);
        delay_sum += d;
        let candidate = arrival[c.source] + d + arch.clb_delay;
        if candidate > arrival[c.sink] {
            arrival[c.sink] = candidate;
            depth[c.sink] = depth[c.source] + 1;
        }
    }
    let (critical_path, critical_depth) = arrival
        .iter()
        .zip(&depth)
        .map(|(&a, &d)| (a, d))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((arch.clb_delay, 1));
    TimingReport {
        critical_path,
        frequency: 1.0 / critical_path,
        mean_net_delay: if routing.connections.is_empty() {
            0.0
        } else {
            delay_sum / routing.connections.len() as f64
        },
        critical_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::FpgaFlavor;
    use crate::place::place;
    use crate::route::route;

    fn full_flow(flavor: FpgaFlavor, seed: u64) -> (Circuit, FpgaArch, TimingReport) {
        let circuit = Circuit::random(50, 3, 0.9, seed);
        let arch = FpgaArch::sized_for(50, 0.99);
        let p = place(&circuit, &arch, flavor, seed);
        let r = route(&circuit, &p, &arch);
        let t = critical_path(&circuit, &r, &arch);
        (circuit, arch, t)
    }

    #[test]
    fn critical_path_is_positive_and_deeper_than_one() {
        let (_, arch, t) = full_flow(FpgaFlavor::Standard, 3);
        assert!(t.critical_path >= arch.clb_delay);
        assert!(t.critical_depth >= 2, "random DAGs have real depth");
        assert!(t.frequency > 0.0);
    }

    #[test]
    fn cnfet_flavor_is_faster() {
        // The paper's headline: fewer routed signals + tighter packing →
        // roughly doubled frequency.
        let (_, _, std_t) = full_flow(FpgaFlavor::Standard, 3);
        let (_, _, cn_t) = full_flow(FpgaFlavor::CnfetPla, 3);
        assert!(
            cn_t.frequency > std_t.frequency,
            "CNFET {:.1} MHz vs standard {:.1} MHz",
            cn_t.frequency / 1e6,
            std_t.frequency / 1e6
        );
    }

    #[test]
    fn congestion_increases_delay() {
        let arch = FpgaArch::new(10);
        let clean = connection_delay(&arch, 10, 0.0);
        let congested = connection_delay(&arch, 10, 2.0);
        assert!(congested > clean);
    }

    #[test]
    fn delay_scales_with_hops() {
        let arch = FpgaArch::new(10);
        assert!(connection_delay(&arch, 20, 0.0) > connection_delay(&arch, 5, 0.0));
        // Even a same-tile connection pays the pin switch.
        assert!(connection_delay(&arch, 0, 0.0) > 0.0);
    }

    #[test]
    fn frequency_in_paper_band() {
        // The delay constants should land a full standard FPGA in the
        // 50–500 MHz decade of Table 2 (not GHz, not kHz).
        let (_, _, t) = full_flow(FpgaFlavor::Standard, 7);
        let mhz = t.frequency / 1e6;
        assert!(mhz > 20.0, "too slow: {mhz:.1} MHz");
        assert!(mhz < 2000.0, "too fast: {mhz:.1} MHz");
    }
}
