//! FPGA architecture: tile grid, channel capacities, delay constants.

/// Which CLB technology populates the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpgaFlavor {
    /// Classical CLBs: unit area, true+complement rails routed.
    Standard,
    /// GNOR-PLA CLBs (the paper's emulation): half-area blocks, complement
    /// rails generated inside the block and never routed.
    CnfetPla,
}

impl FpgaFlavor {
    /// Relative CLB area (standard = 1.0). The paper emulates the CNFET
    /// FPGA with "half of the area for every CLB".
    pub fn clb_area(self) -> f64 {
        match self {
            FpgaFlavor::Standard => 1.0,
            FpgaFlavor::CnfetPla => 0.5,
        }
    }

    /// CLBs that fit one tile of the fixed die.
    pub fn clbs_per_tile(self) -> usize {
        match self {
            FpgaFlavor::Standard => 1,
            FpgaFlavor::CnfetPla => 2,
        }
    }

    /// Whether complement rails must be routed between blocks.
    pub fn routes_complements(self) -> bool {
        matches!(self, FpgaFlavor::Standard)
    }
}

/// Architecture parameters of the island-style FPGA die.
///
/// The die is a `grid × grid` array of tiles; routing uses the channels
/// between adjacent tiles, each with a fixed track [`FpgaArch::channel_capacity`].
/// Delay constants are first-order per-hop numbers chosen to land a
/// mid-size full standard FPGA near the paper's 154 MHz operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaArch {
    /// Tiles per side of the square die.
    pub grid: usize,
    /// Routing tracks per channel segment.
    pub channel_capacity: usize,
    /// Intrinsic CLB delay, seconds.
    pub clb_delay: f64,
    /// Delay of one programmable switch crossing, seconds.
    pub switch_delay: f64,
    /// Wire delay of one tile pitch, seconds.
    pub wire_delay_per_tile: f64,
    /// Extra delay factor per unit of average channel overuse along a path
    /// (models the slower, detoured or buffered tracks of congested
    /// regions).
    pub congestion_penalty: f64,
}

impl FpgaArch {
    /// Default architecture: delay constants giving a full mid-size
    /// standard FPGA a clock in the 100–200 MHz band of the paper's
    /// Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn new(grid: usize) -> FpgaArch {
        assert!(grid > 0, "die must have at least one tile");
        FpgaArch {
            grid,
            channel_capacity: 10,
            clb_delay: 0.115e-9,
            switch_delay: 0.018e-9,
            wire_delay_per_tile: 0.013e-9,
            congestion_penalty: 0.25,
        }
    }

    /// Number of tiles on the die.
    pub fn tiles(&self) -> usize {
        self.grid * self.grid
    }

    /// Die size needed so that `n_blocks` standard CLBs fill `target`
    /// fraction of the tiles (the paper fills the standard FPGA to 99 %).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target <= 1`.
    pub fn sized_for(n_blocks: usize, target: f64) -> FpgaArch {
        assert!(target > 0.0 && target <= 1.0, "target occupancy in (0,1]");
        let tiles = (n_blocks as f64 / target).ceil();
        let grid = (tiles.sqrt().ceil() as usize).max(1);
        FpgaArch::new(grid)
    }

    /// CLB slots available under `flavor` (half-area CLBs pack two per
    /// tile).
    pub fn slots(&self, flavor: FpgaFlavor) -> usize {
        self.tiles() * flavor.clbs_per_tile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_areas() {
        assert_eq!(FpgaFlavor::Standard.clb_area(), 1.0);
        assert_eq!(FpgaFlavor::CnfetPla.clb_area(), 0.5);
        assert_eq!(FpgaFlavor::CnfetPla.clbs_per_tile(), 2);
        assert!(FpgaFlavor::Standard.routes_complements());
        assert!(!FpgaFlavor::CnfetPla.routes_complements());
    }

    #[test]
    fn sizing_hits_target_occupancy() {
        let arch = FpgaArch::sized_for(99, 0.99);
        // 100 tiles exactly: 99 blocks → 99 %.
        assert_eq!(arch.tiles(), 100);
        let occ = 99.0 / arch.tiles() as f64;
        assert!((occ - 0.99).abs() < 1e-12);
    }

    #[test]
    fn slots_double_for_half_area_blocks() {
        let arch = FpgaArch::new(10);
        assert_eq!(arch.slots(FpgaFlavor::Standard), 100);
        assert_eq!(arch.slots(FpgaFlavor::CnfetPla), 200);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_grid_rejected() {
        let _ = FpgaArch::new(0);
    }

    #[test]
    #[should_panic(expected = "target occupancy")]
    fn bad_target_rejected() {
        let _ = FpgaArch::sized_for(10, 0.0);
    }
}
