//! Simulated-annealing placement.
//!
//! Classic VPR-style annealing: blocks live in tile slots (two slots per
//! tile for half-area CLBs), the cost is the half-perimeter wirelength
//! (HPWL) of the routed nets, and moves are block relocations or swaps.
//! Deterministic for a given seed.

use crate::arch::{FpgaArch, FpgaFlavor};
use crate::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One temperature stage of the annealing schedule, as observed by
/// [`place_traced`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStage {
    /// Temperature the stage ran at.
    pub temperature: f64,
    /// Moves attempted (skipped self-moves are not counted).
    pub moves: usize,
    /// Moves accepted (downhill, or uphill by Metropolis).
    pub accepts: usize,
    /// HPWL cost at the end of the stage.
    pub cost: f64,
    /// Wall time spent in the stage, in nanoseconds.
    pub wall_ns: u64,
}

/// Profile of one annealing run: one [`AnnealStage`] per temperature,
/// in schedule order. Same hook shape as
/// `logic::MinimizeTrace` — the traced entry point is [`place_traced`],
/// and [`place`] itself never reads a clock.
#[derive(Debug, Clone, Default)]
pub struct AnnealTrace {
    /// Per-temperature samples, hottest first.
    pub stages: Vec<AnnealStage>,
}

impl AnnealTrace {
    /// Total moves attempted across all stages.
    pub fn total_moves(&self) -> usize {
        self.stages.iter().map(|s| s.moves).sum()
    }

    /// Total moves accepted across all stages.
    pub fn total_accepts(&self) -> usize {
        self.stages.iter().map(|s| s.accepts).sum()
    }

    /// Cost at the end of each stage, hottest first.
    pub fn cost_trajectory(&self) -> Vec<f64> {
        self.stages.iter().map(|s| s.cost).collect()
    }

    /// Total wall time across all stages, in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }
}

/// A placement: one tile per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    tile_of: Vec<usize>,
    grid: usize,
    flavor: FpgaFlavor,
}

impl Placement {
    /// The tile index of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn tile(&self, block: usize) -> usize {
        self.tile_of[block]
    }

    /// `(x, y)` coordinates of `block`'s tile.
    pub fn coords(&self, block: usize) -> (usize, usize) {
        let t = self.tile_of[block];
        (t % self.grid, t / self.grid)
    }

    /// The flavor this placement was made for.
    pub fn flavor(&self) -> FpgaFlavor {
        self.flavor
    }

    /// Half-perimeter wirelength of the nets routed under this placement's
    /// flavor.
    pub fn hpwl(&self, circuit: &Circuit) -> usize {
        circuit
            .routed_nets(self.flavor)
            .iter()
            .map(|net| {
                let (mut xmin, mut ymin) = self.coords(net.source);
                let (mut xmax, mut ymax) = (xmin, ymin);
                for &s in &net.sinks {
                    let (x, y) = self.coords(s);
                    xmin = xmin.min(x);
                    xmax = xmax.max(x);
                    ymin = ymin.min(y);
                    ymax = ymax.max(y);
                }
                (xmax - xmin) + (ymax - ymin)
            })
            .sum()
    }
}

/// Place `circuit` on `arch` under `flavor` with simulated annealing.
///
/// # Panics
///
/// Panics if the circuit does not fit the die's slots.
pub fn place(circuit: &Circuit, arch: &FpgaArch, flavor: FpgaFlavor, seed: u64) -> Placement {
    anneal(circuit, arch, flavor, seed, None)
}

/// [`place`], also returning a per-temperature [`AnnealTrace`].
///
/// The placement is identical to the untraced run for the same seed;
/// the only extra cost is one clock read per temperature stage.
pub fn place_traced(
    circuit: &Circuit,
    arch: &FpgaArch,
    flavor: FpgaFlavor,
    seed: u64,
) -> (Placement, AnnealTrace) {
    let mut trace = AnnealTrace::default();
    let placement = anneal(circuit, arch, flavor, seed, Some(&mut trace));
    (placement, trace)
}

fn anneal(
    circuit: &Circuit,
    arch: &FpgaArch,
    flavor: FpgaFlavor,
    seed: u64,
    mut trace: Option<&mut AnnealTrace>,
) -> Placement {
    let slots_per_tile = flavor.clbs_per_tile();
    let capacity = arch.slots(flavor);
    let n = circuit.n_blocks();
    assert!(
        n <= capacity,
        "{n} blocks exceed {capacity} slots on a {0}x{0} die",
        arch.grid
    );

    let mut rng = StdRng::seed_from_u64(seed);
    // Initial placement: row-major compact fill (good starting point, and
    // exactly what a greedy packer would do).
    let mut tile_of: Vec<usize> = (0..n).map(|b| b / slots_per_tile).collect();
    let mut used: Vec<usize> = vec![0; arch.tiles()];
    for &t in &tile_of {
        used[t] += 1;
    }

    let mut placement = Placement {
        tile_of: tile_of.clone(),
        grid: arch.grid,
        flavor,
    };
    let mut cost = placement.hpwl(circuit) as f64;

    // Annealing schedule: geometric cooling, move budget scaled to size.
    let moves_per_temp = (16 * n).max(64);
    let mut temp = (cost / n.max(1) as f64).max(1.0);
    let t_min = 0.01;
    let mut started = trace.as_ref().map(|_| Instant::now());
    while temp > t_min {
        let mut moves = 0usize;
        let mut accepts = 0usize;
        for _ in 0..moves_per_temp {
            let b = rng.gen_range(0..n);
            let old_tile = tile_of[b];
            let new_tile = rng.gen_range(0..arch.tiles());
            if new_tile == old_tile {
                continue;
            }
            moves += 1;
            // Either move into free capacity or swap with a block there.
            let swap_with: Option<usize> = if used[new_tile] < slots_per_tile {
                None
            } else {
                // Pick a block on the target tile to swap with.
                (0..n).find(|&x| tile_of[x] == new_tile)
            };
            // Apply tentatively.
            tile_of[b] = new_tile;
            if let Some(o) = swap_with {
                tile_of[o] = old_tile;
            }
            placement.tile_of.clone_from(&tile_of);
            let new_cost = placement.hpwl(circuit) as f64;
            let delta = new_cost - cost;
            let accept = delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0));
            if accept {
                accepts += 1;
                used[old_tile] -= 1;
                used[new_tile] += 1;
                if let Some(o) = swap_with {
                    used[new_tile] -= 1;
                    used[old_tile] += 1;
                    let _ = o;
                }
                cost = new_cost;
            } else {
                // Revert.
                tile_of[b] = old_tile;
                if let Some(o) = swap_with {
                    tile_of[o] = new_tile;
                }
                placement.tile_of.clone_from(&tile_of);
            }
        }
        if let Some(tr) = trace.as_deref_mut() {
            let now = Instant::now();
            tr.stages.push(AnnealStage {
                temperature: temp,
                moves,
                accepts,
                cost,
                wall_ns: (now - started.unwrap()).as_nanos() as u64,
            });
            started = Some(now);
        }
        temp *= 0.8;
    }
    placement.tile_of = tile_of;
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(flavor: FpgaFlavor) -> (Circuit, FpgaArch, Placement) {
        let circuit = Circuit::random(40, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(40, 0.99);
        let p = place(&circuit, &arch, flavor, 42);
        (circuit, arch, p)
    }

    #[test]
    fn capacity_respected_standard() {
        let (_, arch, p) = setup(FpgaFlavor::Standard);
        let mut used = vec![0usize; arch.tiles()];
        for b in 0..40 {
            used[p.tile(b)] += 1;
        }
        assert!(used.iter().all(|&u| u <= 1));
    }

    #[test]
    fn capacity_respected_cnfet() {
        let (_, arch, p) = setup(FpgaFlavor::CnfetPla);
        let mut used = vec![0usize; arch.tiles()];
        for b in 0..40 {
            used[p.tile(b)] += 1;
        }
        assert!(used.iter().all(|&u| u <= 2));
    }

    #[test]
    fn annealing_beats_or_matches_initial() {
        let circuit = Circuit::random(40, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(40, 0.99);
        let initial = Placement {
            tile_of: (0..40).collect(),
            grid: arch.grid,
            flavor: FpgaFlavor::Standard,
        };
        let optimized = place(&circuit, &arch, FpgaFlavor::Standard, 42);
        assert!(optimized.hpwl(&circuit) <= initial.hpwl(&circuit));
    }

    #[test]
    fn placement_is_deterministic() {
        let circuit = Circuit::random(30, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(30, 0.99);
        let a = place(&circuit, &arch, FpgaFlavor::Standard, 1);
        let b = place(&circuit, &arch, FpgaFlavor::Standard, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn half_area_blocks_pack_tighter() {
        // With two blocks per tile the same circuit should achieve a
        // smaller or equal wirelength — the density half of the paper's
        // frequency argument.
        let circuit = Circuit::random(60, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(60, 0.99);
        let std_p = place(&circuit, &arch, FpgaFlavor::Standard, 9);
        let cn_p = place(&circuit, &arch, FpgaFlavor::CnfetPla, 9);
        assert!(cn_p.hpwl(&circuit) <= std_p.hpwl(&circuit));
    }

    #[test]
    fn traced_run_matches_untraced_and_profiles_every_stage() {
        let circuit = Circuit::random(30, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(30, 0.99);
        let plain = place(&circuit, &arch, FpgaFlavor::Standard, 7);
        let (traced, trace) = place_traced(&circuit, &arch, FpgaFlavor::Standard, 7);
        // Tracing must not perturb the anneal: same RNG stream, same result.
        assert_eq!(plain, traced);
        // Geometric cooling from T0 to 0.01 gives a known stage count.
        assert!(!trace.stages.is_empty());
        let temps: Vec<f64> = trace.stages.iter().map(|s| s.temperature).collect();
        assert!(temps.windows(2).all(|w| w[1] < w[0]), "cooling monotone");
        assert!(trace.total_moves() >= trace.total_accepts());
        assert!(trace.total_accepts() > 0);
        assert_eq!(
            trace.cost_trajectory().last().copied().unwrap(),
            traced.hpwl(&circuit) as f64
        );
        assert_eq!(trace.cost_trajectory().len(), trace.stages.len());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscription_panics() {
        let circuit = Circuit::random(50, 2, 0.5, 1);
        let arch = FpgaArch::new(3); // 9 tiles — far too small
        let _ = place(&circuit, &arch, FpgaFlavor::Standard, 0);
    }
}
