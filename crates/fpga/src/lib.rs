//! Island-style FPGA model for the Table 2 emulation.
//!
//! Section 5 of the DAC 2008 paper evaluates a **PLA-based FPGA** whose
//! configurable logic blocks (CLBs) are GNOR PLAs. The paper's methodology
//! is itself an emulation: *"To emulate the ambipolar CNFET FPGA we used a
//! classical one with half of the area for every CLB. Both FPGA implement
//! the same function and the standard one is full."* Two effects drive the
//! reported 99 % → 44.9 % occupancy and 154 → 349 MHz frequency:
//!
//! 1. **half-area CLBs** — the GNOR PLA inside the CLB needs one column per
//!    input instead of two,
//! 2. **roughly half the routed signals** — complemented rails are not
//!    routed between CLBs because every GNOR input can invert internally.
//!
//! This crate reproduces that methodology end to end on a from-scratch
//! substrate:
//!
//! * [`circuit`] — synthetic block/net workloads with explicit complement
//!   rails (the signals a classical FPGA must route but a GNOR FPGA
//!   generates internally),
//! * [`arch`] — the tile grid, channel capacities and delay constants,
//! * [`mod@place`] — simulated-annealing placement (seeded, deterministic),
//! * [`mod@route`] — congestion-aware maze routing over the channel graph,
//! * [`timing`] — Elmore-flavoured net delays and critical-path analysis,
//! * [`mod@emulate`] — the Table 2 harness comparing [`FpgaFlavor::Standard`]
//!   against [`FpgaFlavor::CnfetPla`] on the same circuit.

pub mod arch;
pub mod circuit;
pub mod emulate;
pub mod mapping;
pub mod place;
pub mod route;
pub mod sweep;
pub mod timing;

pub use arch::{FpgaArch, FpgaFlavor};
pub use circuit::{Circuit, Net};
pub use emulate::{emulate, EmulationReport};
pub use mapping::{Block, MappedNetwork};
pub use place::{place, place_traced, AnnealStage, AnnealTrace, Placement};
pub use route::{route, RoutingResult};
pub use sweep::{channel_capacity_sweep, utilization_sweep, SweepPoint};
pub use timing::{critical_path, TimingReport};
