//! Congestion-aware global routing over the tile grid.
//!
//! Each net is routed as a star of two-pin connections (source → each
//! sink) with Dijkstra over the channel graph; edge costs grow with usage,
//! and two negotiation passes rip up and re-route everything with updated
//! congestion costs — a miniature PathFinder. The result records per-
//! connection hop counts and the channel overuse the timing model converts
//! into delay.

use crate::arch::{FpgaArch, FpgaFlavor};
use crate::circuit::Circuit;
use crate::place::Placement;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One routed two-pin connection.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedConnection {
    /// Driving block.
    pub source: usize,
    /// Sink block.
    pub sink: usize,
    /// Channel segments crossed.
    pub hops: usize,
    /// Mean overuse (usage beyond capacity) of the crossed segments after
    /// the final pass.
    pub mean_overuse: f64,
}

/// Outcome of routing a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// All routed connections, in net order.
    pub connections: Vec<RoutedConnection>,
    /// Sum of hops over all connections.
    pub total_wirelength: usize,
    /// Highest usage of any channel segment.
    pub max_channel_usage: usize,
    /// Channel segments used beyond capacity.
    pub overused_segments: usize,
    /// Track capacity the routing was negotiated against.
    pub channel_capacity: usize,
}

impl RoutingResult {
    /// Fraction of used segments that are overused — a congestion score.
    pub fn congestion(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        let total: f64 = self.connections.iter().map(|c| c.mean_overuse).sum();
        total / self.connections.len() as f64
    }
}

/// Route every connection of `circuit` (under the placement's flavor) on
/// `arch`'s channel graph.
///
/// # Panics
///
/// Panics if the placement refers to tiles outside the die.
pub fn route(circuit: &Circuit, placement: &Placement, arch: &FpgaArch) -> RoutingResult {
    let grid = arch.grid;
    let n_edges = 2 * grid * (grid - 1);
    let mut usage = vec![0u32; n_edges.max(1)];

    // Collect two-pin connections.
    let flavor: FpgaFlavor = placement.flavor();
    let mut pins: Vec<(usize, usize)> = Vec::new();
    for net in circuit.routed_nets(flavor) {
        for &s in &net.sinks {
            pins.push((net.source, s));
        }
    }

    // Negotiated congestion: three passes with growing penalty.
    let mut paths: Vec<Vec<usize>> = vec![Vec::new(); pins.len()];
    for pass in 0..3 {
        let penalty = 2.0 + 4.0 * pass as f64;
        for (k, &(src, dst)) in pins.iter().enumerate() {
            // Rip up the previous path.
            for &e in &paths[k] {
                usage[e] -= 1;
            }
            let from = placement.tile(src);
            let to = placement.tile(dst);
            paths[k] = dijkstra(grid, from, to, &usage, arch.channel_capacity, penalty);
            for &e in &paths[k] {
                usage[e] += 1;
            }
        }
    }

    let connections: Vec<RoutedConnection> = pins
        .iter()
        .zip(&paths)
        .map(|(&(src, dst), path)| {
            let over: f64 = path
                .iter()
                .map(|&e| (usage[e] as f64 - arch.channel_capacity as f64).max(0.0))
                .sum();
            RoutedConnection {
                source: src,
                sink: dst,
                hops: path.len(),
                mean_overuse: if path.is_empty() {
                    0.0
                } else {
                    over / path.len() as f64
                },
            }
        })
        .collect();

    let total_wirelength = connections.iter().map(|c| c.hops).sum();
    let max_channel_usage = usage.iter().copied().max().unwrap_or(0) as usize;
    let overused_segments = usage
        .iter()
        .filter(|&&u| u as usize > arch.channel_capacity)
        .count();
    RoutingResult {
        connections,
        total_wirelength,
        max_channel_usage,
        overused_segments,
        channel_capacity: arch.channel_capacity,
    }
}

/// Edge index of the channel segment between adjacent tiles `a` and `b`.
fn edge_index(grid: usize, a: usize, b: usize) -> usize {
    let (lo, hi) = (a.min(b), a.max(b));
    let (x, y) = (lo % grid, lo / grid);
    if hi == lo + 1 {
        // Horizontal segment.
        y * (grid - 1) + x
    } else {
        // Vertical segment, offset past all horizontal ones.
        grid * (grid - 1) + x * (grid - 1) + y
    }
}

fn neighbors(grid: usize, t: usize) -> impl Iterator<Item = usize> {
    let x = t % grid;
    let y = t / grid;
    let mut v = Vec::with_capacity(4);
    if x > 0 {
        v.push(t - 1);
    }
    if x + 1 < grid {
        v.push(t + 1);
    }
    if y > 0 {
        v.push(t - grid);
    }
    if y + 1 < grid {
        v.push(t + grid);
    }
    v.into_iter()
}

/// Shortest path (list of edge indices) from tile `from` to `to` under
/// congestion costs. Same-tile connections return an empty path.
fn dijkstra(
    grid: usize,
    from: usize,
    to: usize,
    usage: &[u32],
    capacity: usize,
    penalty: f64,
) -> Vec<usize> {
    if from == to {
        return Vec::new();
    }
    let n = grid * grid;
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    dist[from] = 0.0;
    // Order on bit-cast cost keeps the heap total-ordered (costs are
    // non-negative finite).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0, from)));
    while let Some(Reverse((dbits, t))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[t] {
            continue;
        }
        if t == to {
            break;
        }
        for nb in neighbors(grid, t) {
            let e = edge_index(grid, t, nb);
            let over = (usage[e] as f64 + 1.0 - capacity as f64).max(0.0);
            let cost = 1.0 + penalty * over;
            let nd = d + cost;
            if nd < dist[nb] {
                dist[nb] = nd;
                prev[nb] = Some(t);
                heap.push(Reverse((nd.to_bits(), nb)));
            }
        }
    }
    // Reconstruct edge list.
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let p = prev[cur].expect("grid graph is connected");
        path.push(edge_index(grid, p, cur));
        cur = p;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;

    fn routed(flavor: FpgaFlavor) -> (Circuit, RoutingResult) {
        let circuit = Circuit::random(40, 3, 0.9, 5);
        let arch = FpgaArch::sized_for(40, 0.99);
        let p = place(&circuit, &arch, flavor, 42);
        let r = route(&circuit, &p, &arch);
        (circuit, r)
    }

    #[test]
    fn every_connection_is_routed() {
        let (circuit, r) = routed(FpgaFlavor::Standard);
        let expected: usize = circuit
            .routed_nets(FpgaFlavor::Standard)
            .iter()
            .map(|n| n.sinks.len())
            .sum();
        assert_eq!(r.connections.len(), expected);
    }

    #[test]
    fn hops_bound_by_manhattan_distance_unloaded() {
        // On an empty die every path must be ≥ Manhattan distance.
        let circuit = Circuit::random(10, 2, 0.0, 3);
        let arch = FpgaArch::new(8);
        let p = place(&circuit, &arch, FpgaFlavor::Standard, 1);
        let r = route(&circuit, &p, &arch);
        for c in &r.connections {
            let (x1, y1) = p.coords(c.source);
            let (x2, y2) = p.coords(c.sink);
            let manhattan = x1.abs_diff(x2) + y1.abs_diff(y2);
            assert!(c.hops >= manhattan, "path shorter than Manhattan?");
        }
    }

    #[test]
    fn cnfet_routes_fewer_connections() {
        let (_, std_r) = routed(FpgaFlavor::Standard);
        let (_, cn_r) = routed(FpgaFlavor::CnfetPla);
        assert!(cn_r.connections.len() < std_r.connections.len());
        assert!(cn_r.total_wirelength < std_r.total_wirelength);
    }

    #[test]
    fn congested_die_shows_higher_usage_than_sparse() {
        let dense = {
            let circuit = Circuit::random(60, 4, 1.0, 5);
            let arch = FpgaArch::sized_for(60, 0.99);
            let p = place(&circuit, &arch, FpgaFlavor::Standard, 1);
            route(&circuit, &p, &arch)
        };
        let sparse = {
            let circuit = Circuit::random(60, 4, 1.0, 5);
            let arch = FpgaArch::sized_for(60, 0.30);
            let p = place(&circuit, &arch, FpgaFlavor::Standard, 1);
            route(&circuit, &p, &arch)
        };
        assert!(dense.max_channel_usage >= sparse.max_channel_usage);
    }

    #[test]
    fn edge_indices_are_unique_and_in_range() {
        let grid = 5;
        let n_edges = 2 * grid * (grid - 1);
        let mut seen = vec![false; n_edges];
        for t in 0..grid * grid {
            for nb in neighbors(grid, t) {
                if nb > t {
                    let e = edge_index(grid, t, nb);
                    assert!(e < n_edges, "edge index out of range");
                    assert!(!seen[e], "duplicate edge index {e}");
                    seen[e] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every edge indexed");
    }

    #[test]
    fn same_tile_connection_has_zero_hops() {
        // Two CNFET blocks in one tile talk for free.
        let circuit = Circuit::new(
            2,
            vec![crate::circuit::Net {
                source: 0,
                sinks: vec![1],
                is_complement: false,
            }],
        );
        let arch = FpgaArch::new(2);
        // Manual placement via place(): with 1 tile needed the packer puts
        // both blocks on tile 0 in CnfetPla mode.
        let p = place(&circuit, &arch, FpgaFlavor::CnfetPla, 0);
        let r = route(&circuit, &p, &arch);
        if p.tile(0) == p.tile(1) {
            assert_eq!(r.connections[0].hops, 0);
        }
    }
}
