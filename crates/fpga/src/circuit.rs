//! Synthetic block-level circuits with explicit complement rails.
//!
//! A circuit is a DAG of CLB-sized blocks connected by nets. Every logical
//! signal may additionally require its **complement rail**: in a classical
//! FPGA both polarities are routed ("the number of signals to route is
//! reduced by almost the factor 2, because the inverted signals are not
//! routed but generated internally", Section 5). Complement nets carry
//! `is_complement = true` and are simply dropped when the target flavor is
//! the GNOR-PLA FPGA.

use crate::arch::FpgaFlavor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One routed signal: a source block driving one or more sink blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Driving block index.
    pub source: usize,
    /// Sink block indices (all greater than `source`: the circuit is a
    /// DAG in index order).
    pub sinks: Vec<usize>,
    /// True if this net is the complement rail of another signal.
    pub is_complement: bool,
}

/// A block-level netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    n_blocks: usize,
    nets: Vec<Net>,
}

impl Circuit {
    /// Build a circuit from explicit nets.
    ///
    /// # Panics
    ///
    /// Panics if any net references a block `>= n_blocks`, has no sinks, or
    /// has a sink `<=` its source (the DAG-order invariant).
    pub fn new(n_blocks: usize, nets: Vec<Net>) -> Circuit {
        for (k, net) in nets.iter().enumerate() {
            assert!(net.source < n_blocks, "net {k}: source out of range");
            assert!(!net.sinks.is_empty(), "net {k}: no sinks");
            for &s in &net.sinks {
                assert!(s < n_blocks, "net {k}: sink out of range");
                assert!(s > net.source, "net {k}: sink {s} breaks DAG order");
            }
        }
        Circuit { n_blocks, nets }
    }

    /// Seeded random DAG circuit.
    ///
    /// Each block `b > 0` receives `fanin` incoming connections from
    /// earlier blocks (grouped into nets by source); a `complement_fraction`
    /// of the resulting logical signals additionally requires its inverted
    /// rail. The paper's "almost the factor 2" corresponds to a fraction
    /// near 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks < 2`, `fanin == 0`, or the fraction is outside
    /// `[0, 1]`.
    pub fn random(n_blocks: usize, fanin: usize, complement_fraction: f64, seed: u64) -> Circuit {
        assert!(n_blocks >= 2, "need at least two blocks");
        assert!(fanin > 0, "blocks need inputs");
        assert!(
            (0.0..=1.0).contains(&complement_fraction),
            "fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // sinks_of[src] collects the sinks fed by block src.
        let mut sinks_of: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
        for b in 1..n_blocks {
            for _ in 0..fanin {
                let src = rng.gen_range(0..b);
                if !sinks_of[src].contains(&b) {
                    sinks_of[src].push(b);
                }
            }
        }
        let mut nets = Vec::new();
        for (src, sinks) in sinks_of.into_iter().enumerate() {
            if sinks.is_empty() {
                continue;
            }
            let complemented = rng.gen_bool(complement_fraction);
            nets.push(Net {
                source: src,
                sinks: sinks.clone(),
                is_complement: false,
            });
            if complemented {
                nets.push(Net {
                    source: src,
                    sinks,
                    is_complement: true,
                });
            }
        }
        Circuit { n_blocks, nets }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// All nets, including complement rails.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The nets that must actually be routed under `flavor`: the GNOR-PLA
    /// FPGA never routes complement rails.
    pub fn routed_nets(&self, flavor: FpgaFlavor) -> Vec<&Net> {
        self.nets
            .iter()
            .filter(|n| flavor.routes_complements() || !n.is_complement)
            .collect()
    }

    /// Ratio of routed signals, CNFET over standard — the paper claims
    /// "almost the factor 2" reduction, i.e. a ratio near 0.5.
    pub fn signal_reduction(&self) -> f64 {
        let standard = self.routed_nets(FpgaFlavor::Standard).len();
        let cnfet = self.routed_nets(FpgaFlavor::CnfetPla).len();
        cnfet as f64 / standard.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circuit_is_deterministic() {
        let a = Circuit::random(50, 3, 0.9, 7);
        let b = Circuit::random(50, 3, 0.9, 7);
        assert_eq!(a, b);
        assert_ne!(a, Circuit::random(50, 3, 0.9, 8));
    }

    #[test]
    fn dag_order_holds() {
        let c = Circuit::random(80, 3, 0.8, 1);
        for net in c.nets() {
            for &s in &net.sinks {
                assert!(s > net.source);
            }
        }
    }

    #[test]
    fn complement_rails_are_dropped_for_cnfet() {
        let c = Circuit::random(100, 3, 1.0, 3);
        let std_nets = c.routed_nets(FpgaFlavor::Standard).len();
        let cn_nets = c.routed_nets(FpgaFlavor::CnfetPla).len();
        assert_eq!(std_nets, 2 * cn_nets, "fraction 1.0 halves the signals");
        assert!((c.signal_reduction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_routes_everything_once() {
        let c = Circuit::random(40, 2, 0.0, 3);
        assert_eq!(
            c.routed_nets(FpgaFlavor::Standard).len(),
            c.routed_nets(FpgaFlavor::CnfetPla).len()
        );
    }

    #[test]
    fn every_non_root_block_has_fanin() {
        let c = Circuit::random(30, 2, 0.5, 11);
        let mut has_in = [false; 30];
        for net in c.nets() {
            for &s in &net.sinks {
                has_in[s] = true;
            }
        }
        for (b, &ok) in has_in.iter().enumerate().skip(1) {
            assert!(ok, "block {b} has no inputs");
        }
    }

    #[test]
    #[should_panic(expected = "breaks DAG order")]
    fn backward_edge_rejected() {
        let _ = Circuit::new(
            3,
            vec![Net {
                source: 2,
                sinks: vec![1],
                is_complement: false,
            }],
        );
    }
}
