//! Length-prefixed binary wire protocol for the TCP front end.
//!
//! Every frame on the wire is `[u32 length (LE)][payload]`, where
//! `length` counts the payload bytes only and the payload is
//! `[u8 kind][body]` with every integer little-endian. The five frame
//! kinds:
//!
//! | kind | frame       | body layout                                             | payload bytes |
//! |------|-------------|---------------------------------------------------------|---------------|
//! | 0x01 | `Hello`     | magic `u32`, version `u8`, tenant `u64`                 | 14            |
//! | 0x02 | `HelloOk`   | magic `u32`, version `u8`                               | 6             |
//! | 0x03 | `Request`   | req_id `u64`, sim key `u64`, input bits `u64`           | 25            |
//! | 0x04 | `Reply`     | req_id `u64`, epoch `u64`, n_outputs `u16`, output words| 19 + 8·⌈n/64⌉ |
//! | 0x05 | `Error`     | req_id `u64`, error code `u8`                           | 10            |
//!
//! Reply output words pack output `i` into bit `i % 64` of word
//! `i / 64` — the same signal-major lane packing the simulator core
//! uses. Decoding is *exact*: a payload shorter than its layout is
//! [`WireError::Truncated`], a longer one is
//! [`WireError::TrailingBytes`], and nothing in this module panics on
//! attacker-controlled bytes (the codec proptest drives arbitrary junk
//! through [`decode_payload`] and [`FrameReader`]).

use ambipla_serve::SimKey;

use crate::tenant::TenantId;

/// Protocol magic carried by `Hello` / `HelloOk` frames: `"AMBP"` as a
/// big-endian u32 literal, written little-endian on the wire.
pub const MAGIC: u32 = 0x414d_4250;

/// Wire protocol version negotiated in the hello exchange.
pub const VERSION: u8 = 1;

/// Upper bound on a frame's payload size in bytes.
///
/// A length prefix above this is rejected as [`WireError::Oversized`]
/// before any buffering happens, so a hostile peer cannot make
/// [`FrameReader`] allocate unboundedly.
pub const MAX_FRAME: usize = 4096;

const KIND_HELLO: u8 = 0x01;
const KIND_HELLO_OK: u8 = 0x02;
const KIND_REQUEST: u8 = 0x03;
const KIND_REPLY: u8 = 0x04;
const KIND_ERROR: u8 = 0x05;

/// Typed request-rejection codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The target registration's bounded queue was full (service
    /// backpressure, the TCP face of `ambipla_serve::QueueFull`).
    QueueFull = 1,
    /// The request named a `SimKey` the server has not exposed.
    UnknownSim = 2,
    /// The request set input bits above the registration's input arity.
    BadArity = 3,
    /// The connection's tenant ran out of token-bucket quota.
    QuotaExceeded = 4,
}

impl ErrorCode {
    fn from_u8(raw: u8) -> Option<ErrorCode> {
        match raw {
            1 => Some(ErrorCode::QueueFull),
            2 => Some(ErrorCode::UnknownSim),
            3 => Some(ErrorCode::BadArity),
            4 => Some(ErrorCode::QuotaExceeded),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::UnknownSim => "unknown_sim",
            ErrorCode::BadArity => "bad_arity",
            ErrorCode::QuotaExceeded => "quota_exceeded",
        };
        f.write_str(name)
    }
}

/// A decoded protocol frame.
///
/// `Hello`/`HelloOk` are the connection handshake, `Request`/`Reply`
/// carry traffic (correlated by `req_id`, never by ordering — replies
/// stream back out of order), and `Error` is the typed per-request
/// rejection path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: authenticate the connection as `tenant`.
    Hello {
        /// Tenant every subsequent request on this connection bills to.
        tenant: TenantId,
    },
    /// Server → client: hello accepted, requests may flow.
    HelloOk,
    /// Client → server: evaluate `bits` on the registration exposed as
    /// `sim`.
    Request {
        /// Caller-chosen correlation id echoed in the `Reply`/`Error`.
        req_id: u64,
        /// Stable key of the target registration.
        sim: SimKey,
        /// Packed input vector (bit `i` = input `i`).
        bits: u64,
    },
    /// Server → client: outputs for the request tagged `req_id`.
    Reply {
        /// Correlation id of the request this answers.
        req_id: u64,
        /// Registration epoch that served the request (hot-swap
        /// generation — see `ambipla_serve::SimService::swap_sim`).
        epoch: u64,
        /// Output bits, `outputs[i]` = output `i`.
        outputs: Vec<bool>,
    },
    /// Server → client: the request tagged `req_id` was rejected.
    Error {
        /// Correlation id of the rejected request.
        req_id: u64,
        /// Why it was rejected.
        code: ErrorCode,
    },
}

/// Typed decode failures. Every malformed input maps to one of these —
/// the decoder never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before its layout was complete.
    Truncated {
        /// Bytes the layout requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The offending length prefix.
        len: usize,
    },
    /// A hello-family frame carried the wrong magic.
    BadMagic {
        /// The magic actually found.
        found: u32,
    },
    /// A hello-family frame carried an unsupported version.
    BadVersion {
        /// The version actually found.
        found: u8,
    },
    /// The payload's kind byte is not a known frame kind.
    UnknownKind {
        /// The kind byte actually found.
        found: u8,
    },
    /// An `Error` frame carried a code outside [`ErrorCode`].
    BadErrorCode {
        /// The code byte actually found.
        found: u8,
    },
    /// The payload was longer than its layout.
    TrailingBytes {
        /// Bytes the layout requires.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: length prefix {len} > {MAX_FRAME}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            WireError::BadVersion { found } => write!(f, "unsupported protocol version {found}"),
            WireError::UnknownKind { found } => write!(f, "unknown frame kind {found:#04x}"),
            WireError::BadErrorCode { found } => write!(f, "unknown error code {found}"),
            WireError::TrailingBytes { expected, got } => {
                write!(f, "trailing bytes: layout is {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// The decode helpers are only called after `check_len`/`check_exact`
// has validated the buffer, so indexing is in bounds; building the
// byte arrays element-wise keeps the `TryInto`-failure branch (and its
// panic machinery) out of the wire-parsing path entirely.

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        buf[at],
        buf[at + 1],
        buf[at + 2],
        buf[at + 3],
        buf[at + 4],
        buf[at + 5],
        buf[at + 6],
        buf[at + 7],
    ])
}

/// Append `frame` to `out` in wire form: `[u32 payload length][payload]`.
///
/// Encoding is infallible; `out` is appended to, not cleared, so a
/// caller can pack several frames into one write buffer.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len_at = out.len();
    put_u32(out, 0); // patched below once the payload length is known
    match frame {
        Frame::Hello { tenant } => {
            out.push(KIND_HELLO);
            put_u32(out, MAGIC);
            out.push(VERSION);
            put_u64(out, tenant.raw());
        }
        Frame::HelloOk => {
            out.push(KIND_HELLO_OK);
            put_u32(out, MAGIC);
            out.push(VERSION);
        }
        Frame::Request { req_id, sim, bits } => {
            out.push(KIND_REQUEST);
            put_u64(out, *req_id);
            put_u64(out, sim.raw());
            put_u64(out, *bits);
        }
        Frame::Reply {
            req_id,
            epoch,
            outputs,
        } => {
            out.push(KIND_REPLY);
            put_u64(out, *req_id);
            put_u64(out, *epoch);
            put_u16(out, outputs.len() as u16);
            for chunk in outputs.chunks(64) {
                let mut word = 0u64;
                for (i, &bit) in chunk.iter().enumerate() {
                    word |= (bit as u64) << i;
                }
                put_u64(out, word);
            }
        }
        Frame::Error { req_id, code } => {
            out.push(KIND_ERROR);
            put_u64(out, *req_id);
            out.push(*code as u8);
        }
    }
    let payload_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
}

fn check_exact(payload: &[u8], expected: usize) -> Result<(), WireError> {
    match payload.len().cmp(&expected) {
        std::cmp::Ordering::Less => Err(WireError::Truncated {
            needed: expected,
            got: payload.len(),
        }),
        std::cmp::Ordering::Greater => Err(WireError::TrailingBytes {
            expected,
            got: payload.len(),
        }),
        std::cmp::Ordering::Equal => Ok(()),
    }
}

fn check_hello_header(payload: &[u8]) -> Result<(), WireError> {
    let magic = get_u32(payload, 1);
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = payload[5];
    if version != VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    Ok(())
}

/// Decode one frame payload (the bytes *after* the length prefix).
///
/// Exact-length: short payloads are [`WireError::Truncated`], long ones
/// [`WireError::TrailingBytes`]. Never panics, whatever the input.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    if payload.is_empty() {
        return Err(WireError::Truncated { needed: 1, got: 0 });
    }
    match payload[0] {
        KIND_HELLO => {
            check_exact(payload, 14)?;
            check_hello_header(payload)?;
            Ok(Frame::Hello {
                tenant: TenantId::new(get_u64(payload, 6)),
            })
        }
        KIND_HELLO_OK => {
            check_exact(payload, 6)?;
            check_hello_header(payload)?;
            Ok(Frame::HelloOk)
        }
        KIND_REQUEST => {
            check_exact(payload, 25)?;
            Ok(Frame::Request {
                req_id: get_u64(payload, 1),
                sim: SimKey::new(get_u64(payload, 9)),
                bits: get_u64(payload, 17),
            })
        }
        KIND_REPLY => {
            if payload.len() < 19 {
                return Err(WireError::Truncated {
                    needed: 19,
                    got: payload.len(),
                });
            }
            let n_outputs = get_u16(payload, 17) as usize;
            let words = n_outputs.div_ceil(64);
            check_exact(payload, 19 + 8 * words)?;
            let mut outputs = Vec::with_capacity(n_outputs);
            for i in 0..n_outputs {
                let word = get_u64(payload, 19 + 8 * (i / 64));
                outputs.push(word >> (i % 64) & 1 == 1);
            }
            Ok(Frame::Reply {
                req_id: get_u64(payload, 1),
                epoch: get_u64(payload, 9),
                outputs,
            })
        }
        KIND_ERROR => {
            check_exact(payload, 10)?;
            let code = ErrorCode::from_u8(payload[9])
                .ok_or(WireError::BadErrorCode { found: payload[9] })?;
            Ok(Frame::Error {
                req_id: get_u64(payload, 1),
                code,
            })
        }
        other => Err(WireError::UnknownKind { found: other }),
    }
}

/// Incremental frame extractor over a byte stream.
///
/// Feed read chunks in with [`extend`](FrameReader::extend) — at
/// whatever fragmentation TCP hands them over — and pull complete
/// frames out with [`next_frame`](FrameReader::next_frame). Partial
/// frames stay buffered; an oversized length prefix or a malformed
/// payload surfaces as the typed [`WireError`], at which point the
/// stream is unrecoverable and the connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Buffer another chunk of stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt (the offending bytes are consumed, but a framing error
    /// leaves no way to resynchronize — drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = get_u32(avail, 0) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let result = decode_payload(payload);
        self.consumed += 4 + len;
        result.map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let len = get_u32(&wire, 0) as usize;
        assert_eq!(wire.len(), 4 + len);
        assert_eq!(decode_payload(&wire[4..]), Ok(frame));
    }

    /// Regression: the little-endian decode helpers were rewritten
    /// from `try_into().expect(..)` to element-wise array builds; pin
    /// the byte order and offsets against the `put_*` encoders.
    #[test]
    fn get_helpers_invert_put_helpers_at_any_offset() {
        let mut buf = vec![0xA5]; // leading junk: offsets must be honored
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_F00D);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&buf, 1), 0xBEEF);
        assert_eq!(get_u32(&buf, 3), 0xDEAD_F00D);
        assert_eq!(get_u64(&buf, 7), 0x0123_4567_89AB_CDEF);
        assert_eq!(&buf[1..3], &0xBEEFu16.to_le_bytes());
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            tenant: TenantId::new(42),
        });
        round_trip(Frame::HelloOk);
        round_trip(Frame::Request {
            req_id: u64::MAX,
            sim: SimKey::new(7),
            bits: 0b1011,
        });
        round_trip(Frame::Reply {
            req_id: 3,
            epoch: 9,
            outputs: vec![],
        });
        round_trip(Frame::Reply {
            req_id: 3,
            epoch: 9,
            outputs: (0..130).map(|i| i % 3 == 0).collect(),
        });
        round_trip(Frame::Error {
            req_id: 11,
            code: ErrorCode::QuotaExceeded,
        });
    }

    #[test]
    fn exact_length_is_enforced_both_ways() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Request {
                req_id: 1,
                sim: SimKey::new(2),
                bits: 3,
            },
            &mut wire,
        );
        let payload = &wire[4..];
        assert_eq!(
            decode_payload(&payload[..payload.len() - 1]),
            Err(WireError::Truncated {
                needed: 25,
                got: 24
            })
        );
        let mut long = payload.to_vec();
        long.push(0);
        assert_eq!(
            decode_payload(&long),
            Err(WireError::TrailingBytes {
                expected: 25,
                got: 26
            })
        );
    }

    #[test]
    fn hello_magic_and_version_are_checked() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Hello {
                tenant: TenantId::new(1),
            },
            &mut wire,
        );
        let mut payload = wire[4..].to_vec();
        payload[1] ^= 0xff;
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::BadMagic { .. })
        ));
        let mut payload = wire[4..].to_vec();
        payload[5] = 99;
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn unknown_kind_and_error_code_are_typed() {
        assert_eq!(
            decode_payload(&[0x77]),
            Err(WireError::UnknownKind { found: 0x77 })
        );
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Error {
                req_id: 5,
                code: ErrorCode::BadArity,
            },
            &mut wire,
        );
        let mut payload = wire[4..].to_vec();
        payload[9] = 200;
        assert_eq!(
            decode_payload(&payload),
            Err(WireError::BadErrorCode { found: 200 })
        );
    }

    #[test]
    fn reader_reassembles_fragmented_frames() {
        let mut wire = Vec::new();
        for i in 0..10u64 {
            encode_frame(
                &Frame::Request {
                    req_id: i,
                    sim: SimKey::new(i * 3),
                    bits: i * 7,
                },
                &mut wire,
            );
        }
        // Feed one byte at a time — worst-case fragmentation.
        let mut reader = FrameReader::new();
        let mut seen = 0u64;
        for &b in &wire {
            reader.extend(&[b]);
            while let Some(frame) = reader.next_frame().expect("clean stream") {
                match frame {
                    Frame::Request { req_id, sim, bits } => {
                        assert_eq!(req_id, seen);
                        assert_eq!(sim.raw(), seen * 3);
                        assert_eq!(bits, seen * 7);
                        seen += 1;
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        }
        assert_eq!(seen, 10);
        assert_eq!(reader.next_frame(), Ok(None));
    }

    #[test]
    fn reader_rejects_oversized_length_prefix() {
        let mut reader = FrameReader::new();
        reader.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(
            reader.next_frame(),
            Err(WireError::Oversized { len: MAX_FRAME + 1 })
        );
    }
}
