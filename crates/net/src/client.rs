//! Blocking client for the wire protocol — the reference peer used by
//! tests, benches and demos (and a template for real clients).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ambipla_serve::SimKey;

use crate::protocol::{encode_frame, Frame, FrameReader, WireError};
use crate::tenant::TenantId;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level error (includes `UnexpectedEof` when the server
    /// closes mid-frame).
    Io(std::io::Error),
    /// The server sent bytes the codec rejects.
    Wire(WireError),
    /// The server sent a well-formed frame the client did not expect
    /// here (e.g. something other than `HelloOk` during the handshake).
    UnexpectedFrame,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::UnexpectedFrame => f.write_str("unexpected frame"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`NetServer`](crate::NetServer),
/// authenticated as one tenant.
///
/// Requests can be pipelined: queue many with
/// [`queue_request`](NetClient::queue_request), [`flush`](NetClient::flush)
/// once, then collect replies with [`recv`](NetClient::recv) —
/// correlating by `req_id`, since the server replies out of order.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl NetClient {
    /// Connect, send the hello for `tenant`, and wait for `HelloOk`.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: TenantId) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = NetClient {
            stream,
            reader: FrameReader::new(),
            rbuf: vec![0u8; 16 * 1024],
            wbuf: Vec::new(),
        };
        encode_frame(&Frame::Hello { tenant }, &mut client.wbuf);
        client.flush()?;
        match client.recv()? {
            Frame::HelloOk => Ok(client),
            _ => Err(ClientError::UnexpectedFrame),
        }
    }

    /// Encode a request into the write buffer (nothing hits the socket
    /// until [`flush`](NetClient::flush)).
    pub fn queue_request(&mut self, sim: SimKey, req_id: u64, bits: u64) {
        encode_frame(&Frame::Request { req_id, sim, bits }, &mut self.wbuf);
    }

    /// Write every buffered frame to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.stream.write_all(&self.wbuf)?;
        self.wbuf.clear();
        Ok(())
    }

    /// Block until the next frame arrives from the server.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(frame);
            }
            let n = self.stream.read(&mut self.rbuf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.reader.extend(&self.rbuf[..n]);
        }
    }

    /// One full round trip: send a single request, wait for its
    /// `Reply` or `Error` frame.
    pub fn call(&mut self, sim: SimKey, req_id: u64, bits: u64) -> Result<Frame, ClientError> {
        self.queue_request(sim, req_id, bits);
        self.flush()?;
        self.recv()
    }
}
