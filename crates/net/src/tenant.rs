//! Tenant identity, token-bucket quotas and per-tenant counters.
//!
//! Every connection authenticates a [`TenantId`] in its hello frame;
//! all requests on the connection bill against that tenant's
//! [`TokenBucket`] (admission quota) and are accounted in its
//! [`TenantState`] counters. The [`TenantRegistry`] owns the per-tenant
//! state, creating entries on first sight with the server's default
//! [`QuotaConfig`].
//!
//! Quota math is integer-only: the bucket stores *micro-tokens*
//! (1 request = 1_000_000 micro-tokens) and refills
//! `rate_per_sec` tokens per second of monotonic time, capped at
//! `burst` tokens, so sub-millisecond request spacing accrues credit
//! without floating point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Micro-tokens per request.
const MICRO: u128 = 1_000_000;

/// Opaque tenant identity carried in the hello frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// Wrap a raw tenant id.
    pub fn new(raw: u64) -> TenantId {
        TenantId(raw)
    }

    /// The raw id (what goes on the wire and into metric labels).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Token-bucket parameters for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Sustained admission rate in requests per second.
    pub rate_per_sec: u64,
    /// Bucket capacity: how many requests may burst above the rate.
    pub burst: u64,
}

impl QuotaConfig {
    /// A quota that never rejects (both fields `u64::MAX`).
    pub fn unlimited() -> QuotaConfig {
        QuotaConfig {
            rate_per_sec: u64::MAX,
            burst: u64::MAX,
        }
    }

    /// Whether this quota is the [`unlimited`](QuotaConfig::unlimited)
    /// sentinel.
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec == u64::MAX && self.burst == u64::MAX
    }
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig::unlimited()
    }
}

/// Integer-math token bucket over monotonic nanosecond timestamps.
#[derive(Debug)]
pub struct TokenBucket {
    config: QuotaConfig,
    /// Current credit in micro-tokens.
    micro: u128,
    /// Timestamp of the last refill.
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket starting full (at `burst` tokens) as of `now_ns`.
    pub fn new(config: QuotaConfig, now_ns: u64) -> TokenBucket {
        TokenBucket {
            config,
            micro: (config.burst as u128).saturating_mul(MICRO),
            last_ns: now_ns,
        }
    }

    /// Take one token if available; `false` means "over quota".
    ///
    /// Refills first: `dt_ns × rate_per_sec / 1000` micro-tokens since
    /// the last call, capped at `burst` tokens. Unlimited quotas
    /// short-circuit to `true`.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        if self.config.is_unlimited() {
            return true;
        }
        let dt_ns = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        let cap = (self.config.burst as u128).saturating_mul(MICRO);
        // rate tokens/sec = rate micro-tokens/µs = rate/1000 micro-tokens/ns.
        let gained = dt_ns as u128 * self.config.rate_per_sec as u128 / 1000;
        self.micro = (self.micro + gained).min(cap);
        if self.micro >= MICRO {
            self.micro -= MICRO;
            true
        } else {
            false
        }
    }

    /// The parameters this bucket enforces.
    pub fn config(&self) -> QuotaConfig {
        self.config
    }
}

/// Live per-tenant accounting: quota bucket plus lock-free counters.
#[derive(Debug)]
pub struct TenantState {
    /// The tenant these counters belong to.
    pub id: TenantId,
    bucket: RwLock<TokenBucket>,
    accepted: AtomicU64,
    quota_rejected: AtomicU64,
    queue_full: AtomicU64,
    unknown_sim: AtomicU64,
    bad_arity: AtomicU64,
    replies: AtomicU64,
    connections: AtomicU64,
    accepts: AtomicU64,
}

impl TenantState {
    fn new(id: TenantId, quota: QuotaConfig, now_ns: u64) -> TenantState {
        TenantState {
            id,
            bucket: RwLock::new(TokenBucket::new(quota, now_ns)),
            accepted: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            unknown_sim: AtomicU64::new(0),
            bad_arity: AtomicU64::new(0),
            replies: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
        }
    }

    /// Spend one quota token; `false` means the request must be
    /// rejected with `QuotaExceeded`.
    pub fn try_take_token(&self, now_ns: u64) -> bool {
        // Poison recovery: the bucket is a pair of scalars that every
        // mutation leaves consistent, and quota accounting must not
        // panic on the dispatch path.
        self.bucket
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .try_take(now_ns)
    }

    /// Replace the tenant's quota (the new bucket starts full).
    pub fn set_quota(&self, quota: QuotaConfig, now_ns: u64) {
        *self
            .bucket
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = TokenBucket::new(quota, now_ns);
    }

    /// Count a request admitted past quota into the scheduler.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a quota rejection.
    pub fn record_quota_reject(&self) {
        self.quota_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a service-backpressure rejection.
    pub fn record_queue_full(&self) {
        self.queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request naming an unexposed sim.
    pub fn record_unknown_sim(&self) {
        self.unknown_sim.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request with out-of-arity input bits.
    pub fn record_bad_arity(&self) {
        self.bad_arity.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a reply streamed back to the tenant.
    pub fn record_reply(&self) {
        self.replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Track a connection opening (bumps the live gauge and the
    /// lifetime accept counter).
    pub fn record_connect(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.accepts.fetch_add(1, Ordering::Relaxed);
    }

    /// Track a connection closing (decrements the live gauge).
    pub fn record_disconnect(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            id: self.id,
            accepted: self.accepted.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            unknown_sim: self.unknown_sim.load(Ordering::Relaxed),
            bad_arity: self.bad_arity.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one tenant's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Which tenant.
    pub id: TenantId,
    /// Requests admitted past quota into the scheduler.
    pub accepted: u64,
    /// Requests rejected by the token bucket.
    pub quota_rejected: u64,
    /// Requests rejected by service backpressure.
    pub queue_full: u64,
    /// Requests naming an unexposed sim.
    pub unknown_sim: u64,
    /// Requests with input bits above the target's arity.
    pub bad_arity: u64,
    /// Replies streamed back.
    pub replies: u64,
    /// Currently open connections (gauge).
    pub connections: u64,
    /// Lifetime accepted connections.
    pub accepts: u64,
}

/// Registry of per-tenant state, keyed by raw tenant id.
///
/// Tenants materialize on first hello with `default_quota`; quotas can
/// be tightened per tenant afterwards via
/// [`set_quota`](TenantRegistry::set_quota).
#[derive(Debug)]
pub struct TenantRegistry {
    default_quota: QuotaConfig,
    tenants: RwLock<HashMap<u64, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// A registry handing new tenants `default_quota`.
    pub fn new(default_quota: QuotaConfig) -> TenantRegistry {
        TenantRegistry {
            default_quota,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// The tenant's state, created with the default quota on first use.
    pub fn get_or_create(&self, id: TenantId, now_ns: u64) -> Arc<TenantState> {
        // Poison recovery (here and below): the map's values are Arcs
        // swapped in atomically; a panic elsewhere cannot leave a
        // half-inserted entry, so the state is safe to reuse.
        if let Some(state) = self
            .tenants
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&id.raw())
        {
            return Arc::clone(state);
        }
        let mut map = self
            .tenants
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(
            map.entry(id.raw())
                .or_insert_with(|| Arc::new(TenantState::new(id, self.default_quota, now_ns))),
        )
    }

    /// Set (or reset) one tenant's quota; creates the tenant if new.
    pub fn set_quota(&self, id: TenantId, quota: QuotaConfig, now_ns: u64) {
        self.get_or_create(id, now_ns).set_quota(quota, now_ns);
    }

    /// Snapshots of every known tenant, sorted by tenant id.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        let mut out: Vec<TenantSnapshot> = self
            .tenants
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(|t| t.snapshot())
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_bucket_never_rejects() {
        let mut b = TokenBucket::new(QuotaConfig::unlimited(), 0);
        for t in 0..10_000u64 {
            assert!(b.try_take(t));
        }
    }

    #[test]
    fn bucket_burst_then_rate_refill() {
        // 5-token burst, 1000 req/s → one token per millisecond.
        let q = QuotaConfig {
            rate_per_sec: 1000,
            burst: 5,
        };
        let mut b = TokenBucket::new(q, 0);
        for _ in 0..5 {
            assert!(b.try_take(0), "burst tokens");
        }
        assert!(!b.try_take(0), "bucket drained");
        assert!(!b.try_take(999_999), "1µs shy of a refill");
        assert!(b.try_take(1_000_000 + 999_999), "1ms refills one token");
        assert!(!b.try_take(1_000_000 + 999_999), "and only one");
    }

    #[test]
    fn bucket_refill_caps_at_burst() {
        let q = QuotaConfig {
            rate_per_sec: 1_000_000,
            burst: 3,
        };
        let mut b = TokenBucket::new(q, 0);
        // A long idle period must not accrue more than `burst` tokens.
        let late = 60 * 1_000_000_000;
        for i in 0..3 {
            assert!(b.try_take(late + i), "token {i} of the refilled burst");
        }
        assert!(!b.try_take(late + 3), "capped at burst");
    }

    #[test]
    fn zero_rate_quota_is_burst_only() {
        let q = QuotaConfig {
            rate_per_sec: 0,
            burst: 2,
        };
        let mut b = TokenBucket::new(q, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(1));
        assert!(!b.try_take(u64::MAX / 2), "never refills");
    }

    #[test]
    fn registry_creates_once_and_snapshots_sorted() {
        let reg = TenantRegistry::new(QuotaConfig::unlimited());
        let b = reg.get_or_create(TenantId::new(9), 0);
        let a = reg.get_or_create(TenantId::new(2), 0);
        let b2 = reg.get_or_create(TenantId::new(9), 0);
        assert!(Arc::ptr_eq(&b, &b2));
        a.record_accepted();
        b.record_connect();
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].id, TenantId::new(2));
        assert_eq!(snaps[0].accepted, 1);
        assert_eq!(snaps[1].id, TenantId::new(9));
        assert_eq!((snaps[1].connections, snaps[1].accepts), (1, 1));
    }

    #[test]
    fn set_quota_replaces_bucket() {
        let reg = TenantRegistry::new(QuotaConfig::unlimited());
        let t = reg.get_or_create(TenantId::new(1), 0);
        assert!(t.try_take_token(0));
        reg.set_quota(
            TenantId::new(1),
            QuotaConfig {
                rate_per_sec: 0,
                burst: 1,
            },
            0,
        );
        assert!(t.try_take_token(0), "new bucket starts full");
        assert!(!t.try_take_token(0), "then enforces");
    }

    /// Regression for the poison-recovery change: quota accounting
    /// used to `.expect("bucket lock")` — one panicking thread holding
    /// the bucket would then panic every later request. It now recovers
    /// the guard and keeps enforcing the quota.
    #[test]
    fn quota_survives_a_poisoned_bucket_lock() {
        let reg = TenantRegistry::new(QuotaConfig {
            rate_per_sec: 0,
            burst: 2,
        });
        let t = reg.get_or_create(TenantId::new(7), 0);
        assert!(t.try_take_token(0));
        // Poison both the registry map lock and the bucket lock.
        let t2 = Arc::clone(&t);
        let _ = std::thread::spawn(move || {
            let _bucket = t2.bucket.write().unwrap();
            panic!("poison the bucket");
        })
        .join();
        let reg2 = &reg;
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _map = reg2.tenants.write().unwrap();
                panic!("poison the registry");
            })
            .join()
        });
        // Same state handed back, quota still enforced from where it was.
        let again = reg.get_or_create(TenantId::new(7), 0);
        assert!(Arc::ptr_eq(&t, &again));
        assert!(again.try_take_token(0), "second burst token survives");
        assert!(!again.try_take_token(0), "cap still enforced");
        assert_eq!(reg.snapshots().len(), 1, "snapshots also recover");
    }
}
