//! The TCP front end: accept loop, per-connection poll threads, and the
//! deficit-round-robin dispatcher feeding the sharded [`SimService`].
//!
//! ```text
//!  TCP clients      ┌────────────────────────── NetServer ─────────────────────────┐
//!  Hello{tenant} ───┤ conn threads         DRR scheduler          dispatcher       │
//!  Request ─────────┼▶ decode → route      [tenant 1  ████░]      try_submit_tagged│
//!  Request ─────────┤  → arity → quota  ─▶ [tenant 2  █░░░░] ──▶  → SimService     │
//!   └─ Error ◀──────┤  (token bucket)      quantum per turn        shards          │
//!  Reply ◀──────────┴── per-conn reply stream ◀── scatter ◀── batcher flush ───────┘
//! ```
//!
//! Each connection authenticates one [`TenantId`] in its hello frame,
//! then streams requests; admission control (unknown sim, arity, quota)
//! happens on the connection thread, fair scheduling across tenants
//! happens in the internal scheduler (deficit round robin, one queue
//! per tenant), and a single dispatcher thread drains scheduled batches
//! into the sharded service. Replies come back per-connection over the
//! service's shared reply channel and are streamed out of order,
//! correlated by `req_id`.
//!
//! Everything is plain blocking/nonblocking `std::net` — no async
//! runtime exists in the offline build environment, so connections use
//! nonblocking sockets with a yield-then-sleep poll loop.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use ambipla_obs::{monotonic_ns, Event, EventKind, MetricFamily, MetricKind, Recorder, Sample};
use ambipla_serve::{reply_channel, ReplySink, SharedSim, SimId, SimKey, SimService};

use crate::protocol::{encode_frame, ErrorCode, Frame, FrameReader};
use crate::tenant::{QuotaConfig, TenantId, TenantRegistry, TenantSnapshot, TenantState};

/// Front-end configuration (the service itself is configured by
/// `ambipla_serve::ServeConfig`).
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Quota handed to tenants on first hello (default: unlimited).
    pub default_quota: QuotaConfig,
    /// Deficit-round-robin quantum: how many requests one tenant may
    /// dispatch per scheduling turn before the next tenant runs.
    pub quantum: usize,
    /// Per-tenant cap on requests waiting in the scheduler; admissions
    /// beyond it are rejected as `QueueFull` before reaching the
    /// service.
    pub tenant_pending: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            default_quota: QuotaConfig::unlimited(),
            quantum: 64,
            tenant_pending: 4096,
        }
    }
}

/// An exposed registration: service id plus its input mask.
#[derive(Debug, Clone, Copy)]
struct Route {
    id: SimId,
    /// Bits a request may legally set: `(1 << n_inputs) - 1`.
    mask: u64,
}

/// Error frames the dispatcher owes a connection (service-level
/// `QueueFull` discovered after the scheduler already accepted the
/// request).
#[derive(Debug, Default)]
struct ConnShared {
    errors: Mutex<Vec<(u64, ErrorCode)>>,
}

/// One admitted request waiting for dispatch.
struct Pending {
    route: Route,
    bits: u64,
    req_id: u64,
    sink: ReplySink,
    tenant: Arc<TenantState>,
    conn: Arc<ConnShared>,
}

/// One tenant's scheduler queue.
struct TenantQueue {
    deficit: usize,
    q: VecDeque<Pending>,
    /// Whether this queue currently sits in the active rotation.
    active: bool,
}

struct SchedInner {
    queues: Vec<TenantQueue>,
    /// Tenant raw id → index into `queues`.
    slot_of: HashMap<u64, usize>,
    /// Round-robin rotation of queues with work.
    rotation: VecDeque<usize>,
    stopping: bool,
}

/// Deficit-round-robin scheduler: per-tenant FIFO queues, each granted
/// `quantum` dispatch credits per rotation turn, so a firehose tenant
/// cannot starve a trickle tenant however deep its backlog.
struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
    quantum: usize,
    tenant_pending: usize,
}

impl Scheduler {
    fn new(quantum: usize, tenant_pending: usize) -> Scheduler {
        Scheduler {
            inner: Mutex::new(SchedInner {
                queues: Vec::new(),
                slot_of: HashMap::new(),
                rotation: VecDeque::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
            quantum: quantum.max(1),
            tenant_pending: tenant_pending.max(1),
        }
    }

    /// The queue slot for a tenant, created on first use.
    ///
    /// Lock poisoning throughout the scheduler is recovered with
    /// `PoisonError::into_inner`: queue state is a set of independent
    /// FIFOs plus counters, every mutation leaves it consistent, and a
    /// panicking dispatcher must not take the whole listener down.
    fn tenant_slot(&self, raw: u64) -> usize {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&slot) = inner.slot_of.get(&raw) {
            return slot;
        }
        let slot = inner.queues.len();
        inner.queues.push(TenantQueue {
            deficit: 0,
            q: VecDeque::new(),
            active: false,
        });
        inner.slot_of.insert(raw, slot);
        slot
    }

    /// Queue a batch of admitted requests for `slot`; returns the ones
    /// rejected by the per-tenant pending cap.
    fn enqueue(&self, slot: usize, batch: Vec<Pending>) -> Vec<Pending> {
        let mut rejected = Vec::new();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for p in batch {
            let tq = &mut inner.queues[slot];
            if tq.q.len() >= self.tenant_pending {
                rejected.push(p);
            } else {
                tq.q.push_back(p);
            }
        }
        let tq = &mut inner.queues[slot];
        if !tq.q.is_empty() && !tq.active {
            tq.active = true;
            inner.rotation.push_back(slot);
        }
        drop(inner);
        self.cv.notify_one();
        rejected
    }

    /// Block for the next DRR batch; `None` only after [`stop`] once
    /// every queue has drained, so shutdown never drops admitted work.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(slot) = inner.rotation.pop_front() {
                let quantum = self.quantum;
                let tq = &mut inner.queues[slot];
                tq.deficit += quantum;
                let take = tq.deficit.min(tq.q.len());
                let batch: Vec<Pending> = tq.q.drain(..take).collect();
                tq.deficit -= take;
                if tq.q.is_empty() {
                    tq.active = false;
                    tq.deficit = 0;
                } else {
                    inner.rotation.push_back(slot);
                }
                if !batch.is_empty() {
                    return Some(batch);
                }
                continue;
            }
            if inner.stopping {
                return None;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn stop(&self) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .stopping = true;
        self.cv.notify_all();
    }
}

/// Shared state between accept loop, connection threads and dispatcher.
struct ServerCtx {
    service: Arc<SimService>,
    /// Raw `SimKey` → route, for the request hot path.
    routes: RwLock<HashMap<u64, Route>>,
    tenants: TenantRegistry,
    sched: Scheduler,
    recorder: Option<Arc<dyn Recorder>>,
    stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
    conn_seq: AtomicU32,
}

impl ServerCtx {
    fn record(&self, kind: EventKind) {
        if let Some(r) = &self.recorder {
            r.record(Event::now(kind));
        }
    }
}

/// The multi-tenant TCP front end over a (typically sharded)
/// [`SimService`].
///
/// ```no_run
/// use ambipla_net::{NetClient, NetConfig, NetServer, TenantId};
/// use ambipla_serve::{SimKey, SimService};
/// use logic::Cover;
/// use std::sync::Arc;
///
/// let service = Arc::new(SimService::with_defaults());
/// let server =
///     NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default()).unwrap();
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let key = SimKey::of_cover(&xor);
/// server.register_sim(Arc::new(xor), key);
///
/// let mut client = NetClient::connect(server.local_addr(), TenantId::new(1)).unwrap();
/// match client.call(key, 7, 0b01).unwrap() {
///     ambipla_net::Frame::Reply { req_id, outputs, .. } => {
///         assert_eq!((req_id, outputs), (7, vec![true]));
///     }
///     other => panic!("unexpected frame {other:?}"),
/// }
/// ```
pub struct NetServer {
    ctx: Arc<ServerCtx>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept loop and dispatcher over `service`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<SimService>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_inner(addr, service, config, None)
    }

    /// [`bind`](NetServer::bind), with connection-lifecycle and
    /// quota-reject events flowing to `recorder`.
    pub fn bind_with_recorder<A: ToSocketAddrs>(
        addr: A,
        service: Arc<SimService>,
        config: NetConfig,
        recorder: Arc<dyn Recorder>,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_inner(addr, service, config, Some(recorder))
    }

    fn bind_inner<A: ToSocketAddrs>(
        addr: A,
        service: Arc<SimService>,
        config: NetConfig,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            service,
            routes: RwLock::new(HashMap::new()),
            tenants: TenantRegistry::new(config.default_quota),
            sched: Scheduler::new(config.quantum, config.tenant_pending),
            recorder,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU32::new(0),
        });
        let accept_ctx = Arc::clone(&ctx);
        // Thread spawning can fail under resource exhaustion; bind
        // already returns io::Result, so surface it instead of panicking.
        let accept = std::thread::Builder::new()
            .name("ambipla-net-accept".into())
            .spawn(move || accept_loop(listener, accept_ctx))?;
        let disp_ctx = Arc::clone(&ctx);
        let dispatcher = match std::thread::Builder::new()
            .name("ambipla-net-dispatch".into())
            .spawn(move || dispatch_loop(disp_ctx))
        {
            Ok(handle) => handle,
            Err(e) => {
                // Unwind the half-started server: stop the accept loop
                // and reap it before reporting the error.
                ctx.stop.store(true, Ordering::Relaxed);
                ctx.sched.stop();
                let _ = accept.join();
                return Err(e);
            }
        };
        Ok(NetServer {
            ctx,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            addr,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Expose an already-registered service id under `key` so network
    /// requests can reach it.
    pub fn expose(&self, key: SimKey, id: SimId) {
        let (n_inputs, _) = self.ctx.service.arity(id);
        let mask = if n_inputs >= 64 {
            !0
        } else {
            (1u64 << n_inputs) - 1
        };
        self.ctx
            .routes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.raw(), Route { id, mask });
    }

    /// Register `sim` on the service under `key` and expose it in one
    /// step.
    pub fn register_sim(&self, sim: SharedSim, key: SimKey) -> SimId {
        let id = self.ctx.service.register_sim(sim, key);
        self.expose(key, id);
        id
    }

    /// Set (or reset) `tenant`'s quota; the new token bucket starts
    /// full.
    pub fn set_quota(&self, tenant: TenantId, quota: QuotaConfig) {
        self.ctx.tenants.set_quota(tenant, quota, monotonic_ns());
    }

    /// Per-tenant counter snapshots, sorted by tenant id.
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.ctx.tenants.snapshots()
    }

    /// Front-end metric families, every sample labeled by `tenant`.
    ///
    /// Seven families: requests, quota rejects, queue-full rejects, bad
    /// requests (labeled by `kind`), replies, live connections (gauge)
    /// and lifetime accepts. Service-side families come from
    /// `SimService::metric_families` — concatenate for a full scrape.
    pub fn metric_families(&self) -> Vec<MetricFamily> {
        let snaps = self.ctx.tenants.snapshots();
        let tl = |s: &TenantSnapshot| vec![("tenant".to_string(), s.id.raw().to_string())];
        let counter = |name: &'static str, help: &'static str, pick: fn(&TenantSnapshot) -> u64| {
            MetricFamily::new(
                name,
                help,
                MetricKind::Counter,
                snaps
                    .iter()
                    .map(|s| Sample::new(tl(s), pick(s) as f64))
                    .collect(),
            )
        };
        let mut bad = Vec::new();
        for s in &snaps {
            let mut labels = tl(s);
            labels.push(("kind".to_string(), "unknown_sim".to_string()));
            bad.push(Sample::new(labels, s.unknown_sim as f64));
            let mut labels = tl(s);
            labels.push(("kind".to_string(), "bad_arity".to_string()));
            bad.push(Sample::new(labels, s.bad_arity as f64));
        }
        vec![
            counter(
                "ambipla_net_requests_total",
                "Requests admitted past quota into the scheduler",
                |s| s.accepted,
            ),
            counter(
                "ambipla_net_quota_rejects_total",
                "Requests rejected by the tenant token bucket",
                |s| s.quota_rejected,
            ),
            counter(
                "ambipla_net_queue_full_total",
                "Requests rejected by scheduler or service backpressure",
                |s| s.queue_full,
            ),
            MetricFamily::new(
                "ambipla_net_bad_requests_total",
                "Malformed requests (unknown sim key or out-of-arity bits)",
                MetricKind::Counter,
                bad,
            ),
            counter(
                "ambipla_net_replies_total",
                "Replies streamed back to clients",
                |s| s.replies,
            ),
            MetricFamily::new(
                "ambipla_net_connections",
                "Currently open authenticated connections",
                MetricKind::Gauge,
                snaps
                    .iter()
                    .map(|s| Sample::new(tl(s), s.connections as f64))
                    .collect(),
            ),
            counter(
                "ambipla_net_accepts_total",
                "Lifetime authenticated connections",
                |s| s.accepts,
            ),
        ]
    }

    fn stop_threads(&mut self) {
        // Relaxed store/load on the stop flag: it is a standalone
        // cooperative-shutdown bit guarding no other data, and the
        // thread joins below provide the synchronization for everything
        // the loops touched. SeqCst would buy nothing here.
        self.ctx.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .ctx
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in conns {
            let _ = h.join();
        }
        // Connections are gone; drain whatever they admitted, then stop.
        self.ctx.sched.stop();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, close every connection, drain the scheduler and
    /// join all threads. The underlying service keeps running.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    // Relaxed load: cooperative stop flag, synchronized by join (see
    // stop_threads).
    while !ctx.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Relaxed: monotonic connection-id allocator; ids only
                // need uniqueness, not ordering against other data.
                let slot = ctx.conn_seq.fetch_add(1, Ordering::Relaxed);
                let conn_ctx = Arc::clone(&ctx);
                match std::thread::Builder::new()
                    .name(format!("ambipla-net-conn-{slot}"))
                    .spawn(move || conn_loop(stream, slot, conn_ctx))
                {
                    Ok(handle) => ctx
                        .conns
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(handle),
                    // Spawn failure (fd/thread exhaustion): drop the
                    // stream, refusing this connection, and keep serving
                    // the ones we have.
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => break,
        }
    }
}

fn dispatch_loop(ctx: Arc<ServerCtx>) {
    while let Some(batch) = ctx.sched.next_batch() {
        for p in batch {
            match ctx
                .service
                .try_submit_tagged(p.route.id, p.bits, p.req_id, &p.sink)
            {
                Ok(()) => {}
                Err(_) => {
                    p.tenant.record_queue_full();
                    p.conn
                        .errors
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((p.req_id, ErrorCode::QueueFull));
                }
            }
        }
    }
}

/// Poll-loop idle backoff: spin `YIELDS` scheduler yields, then sleep.
const IDLE_YIELDS: u32 = 64;
const IDLE_SLEEP: Duration = Duration::from_micros(200);

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Pending outbound bytes (encoded frames) and the write cursor.
    out: Vec<u8>,
    out_pos: usize,
    rbuf: Vec<u8>,
}

impl Conn {
    /// Nonblocking read; `Ok(true)` = progress, `Ok(false)` = would
    /// block, `Err` = EOF or hard error (drop the connection).
    fn pump_read(&mut self) -> Result<bool, ()> {
        match self.stream.read(&mut self.rbuf) {
            Ok(0) => Err(()),
            Ok(n) => {
                self.reader.extend(&self.rbuf[..n]);
                Ok(true)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(false),
            Err(_) => Err(()),
        }
    }

    /// Nonblocking write of buffered frames; same contract as
    /// [`pump_read`](Conn::pump_read).
    fn pump_write(&mut self) -> Result<bool, ()> {
        if self.out_pos == self.out.len() {
            if !self.out.is_empty() {
                self.out.clear();
                self.out_pos = 0;
            }
            return Ok(false);
        }
        match self.stream.write(&self.out[self.out_pos..]) {
            Ok(0) => Err(()),
            Ok(n) => {
                self.out_pos += n;
                if self.out_pos == self.out.len() {
                    self.out.clear();
                    self.out_pos = 0;
                }
                Ok(true)
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(false),
            Err(_) => Err(()),
        }
    }

    fn queue_frame(&mut self, frame: &Frame) {
        encode_frame(frame, &mut self.out);
    }
}

/// Wait for the client's `Hello` and answer `HelloOk`.
///
/// Returns the authenticated tenant, or `None` if the stream errored,
/// sent garbage, opened with any other frame, or the server stopped.
fn hello_phase(conn: &mut Conn, ctx: &ServerCtx) -> Option<TenantId> {
    let mut idle = 0u32;
    loop {
        // Relaxed: cooperative stop flag, synchronized by thread join.
        if ctx.stop.load(Ordering::Relaxed) {
            return None;
        }
        match conn.reader.next_frame() {
            Ok(Some(Frame::Hello { tenant })) => {
                conn.queue_frame(&Frame::HelloOk);
                return Some(tenant);
            }
            Ok(Some(_)) => return None,
            Err(_) => return None,
            Ok(None) => {}
        }
        match conn.pump_read() {
            Ok(true) => idle = 0,
            Ok(false) => {
                idle += 1;
                if idle <= IDLE_YIELDS {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(IDLE_SLEEP);
                }
            }
            Err(()) => return None,
        }
    }
}

fn conn_loop(stream: TcpStream, conn_slot: u32, ctx: Arc<ServerCtx>) {
    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut conn = Conn {
        stream,
        reader: FrameReader::new(),
        out: Vec::new(),
        out_pos: 0,
        rbuf: vec![0u8; 16 * 1024],
    };
    let Some(tenant_id) = hello_phase(&mut conn, &ctx) else {
        return;
    };
    let tenant = ctx.tenants.get_or_create(tenant_id, monotonic_ns());
    tenant.record_connect();
    ctx.record(EventKind::Accept {
        tenant: tenant_id.raw(),
        slot: conn_slot,
    });
    let slot = ctx.sched.tenant_slot(tenant_id.raw());
    let shared = Arc::new(ConnShared::default());
    let (sink, replies) = reply_channel();
    let mut admitted: Vec<Pending> = Vec::new();
    let mut idle = 0u32;
    let mut alive = true;

    // Relaxed: cooperative stop flag, synchronized by thread join.
    while alive && !ctx.stop.load(Ordering::Relaxed) {
        let mut progress = false;

        // 1. Pull bytes off the socket.
        match conn.pump_read() {
            Ok(p) => progress |= p,
            Err(()) => alive = false,
        }

        // 2. Decode and admit requests.
        loop {
            match conn.reader.next_frame() {
                Ok(Some(Frame::Request { req_id, sim, bits })) => {
                    progress = true;
                    let route = ctx
                        .routes
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .get(&sim.raw())
                        .copied();
                    match route {
                        None => {
                            tenant.record_unknown_sim();
                            conn.queue_frame(&Frame::Error {
                                req_id,
                                code: ErrorCode::UnknownSim,
                            });
                        }
                        Some(route) if bits & !route.mask != 0 => {
                            tenant.record_bad_arity();
                            conn.queue_frame(&Frame::Error {
                                req_id,
                                code: ErrorCode::BadArity,
                            });
                        }
                        Some(route) => {
                            if tenant.try_take_token(monotonic_ns()) {
                                tenant.record_accepted();
                                admitted.push(Pending {
                                    route,
                                    bits,
                                    req_id,
                                    sink: sink.clone(),
                                    tenant: Arc::clone(&tenant),
                                    conn: Arc::clone(&shared),
                                });
                            } else {
                                tenant.record_quota_reject();
                                ctx.record(EventKind::QuotaReject {
                                    tenant: tenant_id.raw(),
                                    slot: route.id.slot_index(),
                                });
                                conn.queue_frame(&Frame::Error {
                                    req_id,
                                    code: ErrorCode::QuotaExceeded,
                                });
                            }
                        }
                    }
                }
                // Anything else post-hello is a protocol violation.
                Ok(Some(_)) | Err(_) => {
                    alive = false;
                    break;
                }
                Ok(None) => break,
            }
        }

        // 3. Hand admitted requests to the fair scheduler; over-cap
        //    spillback becomes QueueFull errors right here.
        if !admitted.is_empty() {
            progress = true;
            for p in ctx.sched.enqueue(slot, std::mem::take(&mut admitted)) {
                p.tenant.record_queue_full();
                conn.queue_frame(&Frame::Error {
                    req_id: p.req_id,
                    code: ErrorCode::QueueFull,
                });
            }
        }

        // 4. Errors the dispatcher reported for this connection.
        {
            let mut errs = shared
                .errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (req_id, code) in errs.drain(..) {
                progress = true;
                conn.queue_frame(&Frame::Error { req_id, code });
            }
        }

        // 5. Stream replies back, out of order, correlated by tag.
        while let Some(r) = replies.try_recv() {
            progress = true;
            tenant.record_reply();
            conn.queue_frame(&Frame::Reply {
                req_id: r.tag,
                epoch: r.epoch,
                outputs: r.outputs,
            });
        }

        // 6. Push queued bytes out.
        match conn.pump_write() {
            Ok(p) => progress |= p,
            Err(()) => alive = false,
        }

        if progress {
            idle = 0;
        } else {
            idle += 1;
            if idle <= IDLE_YIELDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    tenant.record_disconnect();
    ctx.record(EventKind::Disconnect {
        tenant: tenant_id.raw(),
        slot: conn_slot,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambipla_serve::ServeConfig;
    use logic::Cover;

    fn xor() -> Cover {
        Cover::parse("10 1\n01 1", 2, 1).expect("xor cover")
    }

    fn service(shards: usize) -> Arc<SimService> {
        Arc::new(
            SimService::start(ServeConfig {
                shards,
                max_wait: Duration::from_micros(100),
                ..ServeConfig::default()
            })
            .expect("valid config"),
        )
    }

    #[test]
    fn drr_scheduler_is_fair_across_tenants() {
        let sched = Scheduler::new(4, 1024);
        let (sink, _stream) = reply_channel();
        let service = service(1);
        let id = service.register_sim(Arc::new(xor()), SimKey::new(1));
        let route = Route { id, mask: 0b11 };
        let tenants = TenantRegistry::new(QuotaConfig::unlimited());
        let mk = |tenant: u64, n: usize| -> Vec<Pending> {
            let state = tenants.get_or_create(TenantId::new(tenant), 0);
            (0..n)
                .map(|i| Pending {
                    route,
                    bits: 0,
                    req_id: tenant * 1000 + i as u64,
                    sink: sink.clone(),
                    tenant: Arc::clone(&state),
                    conn: Arc::new(ConnShared::default()),
                })
                .collect()
        };
        // Tenant 1 floods 40 requests, tenant 2 queues 4.
        let s1 = sched.tenant_slot(1);
        let s2 = sched.tenant_slot(2);
        assert!(sched.enqueue(s1, mk(1, 40)).is_empty());
        assert!(sched.enqueue(s2, mk(2, 4)).is_empty());
        sched.stop();
        // With quantum 4, tenant 2's requests must all dispatch within
        // the first two turns — fairness despite tenant 1's backlog.
        let mut order = Vec::new();
        while let Some(batch) = sched.next_batch() {
            for p in batch {
                order.push(p.req_id);
            }
        }
        assert_eq!(order.len(), 44);
        let t2_last = order
            .iter()
            .rposition(|&id| id / 1000 == 2)
            .expect("tenant 2 dispatched");
        assert!(
            t2_last < 12,
            "tenant 2 finished at position {t2_last}, starved by tenant 1"
        );
    }

    #[test]
    fn scheduler_enforces_tenant_pending_cap() {
        let sched = Scheduler::new(4, 2);
        let (sink, _stream) = reply_channel();
        let service = service(1);
        let id = service.register_sim(Arc::new(xor()), SimKey::new(1));
        let route = Route { id, mask: 0b11 };
        let tenants = TenantRegistry::new(QuotaConfig::unlimited());
        let state = tenants.get_or_create(TenantId::new(1), 0);
        let slot = sched.tenant_slot(1);
        let batch: Vec<Pending> = (0..5)
            .map(|i| Pending {
                route,
                bits: 0,
                req_id: i,
                sink: sink.clone(),
                tenant: Arc::clone(&state),
                conn: Arc::new(ConnShared::default()),
            })
            .collect();
        let rejected = sched.enqueue(slot, batch);
        assert_eq!(
            rejected.iter().map(|p| p.req_id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn loopback_round_trip_and_counters() {
        let service = service(2);
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
            .expect("bind");
        let key = SimKey::new(77);
        server.register_sim(Arc::new(xor()), key);

        let mut client = crate::client::NetClient::connect(server.local_addr(), TenantId::new(5))
            .expect("connect");
        for (bits, want) in [(0b00u64, false), (0b01, true), (0b10, true), (0b11, false)] {
            let reply = client.call(key, bits, bits).expect("call");
            match reply {
                Frame::Reply {
                    req_id, outputs, ..
                } => {
                    assert_eq!(req_id, bits);
                    assert_eq!(outputs, vec![want]);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }

        // Unknown sim and out-of-arity bits come back as typed errors.
        let err = client.call(SimKey::new(999), 50, 0).expect("call");
        assert_eq!(
            err,
            Frame::Error {
                req_id: 50,
                code: ErrorCode::UnknownSim
            }
        );
        let err = client.call(key, 51, 0b100).expect("call");
        assert_eq!(
            err,
            Frame::Error {
                req_id: 51,
                code: ErrorCode::BadArity
            }
        );

        let stats = server.tenant_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].id, TenantId::new(5));
        assert_eq!(stats[0].accepted, 4);
        assert_eq!(stats[0].replies, 4);
        assert_eq!(stats[0].unknown_sim, 1);
        assert_eq!(stats[0].bad_arity, 1);
        assert_eq!(stats[0].connections, 1);

        let families = server.metric_families();
        assert_eq!(families.len(), 7);
        server.shutdown();
    }

    #[test]
    fn quota_rejects_surface_as_typed_errors() {
        let service = service(1);
        let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
            .expect("bind");
        let key = SimKey::new(8);
        server.register_sim(Arc::new(xor()), key);
        // Burst of 3, no refill: the 4th request must be rejected.
        server.set_quota(
            TenantId::new(2),
            QuotaConfig {
                rate_per_sec: 0,
                burst: 3,
            },
        );
        let mut client = crate::client::NetClient::connect(server.local_addr(), TenantId::new(2))
            .expect("connect");
        let mut ok = 0;
        let mut rejected = 0;
        for i in 0..5u64 {
            match client.call(key, i, 0b01).expect("call") {
                Frame::Reply { outputs, .. } => {
                    assert_eq!(outputs, vec![true]);
                    ok += 1;
                }
                Frame::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::QuotaExceeded);
                    rejected += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!((ok, rejected), (3, 2));
        let stats = server.tenant_stats();
        assert_eq!(stats[0].quota_rejected, 2);
        server.shutdown();
    }
}
