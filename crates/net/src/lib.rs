//! # ambipla_net — the multi-tenant TCP front end
//!
//! `ambipla_serve` batches requests arriving through in-process
//! channels; this crate puts a network in front of it. A
//! [`NetServer`] listens on TCP, speaks a length-prefixed binary
//! protocol, authenticates each connection as a [`TenantId`], enforces
//! per-tenant token-bucket quotas, schedules admitted requests with
//! deficit round robin so no tenant can starve another, and dispatches
//! into the sharded `SimService` — whose out-of-order, epoch-tagged
//! replies stream straight back to the owning connection.
//!
//! ```text
//!  clients (TCP)        ambipla_net                      ambipla_serve
//!  ┌────────┐  Hello   ┌──────────────────────────┐     ┌─────────────┐
//!  │tenant 1│─Request─▶│ conn threads:            │     │ batcher     │
//!  └────────┘          │  decode → route → quota  │     │ shard 0     │
//!  ┌────────┐          │ DRR scheduler per tenant │────▶│ batcher     │
//!  │tenant 2│◀─Reply───│ dispatcher → try_submit  │     │ shard 1 ... │
//!  └────────┘  /Error  └──────────────────────────┘     └─────────────┘
//! ```
//!
//! ## Wire format
//!
//! Frames are `[u32 payload length (LE)][u8 kind][body]`, integers
//! little-endian (full layouts in [`protocol`]):
//!
//! | kind | frame     | body                                          |
//! |------|-----------|-----------------------------------------------|
//! | 0x01 | `Hello`   | magic, version, tenant id                     |
//! | 0x02 | `HelloOk` | magic, version                                |
//! | 0x03 | `Request` | request id, sim key, packed input bits        |
//! | 0x04 | `Reply`   | request id, serving epoch, packed output words|
//! | 0x05 | `Error`   | request id, typed code ([`ErrorCode`])        |
//!
//! Replies are correlated by request id, never by order — a hot
//! registration's block flush can overtake a cold one's deadline flush.
//!
//! * [`protocol`] — codec: [`Frame`], [`encode_frame`],
//!   [`decode_payload`], the incremental [`FrameReader`], typed
//!   [`WireError`]s; never panics on hostile bytes,
//! * [`tenant`] — [`TenantId`], integer-math [`TokenBucket`] quotas
//!   ([`QuotaConfig`]), per-tenant counters
//!   ([`TenantState`] / [`TenantSnapshot`]) and the [`TenantRegistry`],
//! * [`server`] — [`NetServer`]: nonblocking accept/connection loops,
//!   the deficit-round-robin scheduler, the dispatcher, and
//!   tenant-labeled [`NetServer::metric_families`],
//! * [`client`] — the blocking reference [`NetClient`] used by tests,
//!   benches and demos.

// Production code returns typed errors instead of unwrapping; test code
// may unwrap freely. `ambipla-analyze` enforces the stronger
// panic-freedom rule on the hot/untrusted paths; this lint is the
// compile-time backstop for the rest of the crate.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use client::{ClientError, NetClient};
pub use protocol::{
    decode_payload, encode_frame, ErrorCode, Frame, FrameReader, WireError, MAGIC, MAX_FRAME,
    VERSION,
};
pub use server::{NetConfig, NetServer};
pub use tenant::{QuotaConfig, TenantId, TenantRegistry, TenantSnapshot, TenantState, TokenBucket};
