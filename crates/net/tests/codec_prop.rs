//! Property tests for the wire codec: arbitrary frames round-trip
//! through encode → decode (whole and byte-at-a-time through the
//! incremental reader), and malformed inputs — truncations at every
//! split point, oversized length prefixes, corrupted magic/version/kind
//! bytes, raw junk — come back as typed [`WireError`]s without ever
//! panicking.

use ambipla_net::{
    decode_payload, encode_frame, ErrorCode, Frame, FrameReader, TenantId, WireError, MAX_FRAME,
};
use ambipla_serve::SimKey;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u64>().prop_map(|t| Frame::Hello {
            tenant: TenantId::new(t)
        }),
        Just(Frame::HelloOk),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req_id, sim, bits)| {
            Frame::Request {
                req_id,
                sim: SimKey::new(sim),
                bits,
            }
        }),
        (any::<u64>(), any::<u64>(), vec(any::<bool>(), 0..200usize)).prop_map(
            |(req_id, epoch, outputs)| Frame::Reply {
                req_id,
                epoch,
                outputs,
            }
        ),
        (
            any::<u64>(),
            prop_oneof![
                Just(ErrorCode::QueueFull),
                Just(ErrorCode::UnknownSim),
                Just(ErrorCode::BadArity),
                Just(ErrorCode::QuotaExceeded),
            ]
        )
            .prop_map(|(req_id, code)| Frame::Error { req_id, code }),
    ]
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut wire = Vec::new();
    encode_frame(frame, &mut wire);
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whole-payload decode inverts encode.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let wire = encode(&frame);
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(wire.len(), 4 + len);
        prop_assert!(len <= MAX_FRAME);
        prop_assert_eq!(decode_payload(&wire[4..]), Ok(frame));
    }

    /// The incremental reader reassembles a multi-frame stream fed in
    /// arbitrary chunk sizes.
    #[test]
    fn reader_round_trips_chunked(
        frames in vec(arb_frame(), 1..8usize),
        chunk in 1..17usize,
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut wire);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.extend(piece);
            while let Some(frame) = reader.next_frame().expect("clean stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.next_frame(), Ok(None));
    }

    /// Every proper payload prefix is a typed `Truncated` error (or,
    /// for `Reply`, a shorter-but-consistent layout is impossible since
    /// the word count is pinned by `n_outputs`) — and never a panic.
    #[test]
    fn every_truncation_is_typed(frame in arb_frame()) {
        let wire = encode(&frame);
        let payload = &wire[4..];
        for cut in 0..payload.len() {
            match decode_payload(&payload[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    prop_assert_eq!(got, cut);
                    prop_assert!(needed > cut);
                }
                other => prop_assert!(false, "prefix {cut} decoded to {other:?}"),
            }
        }
    }

    /// Appending junk to a valid payload is `TrailingBytes`.
    #[test]
    fn trailing_bytes_are_typed(frame in arb_frame(), extra in 1..9usize) {
        let wire = encode(&frame);
        let expected = wire.len() - 4;
        let mut payload = wire[4..].to_vec();
        payload.resize(expected + extra, 0xa5);
        prop_assert_eq!(
            decode_payload(&payload),
            Err(WireError::TrailingBytes { expected, got: expected + extra })
        );
    }

    /// A length prefix above `MAX_FRAME` is rejected before buffering.
    #[test]
    fn oversized_length_is_rejected(extra in 1..u32::MAX as usize - MAX_FRAME) {
        let len = MAX_FRAME + extra;
        let mut reader = FrameReader::new();
        reader.extend(&(len as u32).to_le_bytes());
        prop_assert_eq!(reader.next_frame(), Err(WireError::Oversized { len }));
    }

    /// Corrupting the hello magic or version yields the matching typed
    /// error.
    #[test]
    fn corrupt_hello_is_typed(tenant in any::<u64>(), flip in any::<u8>(), at in 1..6usize) {
        let wire = encode(&Frame::Hello { tenant: TenantId::new(tenant) });
        let mut payload = wire[4..].to_vec();
        payload[at] ^= flip.max(1); // guarantee an actual corruption
        match decode_payload(&payload) {
            Ok(Frame::Hello { .. }) => prop_assert!(false, "corruption at {at} undetected"),
            Err(WireError::BadMagic { .. }) => prop_assert!(at < 5),
            Err(WireError::BadVersion { .. }) => prop_assert_eq!(at, 5),
            other => prop_assert!(false, "unexpected result {other:?}"),
        }
    }

    /// An unknown kind byte is typed, not a panic.
    #[test]
    fn unknown_kind_is_typed(raw in any::<u8>(), body in vec(any::<u8>(), 0..64usize)) {
        let kind = if raw < 6 { raw + 6 } else { raw };
        let mut payload = vec![kind];
        payload.extend_from_slice(&body);
        prop_assert_eq!(
            decode_payload(&payload),
            Err(WireError::UnknownKind { found: kind })
        );
    }

    /// Arbitrary junk never panics the payload decoder or the reader.
    #[test]
    fn junk_never_panics(junk in vec(any::<u8>(), 0..512usize), chunk in 1..33usize) {
        let _ = decode_payload(&junk);
        let mut reader = FrameReader::new();
        for piece in junk.chunks(chunk) {
            reader.extend(piece);
            // Errors are fine (and expected) — panics are not. After a
            // framing error the stream is unrecoverable; stop, as the
            // server does.
            match reader.next_frame() {
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
}
