//! Offline bulk evaluation: many simulators, many vectors, sharded across
//! the deterministic worker pool.
//!
//! The online batcher ([`crate::SimService`]) optimizes *latency-bounded*
//! traffic; this module is its bulk counterpart for *throughput-bound*
//! jobs that already know their whole workload (verification sweeps,
//! test-set replay, dataset scoring). Jobs are sharded across a
//! [`WorkerPool`] — each worker chunks its simulator's vectors into
//! multi-word blocks of [`SWEEP_WORDS`]` × 64` lanes and evaluates with
//! [`Simulator::eval_words`] into per-job reused buffers — and results
//! come back in job order, bit-identical to the sequential loop for any
//! thread count.
//!
//! Like the online service, the sweep is backend-agnostic:
//! [`eval_sims_blocked`] takes `&dyn Simulator` jobs (mix covers, PLAs,
//! faulty arrays and FPGA mappings in one call), and
//! [`eval_covers_blocked`] is the cover-owning convenience wrapper the
//! original API shipped.

use ambipla_core::{Simulator, WorkerPool};
use logic::eval::{pack_vectors_words, unpack_lane_words, LANES, SWEEP_WORDS};
use logic::Cover;

/// Evaluate one simulator's vectors, `SWEEP_WORDS × 64` lanes at a time
/// with buffers reused across blocks — the shared body of both sweep
/// entry points. Only the valid lanes of the (possibly partial) tail
/// block are unpacked — the `logic::eval::lane_mask` contract.
fn eval_blocked_one(sim: &dyn Simulator, vectors: &[u64]) -> Vec<Vec<bool>> {
    let (n, o) = (sim.n_inputs(), sim.n_outputs());
    let mut packed = vec![0u64; n * SWEEP_WORDS];
    let mut out = vec![0u64; o * SWEEP_WORDS];
    let mut results = Vec::with_capacity(vectors.len());
    for chunk in vectors.chunks(SWEEP_WORDS * LANES) {
        let words = chunk.len().div_ceil(LANES);
        let (packed, out) = (&mut packed[..n * words], &mut out[..o * words]);
        pack_vectors_words(chunk, n, words, packed);
        sim.eval_words(packed, out, words);
        results.extend((0..chunk.len()).map(|lane| unpack_lane_words(out, lane, words)));
    }
    results
}

/// Evaluate each job's vectors on its simulator, 64 lanes at a time, with
/// the jobs sharded across `pool`.
///
/// Returns, per job and in job order, one output `Vec<bool>` per input
/// vector — exactly what `sim.simulate_bits(vector)` returns, for any
/// thread count (determinism inherited from [`WorkerPool::map`]). The
/// jobs may mix backend types freely.
pub fn eval_sims_blocked(
    jobs: &[(&(dyn Simulator + Sync), Vec<u64>)],
    pool: &WorkerPool,
) -> Vec<Vec<Vec<bool>>> {
    pool.map(jobs, |_, (sim, vectors)| eval_blocked_one(*sim, vectors))
}

/// [`eval_sims_blocked`] for jobs that own plain covers — the original
/// cover-only API, kept as a convenience wrapper.
pub fn eval_covers_blocked(jobs: &[(Cover, Vec<u64>)], pool: &WorkerPool) -> Vec<Vec<Vec<bool>>> {
    pool.map(jobs, |_, (cover, vectors)| eval_blocked_one(cover, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambipla_core::GnorPla;

    fn test_jobs() -> Vec<(Cover, Vec<u64>)> {
        let covers = [
            Cover::parse("10 1\n01 1", 2, 1).expect("valid cover"),
            Cover::parse("110 01\n101 01\n011 01\n111 01", 3, 2).expect("valid cover"),
            Cover::parse("1--- 10\n--11 01", 4, 2).expect("valid cover"),
        ];
        // 150 vectors per cover: two full lane words plus a partial tail
        // word within one SWEEP_WORDS-wide block.
        covers
            .iter()
            .enumerate()
            .map(|(j, c)| {
                let mask = logic::eval::lane_mask(c.n_inputs());
                let vectors = (0..150u64)
                    .map(|i| i.wrapping_mul(0x9e37 + j as u64) & mask)
                    .collect();
                (c.clone(), vectors)
            })
            .collect()
    }

    #[test]
    fn sharded_bulk_eval_matches_scalar_loop() {
        let jobs = test_jobs();
        let sequential = eval_covers_blocked(&jobs, &WorkerPool::new(1));
        for threads in [2, 3, 8] {
            assert_eq!(
                sequential,
                eval_covers_blocked(&jobs, &WorkerPool::new(threads)),
                "{threads} threads"
            );
        }
        for (job, results) in jobs.iter().zip(&sequential) {
            for (&bits, outputs) in job.1.iter().zip(results) {
                assert_eq!(outputs, &job.0.eval_bits(bits));
            }
        }
    }

    #[test]
    fn heterogeneous_jobs_sweep_together() {
        // One call, three backend types: the cover, the PLA mapped from
        // it, and the cover again under a different vector set.
        let cover = Cover::parse("110 01\n101 01\n011 01\n111 01", 3, 2).expect("valid cover");
        let pla = GnorPla::from_cover(&cover);
        let vectors: Vec<u64> = (0..100u64).map(|i| i % 8).collect();
        let jobs: Vec<(&(dyn Simulator + Sync), Vec<u64>)> = vec![
            (&cover, vectors.clone()),
            (&pla, vectors.clone()),
            (&cover, vectors.iter().rev().copied().collect()),
        ];
        for threads in [1, 4] {
            let out = eval_sims_blocked(&jobs, &WorkerPool::new(threads));
            for ((sim, vectors), results) in jobs.iter().zip(&out) {
                for (&bits, outputs) in vectors.iter().zip(results) {
                    assert_eq!(outputs, &sim.simulate_bits(bits), "{threads} threads");
                }
            }
        }
    }
}
