//! Offline bulk evaluation: many covers, many vectors, sharded across the
//! deterministic worker pool.
//!
//! The online batcher ([`crate::SimService`]) optimizes *latency-bounded*
//! traffic; this module is its bulk counterpart for *throughput-bound*
//! jobs that already know their whole workload (verification sweeps,
//! test-set replay, dataset scoring). Covers are sharded across a
//! [`WorkerPool`] — each worker chunks its cover's vectors into 64-lane
//! blocks and evaluates with `eval_batch` — and results come back in job
//! order, bit-identical to the sequential loop for any thread count.

use ambipla_core::WorkerPool;
use logic::eval::{pack_vectors, unpack_lane, LANES};
use logic::Cover;

/// Evaluate each job's vectors on its cover, 64 lanes at a time, with the
/// jobs (covers) sharded across `pool`.
///
/// Returns, per job and in job order, one output `Vec<bool>` per input
/// vector — exactly what `cover.eval_bits(vector)` returns, for any
/// thread count (determinism inherited from
/// [`WorkerPool::map`]).
pub fn eval_covers_blocked(jobs: &[(Cover, Vec<u64>)], pool: &WorkerPool) -> Vec<Vec<Vec<bool>>> {
    pool.map(jobs, |_, (cover, vectors)| {
        let mut results = Vec::with_capacity(vectors.len());
        for chunk in vectors.chunks(LANES) {
            let words = cover.eval_batch(&pack_vectors(chunk, cover.n_inputs()));
            // Unpack only the valid lanes of the (possibly partial) tail
            // block — the `logic::eval::lane_mask` contract.
            results.extend((0..chunk.len()).map(|lane| unpack_lane(&words, lane)));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_bulk_eval_matches_scalar_loop() {
        let covers = [
            Cover::parse("10 1\n01 1", 2, 1).expect("valid cover"),
            Cover::parse("110 01\n101 01\n011 01\n111 01", 3, 2).expect("valid cover"),
            Cover::parse("1--- 10\n--11 01", 4, 2).expect("valid cover"),
        ];
        // 150 vectors per cover: two full blocks plus a partial tail.
        let jobs: Vec<(Cover, Vec<u64>)> = covers
            .iter()
            .enumerate()
            .map(|(j, c)| {
                let mask = logic::eval::lane_mask(c.n_inputs());
                let vectors = (0..150u64)
                    .map(|i| i.wrapping_mul(0x9e37 + j as u64) & mask)
                    .collect();
                (c.clone(), vectors)
            })
            .collect();
        let sequential = eval_covers_blocked(&jobs, &WorkerPool::new(1));
        for threads in [2, 3, 8] {
            assert_eq!(
                sequential,
                eval_covers_blocked(&jobs, &WorkerPool::new(threads)),
                "{threads} threads"
            );
        }
        for (job, results) in jobs.iter().zip(&sequential) {
            for (&bits, outputs) in job.1.iter().zip(results) {
                assert_eq!(outputs, &job.0.eval_bits(bits));
            }
        }
    }
}
