//! Service-facing metrics: request/flush counters, lane occupancy and
//! flush-latency quantiles.
//!
//! Counters are relaxed atomics bumped from the batcher thread; the flush
//! latency distribution is a log₂-bucketed histogram (64 buckets cover the
//! full `u64` nanosecond range), cheap enough to record on every flush and
//! precise enough for the p50/p99 figures the service reports. A
//! [`StatsSnapshot`] is a consistent-enough copy for dashboards and bench
//! output — it is not a transactional read, matching what production
//! metric scrapes do.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a block left the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// All `block_words × 64` lanes filled.
    Full,
    /// The oldest queued request hit the configured `max_wait`.
    Deadline,
    /// A hot swap ([`SimService::swap_sim`](crate::SimService::swap_sim))
    /// drained the queue under the outgoing epoch before installing the
    /// new backend.
    Swap,
    /// Service shutdown drained the queue.
    Shutdown,
}

/// Log₂-bucketed latency histogram over nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Upper bound (in ns) of the bucket containing quantile `q` in
    /// `[0, 1]`, or 0 if nothing was recorded. Log₂ buckets bound the
    /// relative error at 2×, which is plenty for p50/p99 reporting.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if bucket == 0 { 0 } else { 1u64 << bucket };
            }
        }
        unreachable!("rank is clamped to the recorded count");
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Live counters of one [`SimService`](crate::SimService).
#[derive(Debug, Default)]
pub struct ServiceStats {
    requests: AtomicU64,
    queue_full: AtomicU64,
    blocks: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    swap_flushes: AtomicU64,
    shutdown_flushes: AtomicU64,
    swaps: AtomicU64,
    lanes_filled: AtomicU64,
    lane_capacity: AtomicU64,
    flush_latency: Mutex<Histogram>,
}

impl ServiceStats {
    /// Count one accepted request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one submission rejected by backpressure
    /// ([`SimService::try_submit`](crate::SimService::try_submit) against
    /// a full per-simulator queue).
    pub fn record_queue_full(&self) {
        self.queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one flushed block: its cause, how many lanes were occupied,
    /// how many lane `words` the flush evaluated (so lane occupancy stays
    /// meaningful for multi-word blocks), and the queue latency (first
    /// enqueue → flush) in ns.
    pub fn record_flush(&self, cause: FlushCause, lanes: usize, words: usize, latency_ns: u64) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
        self.lanes_filled.fetch_add(lanes as u64, Ordering::Relaxed);
        self.lane_capacity
            .fetch_add((words * crate::LANES) as u64, Ordering::Relaxed);
        match cause {
            FlushCause::Full => &self.full_flushes,
            FlushCause::Deadline => &self.deadline_flushes,
            FlushCause::Swap => &self.swap_flushes,
            FlushCause::Shutdown => &self.shutdown_flushes,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.flush_latency.lock().unwrap().record(latency_ns);
    }

    /// Count one completed hot swap (epoch bump). Every swap is counted,
    /// whether or not it had queued requests to drain — `swaps` is the
    /// total number of epoch bumps across all registrations, while
    /// `swap_flushes` only counts the drains that flushed a non-empty
    /// queue.
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters out (see module docs on consistency).
    pub fn snapshot(&self) -> StatsSnapshot {
        let blocks = self.blocks.load(Ordering::Relaxed);
        let lanes = self.lanes_filled.load(Ordering::Relaxed);
        let capacity = self.lane_capacity.load(Ordering::Relaxed);
        let latency = self.flush_latency.lock().unwrap();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            blocks,
            full_flushes: self.full_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            swap_flushes: self.swap_flushes.load(Ordering::Relaxed),
            shutdown_flushes: self.shutdown_flushes.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            lanes_filled: lanes,
            lane_capacity: capacity,
            lane_occupancy: if capacity == 0 {
                0.0
            } else {
                lanes as f64 / capacity as f64
            },
            p50_flush_ns: latency.quantile_ns(0.50),
            p99_flush_ns: latency.quantile_ns(0.99),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_hit_rate: 0.0,
        }
    }
}

/// Point-in-time copy of a service's metrics (flush counters from
/// [`ServiceStats`], cache counters merged in by the service handle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Submissions rejected by backpressure (`try_submit` against a full
    /// per-simulator queue). Rejected submissions are *not* counted in
    /// `requests`.
    pub queue_full: u64,
    /// Blocks flushed.
    pub blocks: u64,
    /// Blocks flushed because all 64 lanes filled.
    pub full_flushes: u64,
    /// Blocks flushed because the oldest request hit `max_wait`.
    pub deadline_flushes: u64,
    /// Blocks drained by a hot swap (the outgoing epoch's last flush).
    /// Swaps that found an empty queue drain nothing, so
    /// `swap_flushes <= swaps`.
    pub swap_flushes: u64,
    /// Blocks drained at shutdown.
    pub shutdown_flushes: u64,
    /// Completed hot swaps (epoch bumps) across all registrations. A
    /// registration's current epoch equals the number of swaps applied to
    /// it, so on a single-registration service this reconciles directly
    /// with `SimService::epoch`.
    pub swaps: u64,
    /// Total occupied lanes over all flushed blocks.
    pub lanes_filled: u64,
    /// Total lane capacity of all flushed blocks (`Σ words × 64`; partial
    /// flushes only pay for the lane words they actually evaluate).
    pub lane_capacity: u64,
    /// `lanes_filled / lane_capacity` — mean fraction of useful lanes.
    pub lane_occupancy: f64,
    /// Flush latency median (ns, log₂-bucket upper bound).
    pub p50_flush_ns: u64,
    /// Flush latency 99th percentile (ns, log₂-bucket upper bound).
    pub p99_flush_ns: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// `hits / (hits + misses)`, 0 with no lookups.
    pub cache_hit_rate: f64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} (+{} rejected: queue full)  blocks: {} (full {} / deadline {} / swap {} / shutdown {})",
            self.requests,
            self.queue_full,
            self.blocks,
            self.full_flushes,
            self.deadline_flushes,
            self.swap_flushes,
            self.shutdown_flushes,
        )?;
        if self.swaps > 0 {
            writeln!(
                f,
                "hot swaps: {} epoch bumps ({} drained a non-empty queue)",
                self.swaps, self.swap_flushes,
            )?;
        }
        writeln!(
            f,
            "lane occupancy: {:.1}% ({} lanes over {} blocks)",
            100.0 * self.lane_occupancy,
            self.lanes_filled,
            self.blocks,
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses / {} evictions)",
            100.0 * self.cache_hit_rate,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        )?;
        write!(
            f,
            "flush latency: p50 ≤ {:.1} µs, p99 ≤ {:.1} µs",
            self.p50_flush_ns as f64 / 1_000.0,
            self.p99_flush_ns as f64 / 1_000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_log2_buckets() {
        let mut h = Histogram::default();
        for ns in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 10);
        // 100 ns lands in bucket 7 (64..128); p50 reports its upper bound.
        assert_eq!(h.quantile_ns(0.50), 128);
        // The single 100 µs outlier only surfaces at the very top.
        assert_eq!(h.quantile_ns(0.99), 131_072);
        assert_eq!(h.quantile_ns(0.0), 128); // rank clamps to 1
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_latency_is_representable() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn stats_accumulate_and_snapshot() {
        let stats = ServiceStats::default();
        for _ in 0..70 {
            stats.record_request();
        }
        stats.record_queue_full();
        stats.record_queue_full();
        stats.record_flush(FlushCause::Full, 64, 1, 2_000);
        stats.record_flush(FlushCause::Deadline, 6, 1, 150_000);
        stats.record_swap();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 70);
        assert_eq!(snap.queue_full, 2);
        assert_eq!(snap.blocks, 2);
        assert_eq!(snap.full_flushes, 1);
        assert_eq!(snap.deadline_flushes, 1);
        assert_eq!(snap.swap_flushes, 0);
        assert_eq!(snap.shutdown_flushes, 0);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.lanes_filled, 70);
        assert!((snap.lane_occupancy - 70.0 / 128.0).abs() < 1e-12);
        assert!(snap.p50_flush_ns >= 2_000);
        assert!(snap.p99_flush_ns >= snap.p50_flush_ns);
        // Display renders without panicking and mentions the headline
        // figures.
        let text = snap.to_string();
        assert!(text.contains("requests: 70"));
        assert!(text.contains("lane occupancy"));
    }

    #[test]
    fn swap_drains_count_separately_from_swaps() {
        let stats = ServiceStats::default();
        // First swap drains a 10-lane partial queue; the second finds the
        // queue empty (no flush recorded).
        stats.record_swap();
        stats.record_flush(FlushCause::Swap, 10, 1, 500);
        stats.record_swap();
        let snap = stats.snapshot();
        assert_eq!(snap.swaps, 2);
        assert_eq!(snap.swap_flushes, 1);
        assert_eq!(snap.blocks, 1);
        assert!(snap.swap_flushes <= snap.swaps);
        assert!(snap.to_string().contains("hot swaps: 2 epoch bumps"));
    }

    #[test]
    fn multi_word_flushes_widen_the_capacity() {
        let stats = ServiceStats::default();
        // A full 3-word block and a partial 130-lane (3-word) flush.
        stats.record_flush(FlushCause::Full, 192, 3, 1_000);
        stats.record_flush(FlushCause::Deadline, 130, 3, 1_000);
        let snap = stats.snapshot();
        assert_eq!(snap.lanes_filled, 322);
        assert_eq!(snap.lane_capacity, 384);
        assert!((snap.lane_occupancy - 322.0 / 384.0).abs() < 1e-12);
    }
}
