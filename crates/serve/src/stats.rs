//! Service-facing metrics: per-registration, per-epoch counters with
//! lock-free recording and fold-based aggregation.
//!
//! Stats are segmented the way the service itself is: a [`RegStats`] per
//! registration (requests, backpressure rejections, live queue depth)
//! holding one [`EpochStats`] per epoch (flush counters, lane occupancy,
//! cache hit/miss, flush-latency histogram). Every counter — including
//! the histogram buckets ([`AtomicHistogram`]) — is a relaxed atomic, so
//! the batcher's flush hot path never takes a lock and `stats()` scrapes
//! never contend with it. The aggregate [`StatsSnapshot`] is no longer a
//! separate set of counters: it is [`StatsSnapshot::fold`] over the
//! per-registration snapshots, with cache evictions joined in from the
//! [`BlockCache`](crate::BlockCache) — one snapshot path, no fabricated
//! fields. A snapshot is a consistent-enough copy for dashboards and
//! bench output — it is not a transactional read, matching what
//! production metric scrapes do.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

pub use ambipla_obs::FlushCause;

/// Which evaluation tier a registration is currently served by.
///
/// Every registration starts [`Batched`](Tier::Batched); small backends
/// are promoted to [`Materialized`](Tier::Materialized) by the batcher's
/// auto-tiering policy (or a forced-tier configuration), after which
/// flushes answer by truth-table indexed load instead of backend
/// `eval_words` calls. A hot swap drops the table, so the tier can move
/// both ways over a registration's lifetime; [`RegSnapshot::tier`] and
/// the `ambipla_tier` metric family report the live value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Requests are lane-packed and evaluated through the backend's
    /// `eval_words` (with the sub-block result cache in front).
    Batched,
    /// Requests are answered by O(1) indexed load from a materialized
    /// [`TruthTable`](ambipla_core::TruthTable) — no cache consult, no
    /// backend call.
    Materialized,
}

impl Tier {
    /// Stable lowercase label (Prometheus `tier` label value).
    pub const fn label(self) -> &'static str {
        match self {
            Tier::Batched => "batched",
            Tier::Materialized => "materialized",
        }
    }
}

/// Log₂-bucketed latency histogram over nanoseconds with atomic bucket
/// counters: `record` is a pair of relaxed `fetch_add`s (bucket + sum),
/// safe from any thread, and scrapes read the buckets without blocking
/// recorders.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Record one observation.
    pub fn record(&self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copy the bucket counters out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; 64];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of an [`AtomicHistogram`]: mergeable (for folding
/// per-epoch histograms into an aggregate) and queryable for quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per log₂ bucket; bucket `b` covers values whose
    /// bit length is `b` (upper bound `2^b`, bucket 0 holds exact zeros).
    pub buckets: [u64; 64],
    /// Sum of all recorded values in ns (Prometheus histogram `_sum`).
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; 64],
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Accumulate another snapshot's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Upper bound (in ns) of the bucket containing quantile `q` in
    /// `[0, 1]`, or 0 if nothing was recorded. Log₂ buckets bound the
    /// relative error at 2×, which is plenty for p50/p99 reporting.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(bucket);
            }
        }
        unreachable!("rank is clamped to the recorded count");
    }

    /// Upper bound in ns of bucket `b` (the `le` boundary exporters use).
    pub fn bucket_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << bucket
        }
    }
}

/// Flush-side counters of one `(registration, epoch)` pair. All fields
/// are relaxed atomics; the batcher caches an `Arc<EpochStats>` for the
/// live epoch so recording a flush touches no locks and no registry.
#[derive(Debug)]
pub struct EpochStats {
    epoch: u64,
    blocks: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    swap_flushes: AtomicU64,
    shutdown_flushes: AtomicU64,
    lanes_filled: AtomicU64,
    lane_capacity: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    flush_latency: AtomicHistogram,
}

impl EpochStats {
    fn new(epoch: u64) -> EpochStats {
        EpochStats {
            epoch,
            blocks: AtomicU64::new(0),
            full_flushes: AtomicU64::new(0),
            deadline_flushes: AtomicU64::new(0),
            swap_flushes: AtomicU64::new(0),
            shutdown_flushes: AtomicU64::new(0),
            lanes_filled: AtomicU64::new(0),
            lane_capacity: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            flush_latency: AtomicHistogram::default(),
        }
    }

    /// The epoch these counters belong to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Count one flushed block: its cause, how many lanes were occupied,
    /// how many lane `words` the flush evaluated (so lane occupancy stays
    /// meaningful for multi-word blocks), the queue latency (first
    /// enqueue → flush) in ns, and the flush's sub-block cache hit/miss
    /// burst — cache counters are first-class here, not merged in later.
    pub fn record_flush(
        &self,
        cause: FlushCause,
        lanes: usize,
        words: usize,
        latency_ns: u64,
        cache_hits: usize,
        cache_misses: usize,
    ) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
        self.lanes_filled.fetch_add(lanes as u64, Ordering::Relaxed);
        self.lane_capacity
            .fetch_add((words * crate::LANES) as u64, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(cache_hits as u64, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(cache_misses as u64, Ordering::Relaxed);
        match cause {
            FlushCause::Full => &self.full_flushes,
            FlushCause::Deadline => &self.deadline_flushes,
            FlushCause::Swap => &self.swap_flushes,
            FlushCause::Shutdown => &self.shutdown_flushes,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.flush_latency.record(latency_ns);
    }

    /// Copy the counters out.
    pub fn snapshot(&self) -> EpochSnapshot {
        let latency = self.flush_latency.snapshot();
        EpochSnapshot {
            epoch: self.epoch,
            blocks: self.blocks.load(Ordering::Relaxed),
            full_flushes: self.full_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            swap_flushes: self.swap_flushes.load(Ordering::Relaxed),
            shutdown_flushes: self.shutdown_flushes.load(Ordering::Relaxed),
            lanes_filled: self.lanes_filled.load(Ordering::Relaxed),
            lane_capacity: self.lane_capacity.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            latency,
        }
    }
}

/// Counters of one registration, segmented by epoch.
///
/// `requests` and `queue_full` are registration-lifetime counters (the
/// submit path doesn't know which epoch will eventually flush a
/// request); everything flush-shaped lives in the per-epoch
/// [`EpochStats`]. The epoch list only grows — a swap appends via
/// [`begin_epoch`](RegStats::begin_epoch) — so historical epochs stay
/// queryable after the swap that retired them.
#[derive(Debug)]
pub struct RegStats {
    slot: u32,
    requests: AtomicU64,
    queue_full: AtomicU64,
    /// Live [`Tier`] as a relaxed atomic (0 = batched, 1 = materialized):
    /// written by the batcher on promotion / swap, read by snapshots.
    tier: AtomicU64,
    epochs: RwLock<Vec<Arc<EpochStats>>>,
}

impl RegStats {
    /// Fresh registration stats with epoch 0 already begun.
    pub fn new(slot: u32) -> RegStats {
        RegStats {
            slot,
            requests: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            tier: AtomicU64::new(0),
            epochs: RwLock::new(vec![Arc::new(EpochStats::new(0))]),
        }
    }

    /// Registration slot index.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Count one accepted request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one submission rejected by backpressure
    /// ([`SimService::try_submit`](crate::SimService::try_submit) against
    /// a full per-simulator queue).
    pub fn record_queue_full(&self) {
        self.queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the registration's live [`Tier`] (batcher side: promotion
    /// sets [`Tier::Materialized`], a hot swap resets to
    /// [`Tier::Batched`] until the new epoch re-materializes).
    pub fn set_tier(&self, tier: Tier) {
        self.tier
            .store(matches!(tier, Tier::Materialized) as u64, Ordering::Relaxed);
    }

    /// The registration's live [`Tier`].
    pub fn tier(&self) -> Tier {
        if self.tier.load(Ordering::Relaxed) == 0 {
            Tier::Batched
        } else {
            Tier::Materialized
        }
    }

    /// The live epoch's counters. The batcher caches this `Arc` per
    /// registration, so the flush path pays this lock only once per swap.
    pub fn current_epoch(&self) -> Arc<EpochStats> {
        // Poison recovery on every stats lock in this file: the guarded
        // data are append-only Vecs of Arcs, so a panicking writer can
        // only leave a fully-pushed or fully-absent entry behind.
        Arc::clone(
            self.epochs
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .last()
                .expect("epoch 0 exists"),
        )
    }

    /// Begin the next epoch (a completed hot swap) and return its
    /// counters. The number of completed swaps on this registration is
    /// exactly the current epoch number.
    pub fn begin_epoch(&self) -> Arc<EpochStats> {
        let mut epochs = self
            .epochs
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = EpochStats::new(epochs.len() as u64);
        let stats = Arc::new(next);
        epochs.push(Arc::clone(&stats));
        stats
    }

    /// Copy the counters out, with the caller-supplied live queue depth
    /// gauge (the batcher's pending-lane count for this registration).
    pub fn snapshot(&self, queue_depth: u64) -> RegSnapshot {
        let epochs: Vec<EpochSnapshot> = self
            .epochs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            // analyze: allow(lock_order, reason = "EpochStats::snapshot takes no locks; the name-keyed call graph merges it with Reg/ServiceStats::snapshot")
            .map(|e| e.snapshot())
            .collect();
        RegSnapshot {
            slot: self.slot,
            requests: self.requests.load(Ordering::Relaxed),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            queue_depth,
            epoch: epochs.last().map(|e| e.epoch).unwrap_or(0),
            tier: self.tier(),
            epochs,
        }
    }
}

/// Registry of every registration's stats for one
/// [`SimService`](crate::SimService). Registrations are append-only and
/// indexed by slot, mirroring the service's own slot table.
#[derive(Debug, Default)]
pub struct ServiceStats {
    regs: RwLock<Vec<Arc<RegStats>>>,
}

impl ServiceStats {
    /// Add stats for the next registration slot and return them.
    pub fn register(&self) -> Arc<RegStats> {
        let mut regs = self
            .regs
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stats = Arc::new(RegStats::new(regs.len() as u32));
        regs.push(Arc::clone(&stats));
        stats
    }

    /// Stats of one registration by slot index.
    pub fn reg(&self, slot: usize) -> Option<Arc<RegStats>> {
        self.regs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(slot)
            .cloned()
    }

    /// All registrations, slot order.
    pub fn registrations(&self) -> Vec<Arc<RegStats>> {
        self.regs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Aggregate snapshot: the fold over all registrations (queue-depth
    /// gauges read as 0 here — the service handle supplies live depths
    /// for [`RegSnapshot`]s it hands out). `cache_evictions` joins in
    /// from the block cache, the one counter that has no per-registration
    /// home (eviction happens to whichever entry is coldest globally).
    pub fn snapshot(&self, cache_evictions: u64) -> StatsSnapshot {
        let regs: Vec<RegSnapshot> = self
            .regs
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            // analyze: allow(lock_order, reason = "regs -> epochs is the established order; the merged snapshot name adds a phantom reverse edge")
            .map(|r| r.snapshot(0))
            .collect();
        StatsSnapshot::fold(&regs, cache_evictions)
    }
}

/// Point-in-time copy of one `(registration, epoch)`'s flush counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch number (0 is the initial registration).
    pub epoch: u64,
    /// Blocks flushed under this epoch.
    pub blocks: u64,
    /// Blocks flushed because all lanes filled.
    pub full_flushes: u64,
    /// Blocks flushed because the oldest request hit `max_wait`.
    pub deadline_flushes: u64,
    /// Blocks drained by the hot swap that ended this epoch (0 or 1).
    pub swap_flushes: u64,
    /// Blocks drained at shutdown.
    pub shutdown_flushes: u64,
    /// Total occupied lanes over this epoch's flushed blocks.
    pub lanes_filled: u64,
    /// Total lane capacity of this epoch's flushed blocks.
    pub lane_capacity: u64,
    /// Sub-block cache hits under this epoch.
    pub cache_hits: u64,
    /// Sub-block cache misses under this epoch.
    pub cache_misses: u64,
    /// Flush-latency distribution (mergeable log₂ buckets).
    pub latency: HistogramSnapshot,
}

impl EpochSnapshot {
    /// Flush latency median (ns, log₂-bucket upper bound).
    pub fn p50_flush_ns(&self) -> u64 {
        self.latency.quantile_ns(0.50)
    }

    /// Flush latency 99th percentile (ns, log₂-bucket upper bound).
    pub fn p99_flush_ns(&self) -> u64 {
        self.latency.quantile_ns(0.99)
    }
}

/// Point-in-time copy of one registration's stats: lifetime counters,
/// the live queue-depth gauge, and every epoch's [`EpochSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegSnapshot {
    /// Registration slot index.
    pub slot: u32,
    /// Requests accepted for this registration.
    pub requests: u64,
    /// Submissions rejected by backpressure.
    pub queue_full: u64,
    /// Live queue depth (pending lanes) when the snapshot was taken.
    pub queue_depth: u64,
    /// Current epoch (== completed swaps on this registration).
    pub epoch: u64,
    /// The evaluation tier serving this registration when the snapshot
    /// was taken.
    pub tier: Tier,
    /// Per-epoch counters, epoch order (index == epoch number).
    pub epochs: Vec<EpochSnapshot>,
}

/// Point-in-time copy of a service's aggregate metrics — the fold
/// ([`StatsSnapshot::fold`]) of its per-registration snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Submissions rejected by backpressure (`try_submit` against a full
    /// per-simulator queue). Rejected submissions are *not* counted in
    /// `requests`.
    pub queue_full: u64,
    /// Blocks flushed.
    pub blocks: u64,
    /// Blocks flushed because all 64 lanes filled.
    pub full_flushes: u64,
    /// Blocks flushed because the oldest request hit `max_wait`.
    pub deadline_flushes: u64,
    /// Blocks drained by a hot swap (the outgoing epoch's last flush).
    /// Swaps that found an empty queue drain nothing, so
    /// `swap_flushes <= swaps`.
    pub swap_flushes: u64,
    /// Blocks drained at shutdown.
    pub shutdown_flushes: u64,
    /// Completed hot swaps (epoch bumps) across all registrations. A
    /// registration's current epoch equals the number of swaps applied to
    /// it, so on a single-registration service this reconciles directly
    /// with `SimService::epoch`.
    pub swaps: u64,
    /// Registrations currently served from the materialized tier
    /// ([`Tier::Materialized`]) — a gauge, not a lifetime counter: swaps
    /// demote until the new epoch re-materializes.
    pub materialized: u64,
    /// Total occupied lanes over all flushed blocks.
    pub lanes_filled: u64,
    /// Total lane capacity of all flushed blocks (`Σ words × 64`; partial
    /// flushes only pay for the lane words they actually evaluate).
    pub lane_capacity: u64,
    /// `lanes_filled / lane_capacity` — mean fraction of useful lanes.
    pub lane_occupancy: f64,
    /// Flush latency median (ns, log₂-bucket upper bound) over all
    /// registrations' merged histograms.
    pub p50_flush_ns: u64,
    /// Flush latency 99th percentile (ns, log₂-bucket upper bound).
    pub p99_flush_ns: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// `hits / (hits + misses)`, 0 with no lookups.
    pub cache_hit_rate: f64,
}

impl StatsSnapshot {
    /// Fold per-registration snapshots into the aggregate view. This *is*
    /// the definition of the aggregate: every counter (including the
    /// latency quantiles, computed from the merged bucket arrays, and the
    /// cache hit/miss totals) comes from the per-registration data —
    /// `cache_evictions` is the one global joined in from the block
    /// cache.
    pub fn fold(regs: &[RegSnapshot], cache_evictions: u64) -> StatsSnapshot {
        let mut out = StatsSnapshot {
            requests: 0,
            queue_full: 0,
            blocks: 0,
            full_flushes: 0,
            deadline_flushes: 0,
            swap_flushes: 0,
            shutdown_flushes: 0,
            swaps: 0,
            materialized: 0,
            lanes_filled: 0,
            lane_capacity: 0,
            lane_occupancy: 0.0,
            p50_flush_ns: 0,
            p99_flush_ns: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions,
            cache_hit_rate: 0.0,
        };
        let mut latency = HistogramSnapshot::default();
        for reg in regs {
            out.requests += reg.requests;
            out.queue_full += reg.queue_full;
            out.swaps += reg.epoch;
            out.materialized += matches!(reg.tier, Tier::Materialized) as u64;
            for e in &reg.epochs {
                out.blocks += e.blocks;
                out.full_flushes += e.full_flushes;
                out.deadline_flushes += e.deadline_flushes;
                out.swap_flushes += e.swap_flushes;
                out.shutdown_flushes += e.shutdown_flushes;
                out.lanes_filled += e.lanes_filled;
                out.lane_capacity += e.lane_capacity;
                out.cache_hits += e.cache_hits;
                out.cache_misses += e.cache_misses;
                latency.merge(&e.latency);
            }
        }
        if out.lane_capacity > 0 {
            out.lane_occupancy = out.lanes_filled as f64 / out.lane_capacity as f64;
        }
        let lookups = out.cache_hits + out.cache_misses;
        if lookups > 0 {
            out.cache_hit_rate = out.cache_hits as f64 / lookups as f64;
        }
        out.p50_flush_ns = latency.quantile_ns(0.50);
        out.p99_flush_ns = latency.quantile_ns(0.99);
        out
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} (+{} rejected: queue full)  blocks: {} (full {} / deadline {} / swap {} / shutdown {})",
            self.requests,
            self.queue_full,
            self.blocks,
            self.full_flushes,
            self.deadline_flushes,
            self.swap_flushes,
            self.shutdown_flushes,
        )?;
        if self.swaps > 0 {
            writeln!(
                f,
                "hot swaps: {} epoch bumps ({} drained a non-empty queue)",
                self.swaps, self.swap_flushes,
            )?;
        }
        if self.materialized > 0 {
            writeln!(
                f,
                "tiering: {} registration(s) serving from materialized truth tables",
                self.materialized,
            )?;
        }
        writeln!(
            f,
            "lane occupancy: {:.1}% ({} lanes over {} blocks)",
            100.0 * self.lane_occupancy,
            self.lanes_filled,
            self.blocks,
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses / {} evictions)",
            100.0 * self.cache_hit_rate,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        )?;
        write!(
            f,
            "flush latency: p50 ≤ {:.1} µs, p99 ≤ {:.1} µs",
            self.p50_flush_ns as f64 / 1_000.0,
            self.p99_flush_ns as f64 / 1_000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_log2_buckets() {
        let h = AtomicHistogram::default();
        for ns in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.record(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10);
        // 100 ns lands in bucket 7 (64..128); p50 reports its upper bound.
        assert_eq!(snap.quantile_ns(0.50), 128);
        // The single 100 µs outlier only surfaces at the very top.
        assert_eq!(snap.quantile_ns(0.99), 131_072);
        assert_eq!(snap.quantile_ns(0.0), 128); // rank clamps to 1
        assert_eq!(snap.sum_ns, 9 * 100 + 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = AtomicHistogram::default().snapshot();
        assert_eq!(snap.quantile_ns(0.5), 0);
        assert_eq!(snap.count(), 0);
    }

    #[test]
    fn zero_latency_is_representable() {
        let h = AtomicHistogram::default();
        h.record(0);
        assert_eq!(h.snapshot().quantile_ns(0.5), 0);
    }

    #[test]
    fn histogram_records_concurrently_without_loss() {
        let h = Arc::new(AtomicHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let a = AtomicHistogram::default();
        let b = AtomicHistogram::default();
        a.record(100);
        b.record(100);
        b.record(100_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.quantile_ns(0.50), 128);
        assert_eq!(m.sum_ns, 200 + 100_000);
    }

    #[test]
    fn stats_accumulate_and_snapshot() {
        let stats = ServiceStats::default();
        let reg = stats.register();
        for _ in 0..70 {
            reg.record_request();
        }
        reg.record_queue_full();
        reg.record_queue_full();
        let epoch = reg.current_epoch();
        epoch.record_flush(FlushCause::Full, 64, 1, 2_000, 0, 1);
        epoch.record_flush(FlushCause::Deadline, 6, 1, 150_000, 1, 0);
        reg.begin_epoch();
        let snap = stats.snapshot(0);
        assert_eq!(snap.requests, 70);
        assert_eq!(snap.queue_full, 2);
        assert_eq!(snap.blocks, 2);
        assert_eq!(snap.full_flushes, 1);
        assert_eq!(snap.deadline_flushes, 1);
        assert_eq!(snap.swap_flushes, 0);
        assert_eq!(snap.shutdown_flushes, 0);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.lanes_filled, 70);
        assert!((snap.lane_occupancy - 70.0 / 128.0).abs() < 1e-12);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!(snap.p50_flush_ns >= 2_000);
        assert!(snap.p99_flush_ns >= snap.p50_flush_ns);
        // Display renders without panicking and mentions the headline
        // figures.
        let text = snap.to_string();
        assert!(text.contains("requests: 70"));
        assert!(text.contains("lane occupancy"));
    }

    #[test]
    fn swap_drains_count_separately_from_swaps() {
        let stats = ServiceStats::default();
        let reg = stats.register();
        // First swap drains a 10-lane partial queue under the outgoing
        // epoch; the second finds the queue empty (no flush recorded).
        reg.current_epoch()
            .record_flush(FlushCause::Swap, 10, 1, 500, 0, 0);
        reg.begin_epoch();
        reg.begin_epoch();
        let snap = stats.snapshot(0);
        assert_eq!(snap.swaps, 2);
        assert_eq!(snap.swap_flushes, 1);
        assert_eq!(snap.blocks, 1);
        assert!(snap.swap_flushes <= snap.swaps);
        assert!(snap.to_string().contains("hot swaps: 2 epoch bumps"));
    }

    #[test]
    fn multi_word_flushes_widen_the_capacity() {
        let stats = ServiceStats::default();
        let reg = stats.register();
        let epoch = reg.current_epoch();
        // A full 3-word block and a partial 130-lane (3-word) flush.
        epoch.record_flush(FlushCause::Full, 192, 3, 1_000, 0, 0);
        epoch.record_flush(FlushCause::Deadline, 130, 3, 1_000, 0, 0);
        let snap = stats.snapshot(0);
        assert_eq!(snap.lanes_filled, 322);
        assert_eq!(snap.lane_capacity, 384);
        assert!((snap.lane_occupancy - 322.0 / 384.0).abs() < 1e-12);
    }

    #[test]
    fn per_epoch_counters_stay_segmented() {
        let reg = RegStats::new(4);
        reg.current_epoch()
            .record_flush(FlushCause::Full, 64, 1, 1_000, 2, 0);
        let e1 = reg.begin_epoch();
        e1.record_flush(FlushCause::Deadline, 10, 1, 9_000, 0, 3);
        let snap = reg.snapshot(7);
        assert_eq!(snap.slot, 4);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.epochs.len(), 2);
        assert_eq!(snap.epochs[0].epoch, 0);
        assert_eq!(snap.epochs[0].full_flushes, 1);
        assert_eq!(snap.epochs[0].cache_hits, 2);
        assert_eq!(snap.epochs[1].epoch, 1);
        assert_eq!(snap.epochs[1].deadline_flushes, 1);
        assert_eq!(snap.epochs[1].cache_misses, 3);
        assert!(snap.epochs[1].p50_flush_ns() >= 9_000);
    }

    #[test]
    fn fold_of_registrations_matches_manual_totals() {
        let stats = ServiceStats::default();
        let a = stats.register();
        let b = stats.register();
        a.record_request();
        a.record_request();
        b.record_request();
        a.current_epoch()
            .record_flush(FlushCause::Full, 64, 1, 1_000, 1, 1);
        b.current_epoch()
            .record_flush(FlushCause::Deadline, 32, 1, 64_000, 0, 2);
        let folded = stats.snapshot(5);
        assert_eq!(folded.requests, 3);
        assert_eq!(folded.blocks, 2);
        assert_eq!(folded.cache_hits, 1);
        assert_eq!(folded.cache_misses, 3);
        assert_eq!(folded.cache_evictions, 5);
        // Merged histogram spans both registrations' observations.
        assert_eq!(folded.p50_flush_ns, 1_024);
        assert_eq!(folded.p99_flush_ns, 65_536);
    }
}
