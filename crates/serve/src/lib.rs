//! # ambipla_serve — the request-batching PLA simulation service
//!
//! PR 1's `BatchSim` engine made one *call* evaluate 64 input vectors;
//! this crate makes one *service* do it for many independent callers. It
//! is the serve-at-scale front end of the workspace: requests arrive one
//! vector at a time, and leave in 64-lane blocks.
//!
//! ```text
//!  clients        ┌───────────────────────── SimService ─────────────────────────┐
//!  submit(bits) ──┤  per-cover queues        result cache          evaluation    │
//!  submit(bits) ──┼─▶ [cover A: ██████░░]   (cover_hash, block)   eval_batch on  │
//!  submit(bits) ──┤   [cover B: ██░░░░░░] ─▶  sharded LRU      ─▶ 64-lane words  │
//!       ...       │    flush on 64 lanes       hit? skip eval        │           │
//!                 │    or max_wait deadline                          ▼           │
//!  replies  ◀─────┴────────────────── scatter lanes back over channels ──────────┘
//! ```
//!
//! * [`batcher`] — the [`SimService`]: per-cover lane-packing queues,
//!   full-block / deadline flushes, channel-based scatter,
//! * [`cache`] — the sharded LRU [`BlockCache`] keyed on
//!   *(stable cover hash, packed input block)* with hit/miss/eviction
//!   counters,
//! * [`stats`] — request/flush/occupancy counters and p50/p99 flush
//!   latency ([`StatsSnapshot`]),
//! * [`sweep`] — offline bulk evaluation sharded across the deterministic
//!   [`WorkerPool`] (re-exported from `ambipla_core::pool`; the same pool
//!   shards `fault::yield_analysis` Monte-Carlo trials).
//!
//! ## Quickstart
//!
//! ```
//! use ambipla_serve::{ServeConfig, SimService};
//! use logic::Cover;
//!
//! let service = SimService::with_defaults();
//! let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
//! let id = service.register(xor);
//! assert_eq!(service.submit(id, 0b01).wait(), vec![true]);
//! assert_eq!(service.submit(id, 0b11).wait(), vec![false]);
//! let stats = service.shutdown();
//! assert_eq!(stats.requests, 2);
//! ```

pub mod batcher;
pub mod cache;
pub mod stats;
pub mod sweep;

/// Lanes per block (re-exported from `logic::eval`).
pub use logic::eval::LANES;

pub use ambipla_core::{cover_hash, WorkerPool};
pub use batcher::{
    reply_channel, CoverId, ReplySink, ReplyStream, ServeConfig, SimReply, SimService, SimTicket,
};
pub use cache::{BlockCache, BlockKey};
pub use stats::{FlushCause, ServiceStats, StatsSnapshot};
pub use sweep::eval_covers_blocked;
