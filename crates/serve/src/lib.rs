//! # ambipla_serve — the request-batching simulation service
//!
//! The core's [`Simulator`] trait made one *call* evaluate up to
//! `words × 64` input vectors on any backend; this crate makes one
//! *service* do it for many independent callers. It is the
//! serve-at-scale front end of the workspace: requests arrive one vector
//! at a time, and leave in multi-word lane blocks of up to
//! `ServeConfig::block_words × 64` requests — whatever the backend
//! behind each queue is.
//!
//! ```text
//!  clients        ┌────────────────────────── SimService ────────────────────────┐
//!  submit(bits) ──┤  per-sim queues          result cache          evaluation    │
//!  submit(bits) ──┼─▶ [Cover      ██████░░]  (SimKey, 64-lane    eval_words on   │
//!  submit(bits) ──┤   [GnorPla    ██░░░░░░] ─▶ sub-block)     ─▶ &dyn Simulator  │
//!  try_submit ────┼─▶ [FaultyPla  ████████]    sharded LRU,       (reused        │
//!   └─ QueueFull ◀┤    flush on block_words    hit? skip eval      buffers)      │
//!  replies  ◀─────┴──── × 64 lanes ──── scatter lanes back over channels ────────┘
//! ```
//!
//! * [`batcher`] — the [`SimService`]: per-simulator lane-packing queues
//!   over `Arc<dyn Simulator>` backends ([`SimService::register_sim`],
//!   with [`SimService::register`] as the `Cover` convenience), sharded
//!   across `ServeConfig::shards` batcher threads (each registration
//!   pinned by [`shard_for_key`] of its [`SimKey`], so the whole
//!   per-registration contract is shard-local), full-block / deadline
//!   flushes of up to `block_words × 64` lanes
//!   through one `eval_words` call on reused buffers, channel-based
//!   scatter, bounded-queue backpressure
//!   ([`SimService::try_submit`] / [`QueueFull`]), typed configuration
//!   validation ([`ConfigError`]), **epoch-versioned
//!   hot swaps** ([`SimService::swap_sim`]: drain, install, bump — see
//!   the [`batcher`] module docs for the full contract), and **tiered
//!   evaluation** ([`TierPolicy`]): small, hot backends are
//!   auto-materialized into packed
//!   [`TruthTable`](ambipla_core::TruthTable)s and served by O(1)
//!   indexed load (the [`Tier::Materialized`] tier), bit-identically to
//!   the batched path and with the table rebuilt on every swap,
//! * [`cache`] — the sharded LRU [`BlockCache`] keyed on
//!   *(caller-supplied stable [`SimKey`], registration epoch, packed
//!   64-lane sub-block)* with hit/miss/eviction counters — the epoch in
//!   the key is what makes a hot swap's cache invalidation exact,
//! * [`stats`] — per-registration, per-epoch metrics on lock-free atomic
//!   counters ([`RegStats`] / [`RegSnapshot`], served by
//!   [`SimService::stats_for`]), with the aggregate [`StatsSnapshot`]
//!   defined as the fold over registrations
//!   ([`StatsSnapshot::fold`]),
//! * [`export`] — snapshot → [`ambipla_obs`] metric families
//!   ([`metric_families`]), renderable as Prometheus text or JSON;
//!   structured events (flush / swap / queue-full / registration) flow to
//!   any [`ambipla_obs::Recorder`] installed via
//!   [`SimService::start_with_recorder`],
//! * [`sweep`] — offline bulk evaluation of `&dyn Simulator` jobs sharded
//!   across the deterministic [`WorkerPool`] (re-exported from
//!   `ambipla_core::pool`; the same pool shards `fault::yield_analysis`
//!   Monte-Carlo trials).
//!
//! ## Quickstart
//!
//! ```
//! use ambipla_serve::{ServeConfig, SimService};
//! use logic::Cover;
//!
//! let service = SimService::with_defaults();
//! let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
//! let id = service.register(xor);
//! assert_eq!(service.submit(id, 0b01).wait(), vec![true]);
//! assert_eq!(service.submit(id, 0b11).wait(), vec![false]);
//! let stats = service.shutdown();
//! assert_eq!(stats.requests, 2);
//! ```
//!
//! Heterogeneous backends ride the same batcher — register a synthesized
//! PLA (or its faulty twin) under its own [`SimKey`]:
//!
//! ```
//! use ambipla_core::{GnorPla, Simulator};
//! use ambipla_serve::{SimKey, SimService};
//! use logic::Cover;
//! use std::sync::Arc;
//!
//! let service = SimService::with_defaults();
//! let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
//! let pla = GnorPla::from_cover(&xor);
//! let id = service.register_sim(Arc::new(pla), SimKey::of_cover(&xor));
//! assert_eq!(service.submit(id, 0b10).wait(), vec![true]);
//! ```
//!
//! ## Hot swaps
//!
//! A registration's backend can be replaced mid-traffic without dropping
//! a request or serving a stale cache entry: [`SimService::swap_sim`]
//! drains the queue through the outgoing backend, installs the new one
//! and bumps the registration's *epoch* — every [`SimReply`] names the
//! epoch that served it, so a verifier can check each answer against the
//! right generation:
//!
//! ```
//! use ambipla_serve::{SimKey, SimService};
//! use logic::Cover;
//! use std::sync::Arc;
//!
//! let service = SimService::with_defaults();
//! let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
//! let nor = Cover::parse("00 1", 2, 1).unwrap();
//! let id = service.register_sim(Arc::new(xor), SimKey::new(1));
//! assert_eq!(service.epoch(id), 0);
//! assert_eq!(service.swap_sim(id, Arc::new(nor)), 1);
//! let reply = service.submit(id, 0b00).wait_reply();
//! assert_eq!((reply.epoch, reply.outputs), (1, vec![true]));
//! ```

// Production code returns typed errors instead of unwrapping; test code
// may unwrap freely. `ambipla-analyze` enforces the stronger
// panic-freedom rule on the hot/untrusted paths; this lint is the
// compile-time backstop for the rest of the crate.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batcher;
pub mod cache;
pub mod export;
pub mod stats;
pub mod sweep;

/// Lanes per block (re-exported from `logic::eval`).
pub use logic::eval::LANES;

pub use ambipla_core::{cover_hash, Simulator, WorkerPool};
pub use batcher::{
    reply_channel, shard_for_key, ConfigError, QueueFull, ReplySink, ReplyStream, ServeConfig,
    SharedSim, SimId, SimReply, SimService, SimTicket, TierPolicy,
};
pub use cache::{BlockCache, BlockKey, SimKey};
pub use export::metric_families;
pub use stats::{
    AtomicHistogram, EpochSnapshot, EpochStats, FlushCause, HistogramSnapshot, RegSnapshot,
    RegStats, ServiceStats, StatsSnapshot, Tier,
};
pub use sweep::{eval_covers_blocked, eval_sims_blocked};
