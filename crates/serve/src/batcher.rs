//! The lane-packing request batcher.
//!
//! A [`SimService`] owns `ServeConfig::shards` batcher threads (one by
//! default); each registration is pinned at
//! [`register_sim`](SimService::register_sim) time to the shard
//! [`shard_for_key`] derives from its [`SimKey`], so every queue,
//! flush, swap and epoch of a registration is owned by a single thread
//! and the whole per-registration contract below is independent of the
//! shard count. Clients register **any
//! [`Simulator`](ambipla_core::sim::Simulator) backend** — plain covers,
//! GNOR/classical/Whirlpool PLAs,
//! faulty arrays, FPGA mappings — and submit single-vector simulation
//! requests; the batcher queues requests **per registered simulator**,
//! packs them into multi-word lane blocks of up to
//! `ServeConfig::block_words × 64` lanes, and flushes a block when either
//!
//! * all `block_words × 64` lanes fill (`FlushCause::Full`) — one
//!   `eval_words` call now serves the whole block, or
//! * the oldest queued request has waited `max_wait`
//!   (`FlushCause::Deadline`) — a partial block is packed (unused lanes
//!   zero-filled, results masked per [`logic::eval::lane_mask`]'s
//!   contract) so tail latency stays bounded under light traffic.
//!
//! The packing, evaluation and scatter buffers live on the registration
//! and are **reused across flushes** — the flush path performs no
//! per-block `Vec` allocation beyond the reply payloads themselves.
//!
//! Before evaluating, the batcher consults the [`BlockCache`] **per
//! 64-lane sub-block**, keyed on *(the registration's [`SimKey`], its
//! current epoch, that sub-block's packed words)* — exactly the keys a
//! `block_words = 1` service would use, so warm-path hit semantics are
//! independent of the configured width. Sub-blocks that hit are copied
//! from the cache; the misses are gathered into one narrower block and
//! evaluated with a single `eval_words` call. Results are scattered back
//! to callers over per-request or shared reply channels. Backpressure is
//! opt-in per submission: [`SimService::try_submit`] refuses with
//! [`QueueFull`] once a simulator's pending queue reaches
//! `ServeConfig::queue_depth`, while the plain `submit` paths stay
//! unbounded for trusted in-process callers. Dropping the service (or
//! calling [`shutdown`](SimService::shutdown)) drains every queue before
//! the thread exits, so no submitted request is ever lost.
//!
//! # Hot swaps: the epoch contract
//!
//! [`SimService::swap_sim`] replaces a registration's backend
//! **mid-traffic**. Each registration carries an **epoch** — 0 at
//! registration, incremented by every swap — and the service guarantees:
//!
//! * **Every reply is consistent with exactly one epoch.** A flush
//!   evaluates one backend; the swap *drains* the target's queued
//!   requests through the outgoing backend ([`FlushCause::Swap`]) before
//!   installing the new one, so no flushed block ever mixes generations,
//!   and [`SimReply::epoch`] names the generation that produced it.
//!   Requests already accepted when the swap lands are answered by the
//!   *old* backend; requests submitted after
//!   [`swap_sim`](SimService::swap_sim) returns are
//!   answered by the *new* one (in between, whichever epoch their flush
//!   falls under — "some single epoch", never a mixture).
//! * **Zero dropped requests.** A swap never sheds queued work; the drain
//!   flush answers every ticket exactly as a deadline flush would.
//! * **Exact cache invalidation.** The epoch is part of every
//!   [`BlockKey`], so the swapped registration's cached blocks from
//!   superseded epochs become unreachable at the bump, while *other*
//!   registrations' entries (and the new epoch's own entries, as they
//!   fill) keep their warm hit rate. Nothing is scanned or purged
//!   eagerly; stale entries age out through LRU eviction.
//! * **Arity is fixed per registration.** The replacement backend must
//!   match the registered `n_inputs`/`n_outputs` (checked before the swap
//!   is sent), so in-flight requests remain well-formed across the bump.
//!
//! `swap_sim` blocks until the batcher has performed the drain + install
//! and returns the new epoch; [`SimService::epoch`] reads a
//! registration's current epoch at any time, and
//! [`stats`](SimService::stats) reports `swaps` / `swap_flushes`
//! counters that reconcile with a driver's swap log.
//!
//! # Tiered evaluation: materialized truth tables
//!
//! A registration whose backend is small enough serves faster from a
//! [`TruthTable`] than from any batched evaluation: one exhaustive sweep
//! materializes all `2^n` answers into packed words, and every later
//! flush answers each lane by indexed load — no packing, no cache
//! lookups, no backend call. Each registration therefore carries a
//! **tier** ([`Tier::Batched`] or [`Tier::Materialized`]) governed by
//! [`ServeConfig::tier_policy`]:
//!
//! * [`TierPolicy::Auto`] (default) promotes a registration once its
//!   observed evaluation spend provably exceeds the one-time sweep cost.
//!   With per-lane backend cost `c`, the traffic so far has cost
//!   `c × eval_lanes` (lanes the backend actually evaluated, cache
//!   misses included) and the sweep costs `c × 2^n`, so "measured eval
//!   cost × traffic ≥ materialization cost" reduces exactly to the lane
//!   count `eval_lanes ≥ 2^n` — no timing on the hot path. The
//!   [`ServeConfig::tier_min_requests`] floor keeps one-shot
//!   registrations batched.
//! * [`TierPolicy::Forced`] materializes every eligible registration at
//!   registration time (and re-materializes on every swap).
//! * [`TierPolicy::Disabled`] never materializes.
//!
//! Eligibility is bounded twice: `n_inputs ≤ tier_max_inputs` and
//! [`table_bytes`]`(n, outputs) ≤ tier_max_table_bytes` — an oversized
//! backend silently stays batched (the memory guard), while
//! contradictory knob combinations are refused up front by
//! [`ServeConfig::validate`].
//!
//! The tier preserves every contract above: materialized flushes still
//! record stats / [`EventKind::Flush`] per block (with zero cache
//! traffic), still decrement the pending gauge before scattering, and a
//! hot swap **drops the stale table, then re-materializes under the new
//! epoch** before `swap_sim` returns (Auto re-materializes if the slot
//! was materialized; Forced always), so a materialized registration is
//! bit-identical to a batched one across its whole epoch history.
//! Promotions are announced via [`EventKind::TierPromote`] and visible
//! as [`RegSnapshot::tier`] / the `ambipla_tier` metric family.

use crate::cache::{BlockCache, BlockKey, SimKey};
use crate::stats::{
    EpochStats, FlushCause, RegSnapshot, RegStats, ServiceStats, StatsSnapshot, Tier,
};
use ambipla_core::{table_bytes, TruthTable};
use ambipla_obs::{Event, EventKind, MetricFamily, Recorder};
use logic::eval::{pack_vectors_words, unpack_lane_words, LANES};
use logic::Cover;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shareable simulation backend: what [`SimService::register_sim`] and
/// [`SimService::swap_sim`] accept. The service's batcher thread
/// evaluates through the trait object, so any `Simulator` that is
/// `Send + Sync` can be served. (Re-exported alias of
/// [`ambipla_core::sim::SharedSimulator`].)
pub type SharedSim = ambipla_core::sim::SharedSimulator;

/// Tuning knobs of a [`SimService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Longest a queued request may wait before its partial block is
    /// flushed anyway.
    pub max_wait: Duration,
    /// Result-cache capacity in blocks; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Pending-request bound per registered simulator enforced by
    /// [`SimService::try_submit`] /
    /// [`SimService::try_submit_tagged`] (the unbounded `submit` /
    /// `submit_tagged` paths ignore it, but their requests still occupy
    /// the queue `try_submit` measures).
    pub queue_depth: usize,
    /// Lane words per flushed block: a full flush packs
    /// `block_words × 64` queued requests into **one** backend
    /// `eval_words` call. Cache entries stay keyed per 64-lane sub-block,
    /// so changing the width never changes warm-path hit semantics.
    /// Default 1 (the classic 64-lane block).
    pub block_words: usize,
    /// Number of batcher threads. Each registration is pinned to the
    /// shard [`shard_for_key`] derives from its [`SimKey`] at
    /// [`SimService::register_sim`] time, so one shard owns a
    /// registration's whole lifetime — its queue, flushes, swaps and
    /// epoch sequence — and the single-shard ordering/epoch contract
    /// holds per registration unchanged. The [`BlockCache`] stays shared
    /// across shards (it is already internally sharded and
    /// concurrency-safe). Default 1 (the classic single batcher thread).
    pub shards: usize,
    /// When (if ever) registrations are promoted to the materialized
    /// truth-table tier — see the [module docs](self) on tiered
    /// evaluation. Default [`TierPolicy::Auto`].
    pub tier_policy: TierPolicy,
    /// Widest backend (in inputs) the tier may materialize; backends
    /// above it always stay batched. Must be < 64 while the policy is
    /// enabled (a `2^n` table index must fit a `u64`). Default 12
    /// (a 4096-assignment sweep).
    pub tier_max_inputs: usize,
    /// Auto-promotion traffic floor: a registration must have served at
    /// least this many lanes (within its current epoch) before the
    /// cost comparison is consulted, so short-lived registrations never
    /// pay a sweep. Default 4096.
    pub tier_min_requests: u64,
    /// Memory guard: a backend whose [`table_bytes`] price exceeds this
    /// budget is never materialized, regardless of policy. Default 1 MiB
    /// (a 12-input table of up to 1024 outputs).
    pub tier_max_table_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_micros(200),
            cache_capacity: 4096,
            cache_shards: 8,
            queue_depth: 256,
            block_words: 1,
            shards: 1,
            tier_policy: TierPolicy::Auto,
            tier_max_inputs: 12,
            tier_min_requests: 4096,
            tier_max_table_bytes: 1 << 20,
        }
    }
}

/// When [`SimService`] promotes registrations to the materialized
/// truth-table tier (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Never materialize; every registration serves batched.
    Disabled,
    /// Promote an eligible registration once its observed evaluation
    /// spend exceeds the one-time exhaustive-sweep cost (and the
    /// `tier_min_requests` traffic floor is met). The default.
    #[default]
    Auto,
    /// Materialize every eligible registration at registration time —
    /// benches and latency-critical deployments that want the table from
    /// the first request. Ineligible backends (too wide, over the memory
    /// budget) still serve batched.
    Forced,
}

impl ServeConfig {
    /// Check the configuration for degenerate values —
    /// [`SimService::start`] refuses them with the matching
    /// [`ConfigError`] instead of panicking mid-flight or misbehaving
    /// silently (a `queue_depth` of 0 would make every `try_submit`
    /// rejection-only; `block_words` / `shards` / `cache_shards` of 0
    /// have no meaningful interpretation), and refuses contradictory
    /// tiering knobs: with the policy enabled, `tier_max_inputs` must
    /// stay below 64 (table indices are `u64` assignments) and
    /// `tier_max_table_bytes` must afford at least a one-output table at
    /// that width — otherwise no advertised promotion could ever happen.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.block_words == 0 {
            return Err(ConfigError::ZeroBlockWords);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.cache_shards == 0 {
            return Err(ConfigError::ZeroCacheShards);
        }
        if self.tier_policy != TierPolicy::Disabled {
            if self.tier_max_inputs >= 64 {
                return Err(ConfigError::TierInputsTooWide);
            }
            if table_bytes(self.tier_max_inputs, 1) > self.tier_max_table_bytes as u128 {
                return Err(ConfigError::TierBudgetTooSmall);
            }
        }
        Ok(())
    }
}

/// A degenerate [`ServeConfig`] value, refused by [`SimService::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_depth == 0`: every bounded submission would be rejected.
    ZeroQueueDepth,
    /// `block_words == 0`: blocks would have no lane capacity.
    ZeroBlockWords,
    /// `shards == 0`: there would be no batcher thread to serve requests.
    ZeroShards,
    /// `cache_shards == 0`: the result cache needs at least one shard
    /// (use `cache_capacity == 0` to disable caching).
    ZeroCacheShards,
    /// `tier_max_inputs >= 64` with the tier policy enabled: a `2^n`
    /// table index must fit a packed `u64` assignment.
    TierInputsTooWide,
    /// `tier_max_table_bytes` cannot afford even a one-output table at
    /// `tier_max_inputs` while the tier policy is enabled — the two
    /// knobs contradict each other and no promotion could ever happen at
    /// the advertised width (disable the policy or shrink
    /// `tier_max_inputs` instead).
    TierBudgetTooSmall,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroQueueDepth => write!(f, "queue_depth must be at least 1"),
            ConfigError::ZeroBlockWords => write!(f, "block_words must be at least 1"),
            ConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ConfigError::ZeroCacheShards => write!(
                f,
                "cache_shards must be at least 1 (cache_capacity 0 disables caching)"
            ),
            ConfigError::TierInputsTooWide => write!(
                f,
                "tier_max_inputs must stay below 64 while the tier policy is enabled"
            ),
            ConfigError::TierBudgetTooSmall => write!(
                f,
                "tier_max_table_bytes cannot fit a one-output table at tier_max_inputs \
                 (contradictory tiering knobs)"
            ),
        }
    }
}

impl Error for ConfigError {}

/// The shard a [`SimKey`] is assigned to on a service with `shards`
/// batcher threads: an FNV-1a hash of the key's raw bits, reduced modulo
/// the shard count. Deterministic and stable for a given `(key, shards)`
/// pair, so tests and benches can place registrations on chosen shards.
pub fn shard_for_key(key: SimKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (ambipla_core::hash::fnv1a(ambipla_core::hash::FNV_OFFSET, &key.raw().to_le_bytes())
        % shards as u64) as usize
}

/// Handle to a simulator registered with a [`SimService`]. Stamped with
/// the issuing service's identity, so submitting it to a *different*
/// service panics instead of silently simulating that service's
/// same-numbered backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimId {
    slot: usize,
    service: u64,
}

impl SimId {
    /// The registration's slot index — the `sim` label in exported
    /// metric families and the `slot` carried by recorder events
    /// ([`RegSnapshot::slot`] uses the same numbering).
    pub fn slot_index(self) -> u32 {
        self.slot as u32
    }
}

/// Rejection returned by [`SimService::try_submit`]: the target
/// simulator already has `queue_depth` requests pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured per-simulator bound that was hit.
    pub depth: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulator queue full ({} requests pending)", self.depth)
    }
}

impl Error for QueueFull {}

/// One response: the caller's tag, the epoch that served it, and the
/// simulated output vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReply {
    /// Echo of the tag passed to [`SimService::submit_tagged`] (0 for
    /// [`SimService::submit`]).
    pub tag: u64,
    /// The registration epoch whose backend evaluated this request — the
    /// generation a verifier must check `outputs` against. See the
    /// [module docs](self) on the epoch contract.
    pub epoch: u64,
    /// One bool per simulator output.
    pub outputs: Vec<bool>,
}

/// Sending half of a shared reply channel (clonable; one per client).
#[derive(Debug, Clone)]
pub struct ReplySink(Sender<SimReply>);

/// Receiving half of a shared reply channel.
#[derive(Debug)]
pub struct ReplyStream(Receiver<SimReply>);

impl ReplyStream {
    /// Block until the next reply arrives.
    ///
    /// # Panics
    ///
    /// Panics if every [`ReplySink`] half (including those held by
    /// in-flight requests) is gone — replies can no longer arrive.
    pub fn recv(&self) -> SimReply {
        self.0.recv().expect("all reply sinks dropped")
    }

    /// Non-blocking poll for a reply.
    pub fn try_recv(&self) -> Option<SimReply> {
        self.0.try_recv().ok()
    }
}

/// A shared reply channel: submit many requests against one `ReplySink`
/// clone and drain their [`SimReply`]s (tag-matched) from the stream —
/// one channel allocation per client instead of one per request.
pub fn reply_channel() -> (ReplySink, ReplyStream) {
    let (tx, rx) = channel();
    (ReplySink(tx), ReplyStream(rx))
}

/// Pending response handle of a single [`SimService::submit`] call.
#[derive(Debug)]
pub struct SimTicket(Receiver<SimReply>);

impl SimTicket {
    /// Block until the result arrives (at most `max_wait` plus one block
    /// evaluation after submission).
    ///
    /// # Panics
    ///
    /// Panics if the service thread died before answering.
    pub fn wait(self) -> Vec<bool> {
        self.wait_reply().outputs
    }

    /// Like [`wait`](SimTicket::wait), but returns the full [`SimReply`]
    /// — epoch-aware callers (hot-swap verifiers) need to know which
    /// generation answered.
    ///
    /// # Panics
    ///
    /// Panics if the service thread died before answering.
    pub fn wait_reply(self) -> SimReply {
        self.0.recv().expect("simulation service dropped")
    }
}

/// Handle-side state of one registration slot, shared with the batcher.
struct SlotState {
    /// The batcher shard this registration is pinned to
    /// ([`shard_for_key`] of its [`SimKey`]); every message for the slot
    /// goes down that shard's channel.
    shard: usize,
    /// Requests submitted but not yet flushed — incremented by every
    /// submission (bounded or not), decremented by the batcher as lanes
    /// flush; what `try_submit`'s backpressure check reads (and what
    /// [`RegSnapshot::queue_depth`] gauges).
    pending: AtomicUsize,
    /// The slot's current epoch: written by the batcher at registration
    /// (0) and on every completed swap, read by [`SimService::epoch`].
    epoch: AtomicU64,
    /// Registered input arity — fixed for the slot's lifetime; swap
    /// candidates must match.
    n_inputs: usize,
    /// Registered output arity — fixed for the slot's lifetime.
    n_outputs: usize,
    /// This registration's per-epoch metrics, shared between the handle
    /// (request / backpressure counters, snapshots) and the batcher
    /// (flush counters).
    stats: Arc<RegStats>,
}

enum Msg {
    Register {
        // Slot assigned by the handle's atomic counter. Carried in the
        // message because concurrent register() calls can reach the
        // channel in a different order than their fetch_adds.
        id: usize,
        sim: SharedSim,
        key: SimKey,
        // Shared with the handle (see SimService::slots).
        slot: Arc<SlotState>,
    },
    Submit {
        id: usize,
        bits: u64,
        tag: u64,
        reply: Sender<SimReply>,
    },
    Swap {
        id: usize,
        sim: SharedSim,
        // Acked with the new epoch once the drain + install completed.
        ack: Sender<u64>,
    },
    Shutdown,
}

/// One batcher shard: its message channel and worker thread.
struct ShardHandle {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<()>>,
}

/// The request-batching simulation service.
///
/// See the [module docs](self) for the batching protocol. All methods
/// take `&self`; the handle is `Sync` and can be shared across client
/// threads. With `ServeConfig::shards > 1`, N batcher threads each own
/// the disjoint set of registrations [`shard_for_key`] assigns them —
/// all per-registration guarantees (FIFO batching, the epoch contract,
/// stats) are unchanged, because a registration lives wholly on one
/// shard.
pub struct SimService {
    /// The batcher shards, in shard-index order (at least one).
    shards: Vec<ShardHandle>,
    stats: Arc<ServiceStats>,
    cache: Arc<BlockCache>,
    /// Per-slot shared state (owning shard, pending counter, epoch,
    /// fixed arity), indexed by `SimId::slot`.
    slots: RwLock<Vec<Arc<SlotState>>>,
    queue_depth: usize,
    /// Event sink shared with the batcher threads. `None` (the default)
    /// keeps every record site a single branch — see
    /// [`Recorder`]'s disabled-path contract.
    recorder: Option<Arc<dyn Recorder>>,
    /// Process-unique identity stamped into every issued [`SimId`].
    nonce: u64,
}

/// Source of per-service nonces (see [`SimId`]).
static NEXT_SERVICE: AtomicU64 = AtomicU64::new(0);

impl SimService {
    /// Start a service with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the matching [`ConfigError`] for degenerate
    /// configurations (see [`ServeConfig::validate`]) instead of starting
    /// a service that would panic or misbehave later.
    pub fn start(config: ServeConfig) -> Result<SimService, ConfigError> {
        SimService::start_inner(config, None)
    }

    /// Start a service with an event sink installed: the batcher emits a
    /// structured [`Event`] for every registration, flush, completed
    /// swap and backpressure rejection. With [`start`](SimService::start)
    /// (no recorder) those record sites cost one branch each — the
    /// disabled-path contract `serve_bench` holds the service to.
    ///
    /// # Errors
    ///
    /// Returns the matching [`ConfigError`] for degenerate
    /// configurations (see [`ServeConfig::validate`]).
    pub fn start_with_recorder(
        config: ServeConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<SimService, ConfigError> {
        SimService::start_inner(config, Some(recorder))
    }

    fn start_inner(
        config: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> Result<SimService, ConfigError> {
        config.validate()?;
        let stats = Arc::new(ServiceStats::default());
        let cache = Arc::new(BlockCache::new(config.cache_capacity, config.cache_shards));
        let shards = (0..config.shards)
            .map(|s| {
                let (tx, rx) = channel();
                let cache = Arc::clone(&cache);
                let recorder = recorder.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("ambipla-batcher-{s}"))
                    .spawn(move || batcher_loop(rx, config, &cache, recorder))
                    .expect("spawn batcher thread");
                ShardHandle {
                    tx,
                    worker: Some(worker),
                }
            })
            .collect();
        Ok(SimService {
            shards,
            stats,
            cache,
            slots: RwLock::new(Vec::new()),
            queue_depth: config.queue_depth,
            recorder,
            nonce: NEXT_SERVICE.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Start with [`ServeConfig::default`] (always a valid
    /// configuration, so this stays infallible).
    pub fn with_defaults() -> SimService {
        SimService::start(ServeConfig::default()).expect("default config is valid")
    }

    /// Register a simulation backend under a caller-supplied [`SimKey`];
    /// requests are queued and lane-packed per registration.
    ///
    /// The key is the backend's identity in the shared result cache — see
    /// [`SimKey`] for the stability and injectivity obligations. Distinct
    /// backend *types* coexist freely: a cover, the `GnorPla` mapped from
    /// it and its `FaultyGnorPla` twin can all be registered on one
    /// service (under distinct keys) and are batched, cached and
    /// scattered independently.
    ///
    /// # Panics
    ///
    /// Panics if the backend has more than 64 inputs (packed-assignment
    /// requests are `u64`s).
    pub fn register_sim(&self, sim: SharedSim, key: SimKey) -> SimId {
        assert!(sim.n_inputs() <= 64, "at most 64 inputs per simulator");
        let shard = shard_for_key(key, self.shards.len());
        // The stats registry is appended under the slot lock so its slot
        // numbering always matches the id numbering.
        let (id, slot) = {
            // Poison recovery: a panic under this lock cannot leave the
            // slot table half-updated (pushes are single appends).
            let mut slots = self
                .slots
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let slot = Arc::new(SlotState {
                shard,
                pending: AtomicUsize::new(0),
                epoch: AtomicU64::new(0),
                n_inputs: sim.n_inputs(),
                n_outputs: sim.n_outputs(),
                // analyze: allow(lock_order, reason = "name-keyed call graph merges ServiceStats::register (regs lock) with unrelated register fns; only regs is taken here, and regs never takes slots")
                stats: self.stats.register(),
            });
            slots.push(Arc::clone(&slot));
            (slots.len() - 1, slot)
        };
        self.shards[shard]
            .tx
            .send(Msg::Register { id, sim, key, slot })
            .expect("batcher thread alive");
        SimId {
            slot: id,
            service: self.nonce,
        }
    }

    /// Hot-swap the backend behind a registration: atomically (from any
    /// observer's point of view) drain the slot's queued requests through
    /// the outgoing backend, install `sim`, and bump the slot's epoch.
    /// Blocks until the batcher has completed the drain + install and
    /// returns the **new epoch**; after return, every later submission is
    /// served by `sim` and cached under the new epoch's keys. See the
    /// [module docs](self) for the full epoch contract (zero dropped
    /// requests, no torn blocks, exact cache invalidation).
    ///
    /// The registration's [`SimKey`] is deliberately kept: the epoch, not
    /// the key, fences off the old generation's cache entries, so the key
    /// can stay caller-stable across the backend's whole lifetime
    /// (re-minimized covers, mutated defect maps, repairs).
    ///
    /// # Panics
    ///
    /// Panics if `sim`'s input/output arity differs from the registered
    /// backend's, or if `id` was issued by a different service.
    pub fn swap_sim(&self, id: SimId, sim: SharedSim) -> u64 {
        let slot = self.slot(id);
        assert_eq!(
            sim.n_inputs(),
            slot.n_inputs,
            "swap candidate input arity differs from the registration"
        );
        assert_eq!(
            sim.n_outputs(),
            slot.n_outputs,
            "swap candidate output arity differs from the registration"
        );
        let (ack, done) = channel();
        self.shards[slot.shard]
            .tx
            .send(Msg::Swap {
                id: id.slot,
                sim,
                ack,
            })
            .expect("batcher thread alive");
        done.recv().expect("batcher thread alive")
    }

    /// The batcher shard a registration is pinned to — `shard_for_key`
    /// of its [`SimKey`] at registration time. Stable for the
    /// registration's lifetime (swaps keep the key, so they keep the
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics if `sim` was issued by a different service.
    pub fn shard_of(&self, sim: SimId) -> usize {
        self.slot(sim).shard
    }

    /// Number of batcher shards (`ServeConfig::shards`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Input/output arity of a registration: `(n_inputs, n_outputs)`,
    /// fixed at [`register_sim`](SimService::register_sim) time.
    ///
    /// # Panics
    ///
    /// Panics if `sim` was issued by a different service.
    pub fn arity(&self, sim: SimId) -> (usize, usize) {
        let slot = self.slot(sim);
        (slot.n_inputs, slot.n_outputs)
    }

    /// The current epoch of a registration: 0 until the first
    /// [`swap_sim`](SimService::swap_sim), then the number of completed
    /// swaps.
    pub fn epoch(&self, sim: SimId) -> u64 {
        self.slot(sim).epoch.load(Ordering::Acquire)
    }

    /// Register a plain cover backend — the compatibility wrapper around
    /// [`register_sim`](SimService::register_sim) with the cover's
    /// canonical key ([`SimKey::of_cover`]).
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than 64 inputs.
    pub fn register(&self, cover: Cover) -> SimId {
        let key = SimKey::of_cover(&cover);
        self.register_sim(Arc::new(cover), key)
    }

    /// Submit one packed input assignment; returns a ticket to wait on.
    /// Unbounded: trusted in-process callers may queue past
    /// `queue_depth` (use [`try_submit`](SimService::try_submit) for
    /// backpressure).
    pub fn submit(&self, sim: SimId, bits: u64) -> SimTicket {
        let (tx, rx) = channel();
        let slot = self.slot(sim);
        slot.pending.fetch_add(1, Ordering::Relaxed);
        self.submit_raw(&slot, sim, bits, 0, tx);
        SimTicket(rx)
    }

    /// Bounded submission: like [`submit`](SimService::submit), but
    /// refuses with [`QueueFull`] — and bumps the `queue_full` counter in
    /// [`stats`](SimService::stats) — once the target simulator already
    /// has `ServeConfig::queue_depth` requests pending (queued in the
    /// batcher or in flight on the channel). The caller decides whether
    /// to retry, shed load or spill to a bulk sweep.
    pub fn try_submit(&self, sim: SimId, bits: u64) -> Result<SimTicket, QueueFull> {
        let slot = self.slot(sim);
        let depth = self.queue_depth;
        if slot
            .pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                (p < depth).then_some(p + 1)
            })
            .is_err()
        {
            slot.stats.record_queue_full();
            if let Some(r) = &self.recorder {
                r.record(Event::now(EventKind::QueueFull {
                    slot: sim.slot as u32,
                }));
            }
            return Err(QueueFull { depth });
        }
        let (tx, rx) = channel();
        self.submit_raw(&slot, sim, bits, 0, tx);
        Ok(SimTicket(rx))
    }

    /// Submit against a shared reply channel with a caller-chosen tag —
    /// the high-throughput path for clients with many requests in flight.
    /// Unbounded, like [`submit`](SimService::submit).
    pub fn submit_tagged(&self, sim: SimId, bits: u64, tag: u64, reply: &ReplySink) {
        let slot = self.slot(sim);
        slot.pending.fetch_add(1, Ordering::Relaxed);
        self.submit_raw(&slot, sim, bits, tag, reply.0.clone());
    }

    /// Bounded tagged submission: [`SimService::submit_tagged`] with
    /// the backpressure of [`SimService::try_submit`] — refused with
    /// [`QueueFull`] once the target simulator has `queue_depth` requests
    /// pending. The network front end's dispatch path: many requests in
    /// flight over one shared [`ReplySink`], none allowed to queue
    /// without bound.
    pub fn try_submit_tagged(
        &self,
        sim: SimId,
        bits: u64,
        tag: u64,
        reply: &ReplySink,
    ) -> Result<(), QueueFull> {
        let slot = self.slot(sim);
        let depth = self.queue_depth;
        if slot
            .pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                (p < depth).then_some(p + 1)
            })
            .is_err()
        {
            slot.stats.record_queue_full();
            if let Some(r) = &self.recorder {
                r.record(Event::now(EventKind::QueueFull {
                    slot: sim.slot as u32,
                }));
            }
            return Err(QueueFull { depth });
        }
        self.submit_raw(&slot, sim, bits, tag, reply.0.clone());
        Ok(())
    }

    /// The shared slot state of `sim`, validating the id en route.
    fn slot(&self, sim: SimId) -> Arc<SlotState> {
        assert!(
            sim.service == self.nonce,
            "sim id was issued by a different service"
        );
        // Poison recovery: registration appends are atomic under the
        // write lock, so a poisoned table is still well-formed.
        let slots = self
            .slots
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(slots.get(sim.slot).expect("unregistered sim id"))
    }

    fn submit_raw(
        &self,
        slot: &SlotState,
        sim: SimId,
        bits: u64,
        tag: u64,
        reply: Sender<SimReply>,
    ) {
        slot.stats.record_request();
        self.shards[slot.shard]
            .tx
            .send(Msg::Submit {
                id: sim.slot,
                bits,
                tag,
                reply,
            })
            .expect("batcher thread alive");
    }

    /// Current aggregate metrics: the fold over every registration's
    /// per-epoch counters (see [`StatsSnapshot::fold`]), with eviction
    /// counts joined in from the block cache. One snapshot path — the
    /// per-registration data *is* the source of the aggregate.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::fold(&self.stats_per_registration(), self.cache.evictions())
    }

    /// Per-registration metrics of one backend, keyed by `(SimId, epoch)`:
    /// lifetime request / backpressure counters, the live queue-depth
    /// gauge, and one [`EpochSnapshot`](crate::stats::EpochSnapshot) per
    /// epoch the registration has served (flush causes, lane occupancy,
    /// cache hits/misses, flush-latency histogram).
    ///
    /// # Panics
    ///
    /// Panics if `sim` was issued by a different service.
    pub fn stats_for(&self, sim: SimId) -> RegSnapshot {
        let slot = self.slot(sim);
        slot.stats
            .snapshot(slot.pending.load(Ordering::Relaxed) as u64)
    }

    /// Every registration's [`RegSnapshot`], slot order, with live
    /// queue-depth gauges.
    pub fn stats_per_registration(&self) -> Vec<RegSnapshot> {
        // Poison recovery: snapshots only read, and the table is
        // well-formed even after a panicking writer (single appends).
        let slots = self
            .slots
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slots
            .iter()
            .map(|s| s.stats.snapshot(s.pending.load(Ordering::Relaxed) as u64))
            .collect()
    }

    /// The service's metrics as exporter-ready families: per-registration
    /// `(sim, epoch)` series plus the aggregate, renderable with
    /// [`ambipla_obs::prometheus_text`] or [`ambipla_obs::json_text`].
    pub fn metric_families(&self) -> Vec<MetricFamily> {
        crate::export::metric_families(&self.stats_per_registration(), &self.stats())
    }

    /// Drain every pending queue, stop the batcher thread and return the
    /// final metrics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        // Signal every shard before joining any, so the drains overlap.
        for shard in &self.shards {
            if shard.worker.is_some() {
                let _ = shard.tx.send(Msg::Shutdown);
            }
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                worker.join().expect("batcher thread panicked");
            }
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One registered backend on the batcher side.
///
/// The pack / evaluate / gather buffers are owned here and reused across
/// flushes — after the first full-width flush the flush path allocates
/// nothing but cache keys (when caching) and the reply payloads.
struct Registered {
    sim: SharedSim,
    key: SimKey,
    /// Cached `sim.n_inputs()` (the packer needs it on every flush).
    n_inputs: usize,
    /// Cached `sim.n_outputs()` (sizes the output buffer).
    n_outputs: usize,
    /// Lane words per full block (`ServeConfig::block_words`).
    block_words: usize,
    /// The service's tier policy (`ServeConfig::tier_policy`).
    tier_policy: TierPolicy,
    /// Auto-promotion traffic floor (`ServeConfig::tier_min_requests`).
    tier_min_requests: u64,
    /// Whether this backend may ever be materialized: the policy is
    /// enabled, the arity is within `tier_max_inputs`, and the table
    /// price fits `tier_max_table_bytes` (the memory guard). Fixed at
    /// registration — swaps keep the arity, so they keep eligibility.
    tier_eligible: bool,
    /// The materialized tier: `Some` once promoted, dropped (and
    /// possibly rebuilt) on every swap. When present, `flush` answers
    /// every lane from it by indexed load.
    table: Option<TruthTable>,
    /// Lanes flushed under the current epoch — the Auto policy's
    /// traffic-floor counter. Reset on swap.
    lanes_served: u64,
    /// Lanes the *backend* actually evaluated under the current epoch
    /// (cache hits excluded, full `words × 64` per eval call): the Auto
    /// policy's spend counter — promotion is profitable once this
    /// reaches `2^n_inputs` (see the module docs). Reset on swap.
    eval_lanes: u64,
    /// State shared with the handle: the pending counter this side
    /// decrements on flush, and the epoch this side publishes on swap.
    slot: Arc<SlotState>,
    /// The serving generation: 0 at registration, +1 per completed swap.
    /// Part of every cache key and stamped into every reply.
    epoch: u64,
    /// The live epoch's stats — cached so the flush hot path records
    /// straight into atomics without touching the registry lock; replaced
    /// by `RegStats::begin_epoch` on every swap.
    epoch_stats: Arc<EpochStats>,
    vectors: Vec<u64>,
    replies: Vec<(u64, Sender<SimReply>)>,
    opened: Option<Instant>,
    /// Packed input block, `n_inputs × words`, signal-major.
    packed: Vec<u64>,
    /// Output block, `n_outputs × words`, signal-major.
    out: Vec<u64>,
    /// One 64-lane sub-block's input words (cache-key scratch).
    subkey: Vec<u64>,
    /// Word indices of *distinct* sub-blocks that missed the cache.
    miss_words: Vec<usize>,
    /// The lookup-built cache key of each distinct miss, kept so the
    /// insert after evaluation does not construct (and clone) it again.
    miss_keys: Vec<BlockKey>,
    /// Missed sub-blocks identical to an earlier miss of the same flush:
    /// `(word, index into miss_words)` — they reuse that evaluation.
    miss_alias: Vec<(usize, usize)>,
    /// Gathered input / output blocks of the missing sub-blocks.
    miss_in: Vec<u64>,
    miss_out: Vec<u64>,
}

impl Registered {
    fn new(sim: SharedSim, key: SimKey, config: &ServeConfig, slot: Arc<SlotState>) -> Registered {
        let n_inputs = sim.n_inputs();
        let n_outputs = sim.n_outputs();
        let epoch_stats = slot.stats.current_epoch();
        // Short-circuit order matters: table_bytes asserts n_inputs < 64,
        // which the first two tests (with validate's tier_max_inputs < 64
        // bound) guarantee.
        let tier_eligible = config.tier_policy != TierPolicy::Disabled
            && n_inputs <= config.tier_max_inputs
            && table_bytes(n_inputs, n_outputs) <= config.tier_max_table_bytes as u128;
        Registered {
            sim,
            key,
            n_inputs,
            n_outputs,
            block_words: config.block_words,
            tier_policy: config.tier_policy,
            tier_min_requests: config.tier_min_requests,
            tier_eligible,
            table: None,
            lanes_served: 0,
            eval_lanes: 0,
            slot,
            epoch: 0,
            epoch_stats,
            vectors: Vec::with_capacity(config.block_words * LANES),
            replies: Vec::with_capacity(config.block_words * LANES),
            opened: None,
            packed: Vec::new(),
            out: Vec::new(),
            subkey: vec![0u64; n_inputs],
            miss_words: Vec::new(),
            miss_keys: Vec::new(),
            miss_alias: Vec::new(),
            miss_in: Vec::new(),
            miss_out: Vec::new(),
        }
    }

    /// Materialize the current backend into a [`TruthTable`] and flip
    /// the slot's tier — the promotion itself, shared by Auto (after a
    /// qualifying flush), Forced (at registration) and the post-swap
    /// re-materialization. The sweep cost is measured for real and
    /// carried by the [`EventKind::TierPromote`] event.
    fn promote(&mut self, recorder: &Option<Arc<dyn Recorder>>) {
        let started = Instant::now();
        let table = TruthTable::from_simulator(self.sim.as_ref());
        let build_ns = started.elapsed().as_nanos() as u64;
        self.slot.stats.set_tier(Tier::Materialized);
        if let Some(rec) = recorder {
            rec.record(Event::now(EventKind::TierPromote {
                slot: self.slot.stats.slot(),
                epoch: self.epoch,
                inputs: self.n_inputs as u32,
                build_ns,
            }));
        }
        self.table = Some(table);
    }

    fn flush(
        &mut self,
        cause: FlushCause,
        cache: &BlockCache,
        recorder: &Option<Arc<dyn Recorder>>,
    ) {
        if self.vectors.is_empty() {
            return;
        }
        if let Some(table) = &self.table {
            // Materialized tier: answer every lane by indexed load — no
            // packing, no cache traffic, no backend call. The stats /
            // event / pending contracts are the batched path's exactly
            // (words priced as the batched flush would, zero cache
            // hits and misses).
            let lanes = self.vectors.len();
            let words = lanes.div_ceil(LANES);
            let latency_ns = self
                .opened
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            self.epoch_stats
                .record_flush(cause, lanes, words, latency_ns, 0, 0);
            self.slot.pending.fetch_sub(lanes, Ordering::Relaxed);
            if let Some(rec) = recorder {
                rec.record(Event::now(EventKind::Flush {
                    slot: self.slot.stats.slot(),
                    epoch: self.epoch,
                    cause,
                    lanes: lanes as u32,
                    words: words as u32,
                    latency_ns,
                    cache_hits: 0,
                    cache_misses: 0,
                }));
            }
            for (lane, (tag, reply)) in self.replies.drain(..).enumerate() {
                let _ = reply.send(SimReply {
                    tag,
                    epoch: self.epoch,
                    outputs: table.lookup_bits(self.vectors[lane]),
                });
            }
            self.vectors.clear();
            self.opened = None;
            return;
        }
        let lanes = self.vectors.len();
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        // A partial (deadline / shutdown) flush only pays for the lane
        // words it actually needs.
        let words = lanes.div_ceil(LANES);
        let latency_ns = self
            .opened
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        self.packed.clear();
        self.packed.resize(self.n_inputs * words, 0);
        pack_vectors_words(&self.vectors, self.n_inputs, words, &mut self.packed);
        self.out.clear();
        self.out.resize(self.n_outputs * words, 0);
        if cache.is_disabled() {
            // Skip key construction and shard locking entirely on the
            // cache-off configuration (the cold-path bench measures this).
            self.sim.eval_words(&self.packed, &mut self.out, words);
            self.eval_lanes += (words * LANES) as u64;
        } else {
            // Consult the cache per 64-lane sub-block — the same keys a
            // block_words = 1 service would use, so hit semantics do not
            // depend on the configured width.
            self.miss_words.clear();
            self.miss_keys.clear();
            self.miss_alias.clear();
            for w in 0..words {
                for i in 0..self.n_inputs {
                    self.subkey[i] = self.packed[i * words + w];
                }
                let key = BlockKey::new(self.key, self.epoch, &self.subkey);
                match cache.lookup(&key) {
                    Some(cached) => {
                        cache_hits += 1;
                        for (j, &v) in cached.iter().enumerate() {
                            self.out[j * words + w] = v;
                        }
                    }
                    None => {
                        // A sub-block identical to an earlier miss of
                        // this flush is evaluated (and inserted) once.
                        let dup = self.miss_words.iter().position(|&u| {
                            (0..self.n_inputs)
                                .all(|i| self.packed[i * words + u] == self.packed[i * words + w])
                        });
                        match dup {
                            Some(k) => self.miss_alias.push((w, k)),
                            None => {
                                self.miss_words.push(w);
                                self.miss_keys.push(key);
                            }
                        }
                    }
                }
            }
            // Duplicate sub-blocks within this flush were cache lookups
            // too, so they count as misses like the entries they alias.
            cache_misses = self.miss_words.len() + self.miss_alias.len();
            if !self.miss_words.is_empty() {
                // Gather the missing sub-blocks into one narrower block
                // and evaluate them with a single eval_words call.
                let mw = self.miss_words.len();
                self.miss_in.clear();
                self.miss_in.resize(self.n_inputs * mw, 0);
                self.miss_out.clear();
                self.miss_out.resize(self.n_outputs * mw, 0);
                for (k, &w) in self.miss_words.iter().enumerate() {
                    for i in 0..self.n_inputs {
                        self.miss_in[i * mw + k] = self.packed[i * words + w];
                    }
                }
                self.sim.eval_words(&self.miss_in, &mut self.miss_out, mw);
                self.eval_lanes += (mw * LANES) as u64;
                for ((k, &w), key) in self
                    .miss_words
                    .iter()
                    .enumerate()
                    .zip(self.miss_keys.drain(..))
                {
                    let value: Vec<u64> = (0..self.n_outputs)
                        .map(|j| self.miss_out[j * mw + k])
                        .collect();
                    for (j, &v) in value.iter().enumerate() {
                        self.out[j * words + w] = v;
                    }
                    cache.insert(key, value);
                }
                for &(w, k) in &self.miss_alias {
                    let u = self.miss_words[k];
                    for j in 0..self.n_outputs {
                        self.out[j * words + w] = self.out[j * words + u];
                    }
                }
            }
        }
        // Account before scattering: a reply is the caller's signal that
        // its request fully left the service, so by the time a ticket
        // resolves the flush must already be visible in the stats and the
        // pending count (a drain-then-try_submit or drain-then-stats
        // sequence must not race these updates).
        self.epoch_stats
            .record_flush(cause, lanes, words, latency_ns, cache_hits, cache_misses);
        self.slot.pending.fetch_sub(lanes, Ordering::Relaxed);
        if let Some(rec) = recorder {
            rec.record(Event::now(EventKind::Flush {
                slot: self.slot.stats.slot(),
                epoch: self.epoch,
                cause,
                lanes: lanes as u32,
                words: words as u32,
                latency_ns,
                cache_hits: cache_hits as u32,
                cache_misses: cache_misses as u32,
            }));
        }
        // Scatter lane results. Only the `lanes` valid lanes are ever
        // unpacked, which is what makes partial (deadline) blocks safe —
        // see `logic::eval::lane_mask`.
        for (lane, (tag, reply)) in self.replies.drain(..).enumerate() {
            // A client may have dropped its ticket; that is not an error.
            let _ = reply.send(SimReply {
                tag,
                epoch: self.epoch,
                outputs: unpack_lane_words(&self.out, lane, words),
            });
        }
        self.vectors.clear();
        self.opened = None;
        // Auto-tiering: once this epoch's backend spend has provably paid
        // for a full exhaustive sweep (eval_lanes ≥ 2^n — see the module
        // docs for why the per-lane cost cancels) and the traffic floor
        // is met, materialize so the *next* flush serves by indexed load.
        self.lanes_served += lanes as u64;
        if self.tier_policy == TierPolicy::Auto
            && self.tier_eligible
            && self.lanes_served >= self.tier_min_requests
            && self.eval_lanes >= 1u64 << self.n_inputs
        {
            self.promote(recorder);
        }
    }
}

fn batcher_loop(
    rx: Receiver<Msg>,
    config: ServeConfig,
    cache: &BlockCache,
    recorder: Option<Arc<dyn Recorder>>,
) {
    let max_wait = config.max_wait;
    // Slot-addressed by SimId: concurrent register() calls may deliver
    // their Register messages out of id order, so slots can fill in any
    // order (None = id allocated but message not yet here).
    let mut registry: Vec<Option<Registered>> = Vec::new();
    // Cached min of all open queues' `opened` times, so the per-message
    // cost stays O(1) in the number of registered backends. Opening a
    // queue can only lower the min (updated inline); flushing can only
    // remove it, which marks the cache stale and triggers one lazy rescan.
    let mut oldest_open: Option<Instant> = None;
    let mut oldest_stale = false;
    loop {
        if oldest_stale {
            oldest_open = registry.iter().flatten().filter_map(|r| r.opened).min();
            oldest_stale = false;
        }
        // The next deadline is the oldest open queue's first-enqueue time
        // plus max_wait; with nothing queued, just block on the channel.
        let deadline = oldest_open.map(|oldest| oldest + max_wait);
        let msg = match deadline {
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // handle dropped without Shutdown
            },
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    for r in registry.iter_mut().flatten() {
                        if r.opened.is_some_and(|t| t + max_wait <= now) {
                            r.flush(FlushCause::Deadline, cache, &recorder);
                        }
                    }
                    oldest_stale = true;
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match msg {
            Msg::Register { id, sim, key, slot } => {
                if id >= registry.len() {
                    registry.resize_with(id + 1, || None);
                }
                let mut r = Registered::new(sim, key, &config, slot);
                if let Some(rec) = &recorder {
                    rec.record(Event::now(EventKind::Register { slot: id as u32 }));
                }
                // Forced tier: the table is ready before the first
                // request (register_sim has already returned the id, but
                // every Submit for it lands behind this message).
                if r.tier_policy == TierPolicy::Forced && r.tier_eligible {
                    r.promote(&recorder);
                }
                registry[id] = Some(r);
            }
            Msg::Submit {
                id,
                bits,
                tag,
                reply,
            } => {
                // A submit can only be sent with a SimId returned by a
                // register call, whose Register message precedes it on
                // this channel (same thread: FIFO; cross-thread: the id
                // handoff orders the sends).
                let r = registry
                    .get_mut(id)
                    .and_then(Option::as_mut)
                    // analyze: allow(panic_freedom, reason = "channel FIFO guarantees Register precedes Submit for a handed-out SimId; reachable only via memory corruption")
                    .expect("submit for a backend whose registration never arrived");
                if r.vectors.is_empty() {
                    let now = Instant::now();
                    r.opened = Some(now);
                    if oldest_open.is_none_or(|oldest| now < oldest) {
                        oldest_open = Some(now);
                    }
                }
                r.vectors.push(bits);
                r.replies.push((tag, reply));
                if r.vectors.len() == r.block_words * LANES {
                    let was_oldest = r.opened == oldest_open;
                    r.flush(FlushCause::Full, cache, &recorder);
                    if was_oldest {
                        oldest_stale = true;
                    }
                }
            }
            Msg::Swap { id, sim, ack } => {
                // Same ordering argument as Submit: the SimId handoff puts
                // the Register message ahead of the Swap on this channel.
                let r = registry
                    .get_mut(id)
                    .and_then(Option::as_mut)
                    // analyze: allow(panic_freedom, reason = "channel FIFO guarantees Register precedes Swap for a handed-out SimId; reachable only via memory corruption")
                    .expect("swap for a backend whose registration never arrived");
                // Drain the outgoing generation: everything queued before
                // the swap message is already ahead of it on the channel,
                // so this flush answers every such request under the old
                // epoch — zero drops, no torn blocks.
                let had_open = r.opened.is_some();
                let drained_lanes = r.vectors.len();
                r.flush(FlushCause::Swap, cache, &recorder);
                // The outgoing backend's table (if any) is stale the
                // moment the new backend installs — drop it and reset the
                // new epoch's promotion counters before deciding whether
                // to re-materialize below.
                let was_materialized = r.table.take().is_some();
                r.slot.stats.set_tier(Tier::Batched);
                r.lanes_served = 0;
                r.eval_lanes = 0;
                r.sim = sim;
                r.epoch += 1;
                r.epoch_stats = r.slot.stats.begin_epoch();
                debug_assert_eq!(r.epoch_stats.epoch(), r.epoch);
                r.slot.epoch.store(r.epoch, Ordering::Release);
                if let Some(rec) = &recorder {
                    rec.record(Event::now(EventKind::Swap {
                        slot: id as u32,
                        from_epoch: r.epoch - 1,
                        to_epoch: r.epoch,
                        drained_lanes: drained_lanes as u32,
                    }));
                }
                // Re-materialize under the new epoch before acking, so a
                // materialized registration never silently degrades
                // across a swap: Forced always, Auto when the slot had
                // already proven the table worthwhile.
                if r.tier_eligible
                    && (r.tier_policy == TierPolicy::Forced
                        || (r.tier_policy == TierPolicy::Auto && was_materialized))
                {
                    r.promote(&recorder);
                }
                if had_open {
                    oldest_stale = true;
                }
                // The swapper may have given up waiting; not an error.
                let _ = ack.send(r.epoch);
            }
            Msg::Shutdown => break,
        }
    }
    for r in registry.iter_mut().flatten() {
        r.flush(FlushCause::Shutdown, cache, &recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambipla_core::{GnorPla, Simulator};
    use fault::{DefectKind, DefectMap, FaultyGnorPla};

    fn adder() -> Cover {
        Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover")
    }

    /// The adder's faulty twin: one stuck-on crosspoint in the input
    /// plane, which visibly corrupts the function.
    fn faulty_adder() -> FaultyGnorPla {
        let pla = GnorPla::from_cover(&adder());
        let d = pla.dimensions();
        let mut defects = DefectMap::clean(d.products, d.inputs, d.outputs);
        defects.set_input_defect(0, 0, DefectKind::StuckOn);
        FaultyGnorPla::new(pla, defects)
    }

    fn quick() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    /// Config for driving `Registered::flush` directly at a chosen block
    /// width (the tier knobs stay at their defaults, far above these
    /// tests' traffic).
    fn words_config(block_words: usize) -> ServeConfig {
        ServeConfig {
            block_words,
            ..ServeConfig::default()
        }
    }

    /// A standalone slot for driving `Registered::flush` directly.
    fn test_slot(pending: usize, n_inputs: usize, n_outputs: usize) -> Arc<SlotState> {
        Arc::new(SlotState {
            shard: 0,
            pending: AtomicUsize::new(pending),
            epoch: AtomicU64::new(0),
            n_inputs,
            n_outputs,
            stats: Arc::new(RegStats::new(0)),
        })
    }

    #[test]
    fn single_request_matches_direct_eval() {
        let service = SimService::start(quick()).expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        for bits in 0..8u64 {
            assert_eq!(service.submit(id, bits).wait(), cover.eval_bits(bits));
        }
    }

    #[test]
    fn heterogeneous_backends_share_one_service() {
        // The tentpole scenario: a nominal PLA and its faulty twin served
        // side by side, plus the raw specification cover — three backend
        // types, one batcher, one cache.
        let service = SimService::start(quick()).expect("valid config");
        let cover = adder();
        let nominal = GnorPla::from_cover(&cover);
        let faulty = faulty_adder();

        let cid = service.register(cover.clone());
        let nid = service.register_sim(
            Arc::new(nominal.clone()),
            SimKey::new(SimKey::of_cover(&cover).raw() ^ 0x1),
        );
        let fid = service.register_sim(
            Arc::new(faulty.clone()),
            SimKey::new(SimKey::of_cover(&cover).raw() ^ 0x2),
        );

        // The fault must actually distinguish the twins somewhere.
        assert!((0..8u64).any(|b| faulty.simulate_bits(b) != nominal.simulate_bits(b)));

        let tickets: Vec<_> = (0..24u64)
            .map(|i| {
                let bits = i % 8;
                (
                    bits,
                    service.submit(cid, bits),
                    service.submit(nid, bits),
                    service.submit(fid, bits),
                )
            })
            .collect();
        for (bits, ct, nt, ft) in tickets {
            assert_eq!(ct.wait(), cover.eval_bits(bits), "cover bits {bits:03b}");
            assert_eq!(
                nt.wait(),
                nominal.simulate_bits(bits),
                "nominal bits {bits:03b}"
            );
            assert_eq!(
                ft.wait(),
                faulty.simulate_bits(bits),
                "faulty bits {bits:03b}"
            );
        }
    }

    #[test]
    fn same_key_same_blocks_share_cached_results() {
        // A cover and the (functionally identical) PLA mapped from it may
        // legitimately share a SimKey: the second registration's blocks
        // then hit the first one's cache entries.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let key = SimKey::of_cover(&cover);
        let cid = service.register(cover.clone());
        let pid = service.register_sim(Arc::new(GnorPla::from_cover(&cover)), key);
        let (sink, stream) = reply_channel();
        for id in [cid, pid] {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
            }
        }
        let snap = service.stats();
        assert_eq!(snap.blocks, 2);
        assert_eq!(snap.cache_misses, 1, "the cover's block populates");
        assert_eq!(snap.cache_hits, 1, "the PLA's identical block reuses it");
    }

    #[test]
    fn try_submit_rejects_once_the_queue_is_full() {
        let service = SimService::start(ServeConfig {
            // Nothing flushes until shutdown: the queue can only grow.
            max_wait: Duration::from_secs(10),
            queue_depth: 4,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..4u64)
            .map(|bits| (bits, service.try_submit(id, bits).expect("below depth")))
            .collect();
        assert_eq!(
            service.try_submit(id, 0).unwrap_err(),
            QueueFull { depth: 4 }
        );
        assert_eq!(
            service.try_submit(id, 1).unwrap_err(),
            QueueFull { depth: 4 }
        );
        // The unbounded path is not subject to the bound.
        let overflow = service.submit(id, 5);
        let snap = service.stats();
        assert_eq!(snap.queue_full, 2);
        assert_eq!(snap.requests, 5, "rejected submissions are not requests");
        // Draining still answers everything that was accepted.
        let snap = service.shutdown();
        assert_eq!(snap.queue_full, 2);
        for (bits, ticket) in tickets {
            assert_eq!(ticket.wait(), cover.eval_bits(bits));
        }
        assert_eq!(overflow.wait(), cover.eval_bits(5));
    }

    #[test]
    fn flushes_free_queue_capacity() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_millis(1),
            queue_depth: 2,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        for round in 0..5u64 {
            let a = service.try_submit(id, round % 8).expect("capacity freed");
            let b = service
                .try_submit(id, (round + 1) % 8)
                .expect("second slot free");
            // Once a ticket resolves, its lane has left the pending count
            // (the flush decrements before scattering).
            assert_eq!(a.wait(), cover.eval_bits(round % 8), "round {round}");
            assert_eq!(b.wait(), cover.eval_bits((round + 1) % 8));
        }
        assert_eq!(service.shutdown().queue_full, 0);
    }

    #[test]
    fn queues_are_bounded_per_simulator() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            queue_depth: 2,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let a = service.register(adder());
        let b = service.register_sim(Arc::new(faulty_adder()), SimKey::new(7));
        let _a1 = service.try_submit(a, 0).expect("a has capacity");
        let _a2 = service.try_submit(a, 1).expect("a has capacity");
        assert!(service.try_submit(a, 2).is_err(), "a is full");
        // b's queue is independent.
        let _b1 = service.try_submit(b, 0).expect("b has its own bound");
    }

    #[test]
    fn full_block_flushes_without_waiting_for_the_deadline() {
        // A generous deadline: if the 64th request did not trigger the
        // flush, this test would sit for 10 s and time out.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for tag in 0..64u64 {
            service.submit_tagged(id, tag % 8, tag, &sink);
        }
        for _ in 0..64 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 64);
        assert_eq!(snap.full_flushes, 1);
        assert_eq!(snap.deadline_flushes, 0);
        assert_eq!(snap.lanes_filled, 64);
        assert!((snap.lane_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_block_flushes_at_the_deadline() {
        let service = SimService::start(quick()).expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..5u64)
            .map(|bits| (bits, service.submit(id, bits)))
            .collect();
        for (bits, ticket) in tickets {
            assert_eq!(ticket.wait(), cover.eval_bits(bits), "bits {bits:03b}");
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 5);
        // ≥ 1, not == 1: a preempted submitter can split the five requests
        // over several deadline windows on a loaded machine.
        assert!(snap.deadline_flushes >= 1);
        assert_eq!(snap.full_flushes, 0);
        assert_eq!(snap.lanes_filled, 5);
        assert!(snap.p99_flush_ns >= 1_000_000, "waited at least max_wait");
    }

    #[test]
    fn repeated_blocks_hit_the_cache() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for round in 0..3 {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(
                    reply.outputs,
                    cover.eval_bits(reply.tag % 8),
                    "round {round}"
                );
            }
        }
        let snap = service.stats();
        assert_eq!(snap.blocks, 3);
        assert_eq!(snap.cache_misses, 1, "first block populates");
        assert_eq!(snap.cache_hits, 2, "identical blocks reuse it");
        assert!(snap.cache_hit_rate > 0.6);
    }

    #[test]
    fn covers_are_batched_independently() {
        let service = SimService::start(quick()).expect("valid config");
        let xor = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let and = Cover::parse("11 1", 2, 1).expect("valid cover");
        let xid = service.register(xor.clone());
        let aid = service.register(and.clone());
        // Interleave submissions across the two covers.
        let pairs: Vec<_> = (0..10u64)
            .map(|bits| {
                let bits = bits % 4;
                (service.submit(xid, bits), service.submit(aid, bits), bits)
            })
            .collect();
        for (xt, at, bits) in pairs {
            assert_eq!(xt.wait(), xor.eval_bits(bits));
            assert_eq!(at.wait(), and.eval_bits(bits));
        }
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..3u64)
            .map(|bits| (bits, service.submit(id, bits)))
            .collect();
        let snap = service.shutdown();
        assert_eq!(snap.shutdown_flushes, 1);
        for (bits, ticket) in tickets {
            assert_eq!(ticket.wait(), cover.eval_bits(bits));
        }
    }

    #[test]
    #[should_panic(expected = "unregistered sim id")]
    fn submitting_against_an_unknown_backend_panics() {
        let service = SimService::with_defaults();
        let forged = SimId {
            slot: 3,
            service: service.nonce,
        };
        service.submit(forged, 0);
    }

    #[test]
    #[should_panic(expected = "issued by a different service")]
    fn sim_ids_do_not_transfer_between_services() {
        let a = SimService::with_defaults();
        let b = SimService::with_defaults();
        let id = a.register(adder());
        b.submit(id, 0);
    }

    #[test]
    fn concurrent_registration_binds_ids_to_the_right_backends() {
        // Regression: ids are allocated under the handle's slot lock but
        // Register messages from different threads can reach the batcher
        // out of id order — each thread must still get answers from *its*
        // backend.
        let service = SimService::start(quick()).expect("valid config");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let service = &service;
                s.spawn(move || {
                    // Recognizer of the 3-bit pattern `t`: output is 1 on
                    // exactly one assignment, different per thread.
                    let text: String = (0..3)
                        .map(|i| if t >> i & 1 == 1 { '1' } else { '0' })
                        .collect::<String>()
                        + " 1";
                    let cover = Cover::parse(&text, 3, 1).expect("valid cover");
                    let id = service.register(cover.clone());
                    for bits in 0..8u64 {
                        assert_eq!(
                            service.submit(id, bits).wait(),
                            vec![bits == t],
                            "thread {t} bits {bits:03b}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn dropped_tickets_do_not_wedge_the_service() {
        let service = SimService::start(quick()).expect("valid config");
        let id = service.register(adder());
        drop(service.submit(id, 1)); // client walks away
        let ticket = service.submit(id, 2);
        assert_eq!(ticket.wait(), adder().eval_bits(2));
    }

    #[test]
    fn wide_blocks_flush_full_at_block_words_times_64() {
        // block_words = 2: 128 requests are exactly one full flush, and
        // the generous deadline proves the 128th request triggered it.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            block_words: 2,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for tag in 0..128u64 {
            service.submit_tagged(id, tag % 8, tag, &sink);
        }
        for _ in 0..128 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 128);
        assert_eq!(snap.full_flushes, 1);
        assert_eq!(snap.deadline_flushes, 0);
        assert_eq!(snap.lanes_filled, 128);
        assert_eq!(snap.lane_capacity, 128);
        assert!((snap.lane_occupancy - 1.0).abs() < 1e-12);
        // Per-sub-block cache keys: one flush, two 64-lane lookups (both
        // sub-blocks pack the same tag%8 pattern, so they miss together
        // and the flush deduplicates them into one evaluation + entry).
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 0);
    }

    /// Identical 64-lane sub-blocks inside one wide flush are evaluated
    /// (and inserted) once: the counting backend sees exactly one lane
    /// word for a 2-word flush whose halves pack the same columns.
    #[test]
    fn identical_sub_blocks_within_one_flush_evaluate_once() {
        struct Counting {
            inner: Cover,
            words_evaluated: AtomicUsize,
        }
        impl Simulator for Counting {
            fn n_inputs(&self) -> usize {
                self.inner.n_inputs()
            }
            fn n_outputs(&self) -> usize {
                Cover::n_outputs(&self.inner)
            }
            fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
                self.words_evaluated.fetch_add(words, Ordering::Relaxed);
                self.inner.eval_words(inputs, out, words);
            }
        }
        let cover = adder();
        let counting = Arc::new(Counting {
            inner: cover.clone(),
            words_evaluated: AtomicUsize::new(0),
        });
        let cache = BlockCache::new(64, 2);
        let mut reg = Registered::new(
            Arc::clone(&counting) as SharedSim,
            SimKey::of_cover(&cover),
            &words_config(2),
            test_slot(128, 3, 2),
        );
        let (tx, rx) = channel();
        for i in 0..128u64 {
            reg.vectors.push(i % 8); // both 64-lane halves pack identically
            reg.replies.push((i, tx.clone()));
        }
        reg.flush(FlushCause::Full, &cache, &None);
        for _ in 0..128 {
            let reply = rx.recv().expect("flush scattered every lane");
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        assert_eq!(
            counting.words_evaluated.load(Ordering::Relaxed),
            1,
            "the duplicate sub-block must reuse the first one's evaluation"
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 1, "one entry covers both sub-blocks");
    }

    /// The multi-word generalization of the garbage-lane regression test:
    /// a flush of 130 requests (2 full lane words + 2 lanes of a third)
    /// must never leak the 62 masked tail lanes into replies or cache
    /// entries. Drives `Registered::flush` directly so the 130-lane
    /// partial block is deterministic (a live service may split it across
    /// deadline windows under load).
    #[test]
    fn multi_word_partial_flush_masks_tail_lanes() {
        let cover = adder();
        let cache = BlockCache::new(64, 2);
        let slot = test_slot(260, 3, 2);
        let mut reg = Registered::new(
            Arc::new(cover.clone()),
            SimKey::of_cover(&cover),
            &words_config(3),
            Arc::clone(&slot),
        );
        let (tx, rx) = channel();
        for round in 0..2 {
            for i in 0..130u64 {
                reg.vectors.push(i % 8);
                reg.replies.push((i, tx.clone()));
            }
            reg.flush(FlushCause::Deadline, &cache, &None);
            for _ in 0..130 {
                let reply = rx.recv().expect("flush scattered every lane");
                assert_eq!(
                    reply.outputs,
                    cover.eval_bits(reply.tag % 8),
                    "round {round} tag {}",
                    reply.tag
                );
            }
        }
        // Round one populates three 64-lane sub-blocks (the partial tail
        // packs zero-filled, so its entry is the deterministic evaluation
        // of those zero lanes); round two hits all three.
        assert_eq!(cache.misses(), 3, "three sub-blocks populate");
        assert_eq!(cache.hits(), 3, "identical sub-blocks are reused");
        let snap = StatsSnapshot::fold(&[slot.stats.snapshot(0)], cache.evictions());
        assert_eq!(snap.lanes_filled, 260);
        assert_eq!(snap.lane_capacity, 2 * 192);
        // The per-flush cache accounting folds to the cache's own totals.
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 3);
    }

    /// Mixed hit/miss flushes: when some sub-blocks of a wide flush are
    /// cached and others are not, only the misses are evaluated (gathered
    /// into one narrower eval_words call) and every lane still scatters
    /// the right answer.
    #[test]
    fn partially_cached_wide_flushes_evaluate_only_the_misses() {
        let cover = adder();
        let cache = BlockCache::new(64, 2);
        let mut reg = Registered::new(
            Arc::new(cover.clone()),
            SimKey::of_cover(&cover),
            &words_config(2),
            test_slot(64 + 128, 3, 2),
        );
        let (tx, rx) = channel();
        // Warm exactly one sub-block: lanes 0..64 of the wide flush below.
        for i in 0..64u64 {
            reg.vectors.push(i % 8);
            reg.replies.push((i, tx.clone()));
        }
        reg.flush(FlushCause::Deadline, &cache, &None);
        for _ in 0..64 {
            let reply = rx.recv().expect("warm flush scattered");
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Wide flush: sub-block 0 repeats the warmed pattern, sub-block 1
        // is fresh.
        for i in 0..128u64 {
            reg.vectors.push(if i < 64 { i % 8 } else { (i + 3) % 8 });
            reg.replies.push((i, tx.clone()));
        }
        reg.flush(FlushCause::Full, &cache, &None);
        for _ in 0..128 {
            let reply = rx.recv().expect("wide flush scattered");
            let bits = if reply.tag < 64 {
                reply.tag % 8
            } else {
                (reply.tag + 3) % 8
            };
            assert_eq!(reply.outputs, cover.eval_bits(bits), "tag {}", reply.tag);
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    /// Requests queued before a swap are answered by the *old* backend
    /// under the old epoch; requests after it by the *new* backend under
    /// the bumped epoch — the per-reply half of the epoch contract.
    #[test]
    fn swap_splits_replies_by_epoch() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10), // only swaps flush
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let nominal = GnorPla::from_cover(&cover);
        let faulty = faulty_adder();
        // The fault must distinguish the generations somewhere.
        let split = (0..8u64)
            .find(|&b| faulty.simulate_bits(b) != nominal.simulate_bits(b))
            .expect("injected fault is visible");

        let id = service.register_sim(Arc::new(nominal.clone()), SimKey::new(1));
        assert_eq!(service.epoch(id), 0);
        let before = service.submit(id, split);
        let epoch = service.swap_sim(id, Arc::new(faulty.clone()));
        assert_eq!(epoch, 1);
        assert_eq!(service.epoch(id), 1);
        let after = service.submit(id, split);

        let r0 = before.wait_reply();
        assert_eq!(r0.epoch, 0);
        assert_eq!(r0.outputs, nominal.simulate_bits(split));
        drop(service); // shutdown drains the post-swap queue
        let r1 = after.wait_reply();
        assert_eq!(r1.epoch, 1);
        assert_eq!(r1.outputs, faulty.simulate_bits(split));
    }

    #[test]
    fn swapping_an_empty_queue_still_bumps_the_epoch() {
        let service = SimService::start(quick()).expect("valid config");
        let id = service.register(adder());
        for expect in 1..=5u64 {
            assert_eq!(service.swap_sim(id, Arc::new(adder())), expect);
        }
        assert_eq!(service.epoch(id), 5);
        let snap = service.shutdown();
        assert_eq!(snap.swaps, 5);
        assert_eq!(snap.swap_flushes, 0, "nothing was queued to drain");
    }

    #[test]
    fn swap_drain_answers_every_queued_request() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..5u64)
            .map(|bits| (bits, service.submit(id, bits)))
            .collect();
        service.swap_sim(id, Arc::new(cover.clone()));
        for (bits, ticket) in tickets {
            let reply = ticket.wait_reply();
            assert_eq!(reply.epoch, 0, "drained under the outgoing epoch");
            assert_eq!(reply.outputs, cover.eval_bits(bits));
        }
        let snap = service.shutdown();
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.swap_flushes, 1);
        assert_eq!(snap.lanes_filled, 5);
    }

    #[test]
    #[should_panic(expected = "input arity differs")]
    fn swap_rejects_mismatched_arity() {
        let service = SimService::start(quick()).expect("valid config");
        let id = service.register(adder());
        let xor = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        service.swap_sim(id, Arc::new(xor));
    }

    /// A swap must invalidate exactly the swapped registration's cached
    /// blocks: the same packed pattern misses once per epoch, while an
    /// untouched registration keeps hitting its warm entries.
    #[test]
    fn swap_invalidates_only_the_swapped_keys_cache() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let swapped = service.register_sim(Arc::new(cover.clone()), SimKey::new(1));
        let bystander = service.register_sim(Arc::new(cover.clone()), SimKey::new(2));
        let (sink, stream) = reply_channel();
        let fill = |id| {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
            }
        };
        // Warm both registrations, then prove both patterns are warm.
        fill(swapped);
        fill(bystander);
        fill(swapped);
        fill(bystander);
        let snap = service.stats();
        assert_eq!((snap.cache_misses, snap.cache_hits), (2, 2));
        // Swap one; its next identical block must miss (new epoch keys)
        // while the bystander keeps its warm hit rate.
        service.swap_sim(swapped, Arc::new(cover.clone()));
        fill(swapped);
        fill(bystander);
        let snap = service.stats();
        assert_eq!(snap.cache_misses, 3, "only the swapped epoch repopulates");
        assert_eq!(snap.cache_hits, 3, "the bystander still hits");
    }

    #[test]
    fn degenerate_configs_are_refused_with_typed_errors() {
        for (config, expected) in [
            (
                ServeConfig {
                    queue_depth: 0,
                    ..ServeConfig::default()
                },
                ConfigError::ZeroQueueDepth,
            ),
            (
                ServeConfig {
                    block_words: 0,
                    ..ServeConfig::default()
                },
                ConfigError::ZeroBlockWords,
            ),
            (
                ServeConfig {
                    shards: 0,
                    ..ServeConfig::default()
                },
                ConfigError::ZeroShards,
            ),
            (
                ServeConfig {
                    cache_shards: 0,
                    ..ServeConfig::default()
                },
                ConfigError::ZeroCacheShards,
            ),
            (
                ServeConfig {
                    tier_max_inputs: 64,
                    ..ServeConfig::default()
                },
                ConfigError::TierInputsTooWide,
            ),
            (
                // table_bytes(12, 1) = 512: a 8-byte budget cannot fit
                // any table at the advertised width.
                ServeConfig {
                    tier_max_table_bytes: 8,
                    ..ServeConfig::default()
                },
                ConfigError::TierBudgetTooSmall,
            ),
        ] {
            assert_eq!(config.validate().unwrap_err(), expected);
            match SimService::start(config) {
                Err(e) => assert_eq!(e, expected),
                Ok(_) => panic!("degenerate config {config:?} must not start"),
            }
            // The error is displayable (it names the offending knob).
            assert!(!expected.to_string().is_empty());
        }
        assert_eq!(ServeConfig::default().validate(), Ok(()));
        // cache_capacity == 0 stays legal: it disables caching.
        assert!(SimService::start(ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        })
        .is_ok());
        // The tier knobs are only constrained while the policy is
        // enabled: Disabled ignores even contradictory values.
        assert_eq!(
            ServeConfig {
                tier_policy: TierPolicy::Disabled,
                tier_max_inputs: 64,
                tier_max_table_bytes: 0,
                ..ServeConfig::default()
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for raw in 0..256u64 {
            let key = SimKey::new(raw);
            assert_eq!(shard_for_key(key, 1), 0);
            for shards in [2usize, 3, 8] {
                let s = shard_for_key(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_key(key, shards), "stable per (key, shards)");
            }
        }
        // The hash actually spreads: 256 keys over 4 shards must not
        // collapse onto one.
        let mut seen = [false; 4];
        for raw in 0..256u64 {
            seen[shard_for_key(SimKey::new(raw), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all four shards get keys");
    }

    #[test]
    fn sharded_service_serves_and_swaps_per_registration() {
        // Multiple registrations spread over several batcher threads:
        // every reply still comes from the right backend, swaps keep the
        // epoch contract per registration, and stats() folds across
        // shards.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_millis(1),
            shards: 3,
            ..ServeConfig::default()
        })
        .expect("valid config");
        assert_eq!(service.shard_count(), 3);
        let cover = adder();
        let ids: Vec<_> = (0..8u64)
            .map(|k| service.register_sim(Arc::new(cover.clone()), SimKey::new(k)))
            .collect();
        // shard_of matches the public assignment rule, and with 8 keys
        // over 3 shards at least two shards are in use.
        let mut used = [false; 3];
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(
                service.shard_of(id),
                shard_for_key(SimKey::new(k as u64), 3)
            );
            used[service.shard_of(id)] = true;
        }
        assert!(used.iter().filter(|&&u| u).count() >= 2);

        let tickets: Vec<_> = (0..64u64)
            .map(|i| {
                let id = ids[(i % 8) as usize];
                (i % 8, service.submit(id, i % 8))
            })
            .collect();
        for (bits, t) in tickets {
            assert_eq!(t.wait(), cover.eval_bits(bits));
        }
        // Swap one registration; its epoch bumps, its shard-mates' do not.
        let victim = ids[5];
        assert_eq!(service.swap_sim(victim, Arc::new(cover.clone())), 1);
        assert_eq!(service.epoch(victim), 1);
        for (k, &id) in ids.iter().enumerate() {
            if k != 5 {
                assert_eq!(service.epoch(id), 0);
            }
        }
        let reply = service.submit(victim, 3).wait_reply();
        assert_eq!(reply.epoch, 1);
        assert_eq!(reply.outputs, cover.eval_bits(3));

        let snap = service.shutdown();
        assert_eq!(snap.requests, 64 + 1);
        assert_eq!(snap.lanes_filled, 64 + 1, "zero drops across shards");
        assert_eq!(snap.swaps, 1);
    }

    #[test]
    fn try_submit_tagged_is_bounded_like_try_submit() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10), // nothing flushes until shutdown
            queue_depth: 3,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for tag in 0..3u64 {
            service
                .try_submit_tagged(id, tag % 8, tag, &sink)
                .expect("below depth");
        }
        assert_eq!(
            service.try_submit_tagged(id, 0, 99, &sink).unwrap_err(),
            QueueFull { depth: 3 }
        );
        let snap = service.stats();
        assert_eq!(snap.queue_full, 1);
        assert_eq!(snap.requests, 3, "the rejected submission is not counted");
        drop(service); // shutdown drains the accepted three
        for _ in 0..3 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        assert!(
            stream.try_recv().is_none(),
            "the rejected tag never replies"
        );
    }

    /// A backend that counts how many lane words it was asked to
    /// evaluate — distinguishes the exhaustive materialization sweep
    /// from per-flush batched evaluation.
    struct Probe {
        inner: Cover,
        words_evaluated: AtomicUsize,
    }

    impl Probe {
        fn of(inner: Cover) -> Arc<Probe> {
            Arc::new(Probe {
                inner,
                words_evaluated: AtomicUsize::new(0),
            })
        }
    }

    impl Simulator for Probe {
        fn n_inputs(&self) -> usize {
            self.inner.n_inputs()
        }
        fn n_outputs(&self) -> usize {
            Cover::n_outputs(&self.inner)
        }
        fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
            self.words_evaluated.fetch_add(words, Ordering::Relaxed);
            self.inner.eval_words(inputs, out, words);
        }
    }

    #[test]
    fn forced_tier_serves_from_the_table_without_touching_the_cache() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            tier_policy: TierPolicy::Forced,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let probe = Probe::of(cover.clone());
        let id = service.register_sim(Arc::clone(&probe) as SharedSim, SimKey::new(9));
        let (sink, stream) = reply_channel();
        for round in 0..3 {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(
                    reply.outputs,
                    cover.eval_bits(reply.tag % 8),
                    "round {round}"
                );
            }
        }
        assert_eq!(service.stats_for(id).tier, Tier::Materialized);
        let snap = service.stats();
        assert_eq!(snap.materialized, 1);
        assert_eq!(snap.blocks, 3, "materialized flushes still count");
        assert_eq!(snap.lanes_filled, 3 * 64);
        assert_eq!(
            (snap.cache_hits, snap.cache_misses),
            (0, 0),
            "the table path never consults the block cache"
        );
        assert_eq!(
            probe.words_evaluated.load(Ordering::Relaxed),
            1,
            "the backend is evaluated exactly once: the 2^3-assignment sweep"
        );
    }

    #[test]
    fn auto_tier_promotes_after_the_traffic_floor() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            tier_min_requests: 128,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        let fill = |round: u64| {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(
                    reply.outputs,
                    cover.eval_bits(reply.tag % 8),
                    "round {round}"
                );
            }
        };
        // Round 1: 64 lanes served, one sub-block miss (64 evaluated
        // lanes ≥ 2^3 — the spend test is already met) but below the
        // 128-lane traffic floor: still batched.
        fill(1);
        assert_eq!(service.stats_for(id).tier, Tier::Batched);
        // Round 2 reaches the floor; the flush promotes afterwards.
        fill(2);
        assert_eq!(service.stats_for(id).tier, Tier::Materialized);
        // Round 3 serves from the table: no new cache traffic.
        fill(3);
        let snap = service.stats();
        assert_eq!(snap.materialized, 1);
        assert_eq!(snap.blocks, 3);
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn disabled_policy_never_materializes() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            tier_policy: TierPolicy::Disabled,
            tier_min_requests: 1,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for _ in 0..3 {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
            }
        }
        assert_eq!(service.stats_for(id).tier, Tier::Batched);
        let snap = service.stats();
        assert_eq!(snap.materialized, 0);
        assert_eq!((snap.cache_hits, snap.cache_misses), (2, 1));
    }

    /// The memory guard: a budget that affords a one-output table at the
    /// configured width (so validation passes) but not this backend's
    /// two outputs — the registration silently stays batched even under
    /// the Forced policy.
    #[test]
    fn oversized_tables_stay_batched_despite_forced_policy() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            tier_policy: TierPolicy::Forced,
            tier_max_inputs: 3,
            tier_max_table_bytes: 8, // table_bytes(3, 2) = 16 > 8
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for tag in 0..64u64 {
            service.submit_tagged(id, tag % 8, tag, &sink);
        }
        for _ in 0..64 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        assert_eq!(service.stats_for(id).tier, Tier::Batched);
        let snap = service.stats();
        assert_eq!(snap.materialized, 0);
        assert_eq!(snap.cache_misses, 1, "served through the batched path");
    }

    /// A swap must drop the outgoing backend's table (its answers are
    /// stale the moment the new backend installs) and re-materialize
    /// under the new epoch before `swap_sim` returns.
    #[test]
    fn swaps_drop_and_rebuild_the_materialized_table() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_millis(1),
            tier_policy: TierPolicy::Forced,
            ..ServeConfig::default()
        })
        .expect("valid config");
        let cover = adder();
        let nominal = GnorPla::from_cover(&cover);
        let faulty = faulty_adder();
        let split = (0..8u64)
            .find(|&b| faulty.simulate_bits(b) != nominal.simulate_bits(b))
            .expect("injected fault is visible");

        let id = service.register_sim(Arc::new(nominal.clone()), SimKey::new(1));
        let r0 = service.submit(id, split).wait_reply();
        assert_eq!(r0.epoch, 0);
        assert_eq!(r0.outputs, nominal.simulate_bits(split));
        assert_eq!(service.stats_for(id).tier, Tier::Materialized);

        assert_eq!(service.swap_sim(id, Arc::new(faulty.clone())), 1);
        let r1 = service.submit(id, split).wait_reply();
        assert_eq!(r1.epoch, 1);
        assert_eq!(
            r1.outputs,
            faulty.simulate_bits(split),
            "the stale table must not answer for the new backend"
        );
        assert_eq!(
            service.stats_for(id).tier,
            Tier::Materialized,
            "re-materialized under the new epoch"
        );
    }
}
