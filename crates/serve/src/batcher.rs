//! The lane-packing request batcher.
//!
//! A [`SimService`] owns one batcher thread. Clients register covers and
//! submit single-vector simulation requests; the batcher queues requests
//! **per cover**, packs them into 64-lane blocks, and flushes a block when
//! either
//!
//! * all 64 lanes fill (`FlushCause::Full`) — one `eval_batch` call now
//!   serves 64 requests, or
//! * the oldest queued request has waited `max_wait`
//!   (`FlushCause::Deadline`) — a partial block is packed (unused lanes
//!   zero-filled, results masked per [`logic::eval::lane_mask`]'s
//!   contract) so tail latency stays bounded under light traffic.
//!
//! Before evaluating, the batcher consults the [`BlockCache`] keyed on
//! *(cover hash, packed block)*; hits skip `eval_batch` entirely. Results
//! are scattered back to callers over per-request or shared reply
//! channels. Dropping the service (or calling
//! [`shutdown`](SimService::shutdown)) drains every queue before the
//! thread exits, so no submitted request is ever lost.

use crate::cache::{BlockCache, BlockKey};
use crate::stats::{FlushCause, ServiceStats, StatsSnapshot};
use ambipla_core::cover_hash;
use logic::eval::{pack_vectors, unpack_lane, LANES};
use logic::Cover;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SimService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Longest a queued request may wait before its partial block is
    /// flushed anyway.
    pub max_wait: Duration,
    /// Result-cache capacity in blocks; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_micros(200),
            cache_capacity: 4096,
            cache_shards: 8,
        }
    }
}

/// Handle to a cover registered with a [`SimService`]. Stamped with the
/// issuing service's identity, so submitting it to a *different* service
/// panics instead of silently simulating that service's same-numbered
/// cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoverId {
    slot: usize,
    service: u64,
}

/// One response: the caller's tag plus the simulated output vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReply {
    /// Echo of the tag passed to [`SimService::submit_tagged`] (0 for
    /// [`SimService::submit`]).
    pub tag: u64,
    /// One bool per cover output.
    pub outputs: Vec<bool>,
}

/// Sending half of a shared reply channel (clonable; one per client).
#[derive(Debug, Clone)]
pub struct ReplySink(Sender<SimReply>);

/// Receiving half of a shared reply channel.
#[derive(Debug)]
pub struct ReplyStream(Receiver<SimReply>);

impl ReplyStream {
    /// Block until the next reply arrives.
    ///
    /// # Panics
    ///
    /// Panics if every [`ReplySink`] half (including those held by
    /// in-flight requests) is gone — replies can no longer arrive.
    pub fn recv(&self) -> SimReply {
        self.0.recv().expect("all reply sinks dropped")
    }

    /// Non-blocking poll for a reply.
    pub fn try_recv(&self) -> Option<SimReply> {
        self.0.try_recv().ok()
    }
}

/// A shared reply channel: submit many requests against one `ReplySink`
/// clone and drain their [`SimReply`]s (tag-matched) from the stream —
/// one channel allocation per client instead of one per request.
pub fn reply_channel() -> (ReplySink, ReplyStream) {
    let (tx, rx) = channel();
    (ReplySink(tx), ReplyStream(rx))
}

/// Pending response handle of a single [`SimService::submit`] call.
#[derive(Debug)]
pub struct SimTicket(Receiver<SimReply>);

impl SimTicket {
    /// Block until the result arrives (at most `max_wait` plus one block
    /// evaluation after submission).
    ///
    /// # Panics
    ///
    /// Panics if the service thread died before answering.
    pub fn wait(self) -> Vec<bool> {
        self.0.recv().expect("simulation service dropped").outputs
    }
}

enum Msg {
    Register {
        // Slot assigned by the handle's atomic counter. Carried in the
        // message because concurrent register() calls can reach the
        // channel in a different order than their fetch_adds.
        id: usize,
        cover: Arc<Cover>,
        hash: u64,
    },
    Submit {
        id: usize,
        bits: u64,
        tag: u64,
        reply: Sender<SimReply>,
    },
    Shutdown,
}

/// The request-batching PLA simulation service.
///
/// See the [module docs](self) for the batching protocol. All methods
/// take `&self`; the handle is `Sync` and can be shared across client
/// threads.
pub struct SimService {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<()>>,
    stats: Arc<ServiceStats>,
    cache: Arc<BlockCache>,
    registered: AtomicUsize,
    /// Process-unique identity stamped into every issued [`CoverId`].
    nonce: u64,
}

/// Source of per-service nonces (see [`CoverId`]).
static NEXT_SERVICE: AtomicU64 = AtomicU64::new(0);

impl SimService {
    /// Start a service with the given configuration.
    pub fn start(config: ServeConfig) -> SimService {
        let (tx, rx) = channel();
        let stats = Arc::new(ServiceStats::default());
        let cache = Arc::new(BlockCache::new(config.cache_capacity, config.cache_shards));
        let worker = {
            let stats = Arc::clone(&stats);
            let cache = Arc::clone(&cache);
            std::thread::Builder::new()
                .name("ambipla-batcher".into())
                .spawn(move || batcher_loop(rx, config.max_wait, &stats, &cache))
                .expect("spawn batcher thread")
        };
        SimService {
            tx,
            worker: Some(worker),
            stats,
            cache,
            registered: AtomicUsize::new(0),
            nonce: NEXT_SERVICE.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Start with [`ServeConfig::default`].
    pub fn with_defaults() -> SimService {
        SimService::start(ServeConfig::default())
    }

    /// Register a cover; requests are queued and lane-packed per cover.
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than 64 inputs (packed-assignment
    /// requests are `u64`s).
    pub fn register(&self, cover: Cover) -> CoverId {
        assert!(cover.n_inputs() <= 64, "at most 64 inputs per cover");
        let hash = cover_hash(&cover);
        let id = self.registered.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Msg::Register {
                id,
                cover: Arc::new(cover),
                hash,
            })
            .expect("batcher thread alive");
        CoverId {
            slot: id,
            service: self.nonce,
        }
    }

    /// Submit one packed input assignment; returns a ticket to wait on.
    pub fn submit(&self, cover: CoverId, bits: u64) -> SimTicket {
        let (tx, rx) = channel();
        self.submit_raw(cover, bits, 0, tx);
        SimTicket(rx)
    }

    /// Submit against a shared reply channel with a caller-chosen tag —
    /// the high-throughput path for clients with many requests in flight.
    pub fn submit_tagged(&self, cover: CoverId, bits: u64, tag: u64, reply: &ReplySink) {
        self.submit_raw(cover, bits, tag, reply.0.clone());
    }

    fn submit_raw(&self, cover: CoverId, bits: u64, tag: u64, reply: Sender<SimReply>) {
        assert!(
            cover.service == self.nonce,
            "cover id was issued by a different service"
        );
        assert!(
            cover.slot < self.registered.load(Ordering::Relaxed),
            "unregistered cover id"
        );
        self.stats.record_request();
        self.tx
            .send(Msg::Submit {
                id: cover.slot,
                bits,
                tag,
                reply,
            })
            .expect("batcher thread alive");
    }

    /// Current metrics (flush counters merged with cache counters).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.cache_hits = self.cache.hits();
        snap.cache_misses = self.cache.misses();
        snap.cache_evictions = self.cache.evictions();
        snap.cache_hit_rate = self.cache.hit_rate();
        snap
    }

    /// Drain every pending queue, stop the batcher thread and return the
    /// final metrics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            worker.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One registered cover on the batcher side.
struct Registered {
    cover: Arc<Cover>,
    hash: u64,
    vectors: Vec<u64>,
    replies: Vec<(u64, Sender<SimReply>)>,
    opened: Option<Instant>,
}

impl Registered {
    fn flush(&mut self, cause: FlushCause, stats: &ServiceStats, cache: &BlockCache) {
        if self.vectors.is_empty() {
            return;
        }
        let lanes = self.vectors.len();
        let latency_ns = self
            .opened
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let packed = pack_vectors(&self.vectors, self.cover.n_inputs());
        let words = if cache.is_disabled() {
            // Skip key construction and shard locking entirely on the
            // cache-off configuration (the cold-path bench measures this).
            self.cover.eval_batch(&packed)
        } else {
            let key = BlockKey::new(self.hash, &packed);
            match cache.lookup(&key) {
                Some(words) => words,
                None => {
                    let words = self.cover.eval_batch(&packed);
                    cache.insert(key, words.clone());
                    words
                }
            }
        };
        // Scatter lane results. Only the `lanes` valid lanes are ever
        // unpacked, which is what makes partial (deadline) blocks safe —
        // see `logic::eval::lane_mask`.
        for (lane, (tag, reply)) in self.replies.drain(..).enumerate() {
            // A client may have dropped its ticket; that is not an error.
            let _ = reply.send(SimReply {
                tag,
                outputs: unpack_lane(&words, lane),
            });
        }
        self.vectors.clear();
        self.opened = None;
        stats.record_flush(cause, lanes, latency_ns);
    }
}

fn batcher_loop(rx: Receiver<Msg>, max_wait: Duration, stats: &ServiceStats, cache: &BlockCache) {
    // Slot-addressed by CoverId: concurrent register() calls may deliver
    // their Register messages out of id order, so slots can fill in any
    // order (None = id allocated but message not yet here).
    let mut registry: Vec<Option<Registered>> = Vec::new();
    // Cached min of all open queues' `opened` times, so the per-message
    // cost stays O(1) in the number of registered covers. Opening a queue
    // can only lower the min (updated inline); flushing can only remove
    // it, which marks the cache stale and triggers one lazy rescan.
    let mut oldest_open: Option<Instant> = None;
    let mut oldest_stale = false;
    loop {
        if oldest_stale {
            oldest_open = registry.iter().flatten().filter_map(|r| r.opened).min();
            oldest_stale = false;
        }
        // The next deadline is the oldest open queue's first-enqueue time
        // plus max_wait; with nothing queued, just block on the channel.
        let deadline = oldest_open.map(|oldest| oldest + max_wait);
        let msg = match deadline {
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // handle dropped without Shutdown
            },
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    for r in registry.iter_mut().flatten() {
                        if r.opened.is_some_and(|t| t + max_wait <= now) {
                            r.flush(FlushCause::Deadline, stats, cache);
                        }
                    }
                    oldest_stale = true;
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(msg) => msg,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match msg {
            Msg::Register { id, cover, hash } => {
                if id >= registry.len() {
                    registry.resize_with(id + 1, || None);
                }
                registry[id] = Some(Registered {
                    cover,
                    hash,
                    vectors: Vec::with_capacity(LANES),
                    replies: Vec::with_capacity(LANES),
                    opened: None,
                });
            }
            Msg::Submit {
                id,
                bits,
                tag,
                reply,
            } => {
                // A submit can only be sent with a CoverId returned by
                // register(), whose Register message precedes it on this
                // channel (same thread: FIFO; cross-thread: the id handoff
                // orders the sends).
                let r = registry
                    .get_mut(id)
                    .and_then(Option::as_mut)
                    .expect("submit for a cover whose registration never arrived");
                if r.vectors.is_empty() {
                    let now = Instant::now();
                    r.opened = Some(now);
                    if oldest_open.is_none_or(|oldest| now < oldest) {
                        oldest_open = Some(now);
                    }
                }
                r.vectors.push(bits);
                r.replies.push((tag, reply));
                if r.vectors.len() == LANES {
                    let was_oldest = r.opened == oldest_open;
                    r.flush(FlushCause::Full, stats, cache);
                    if was_oldest {
                        oldest_stale = true;
                    }
                }
            }
            Msg::Shutdown => break,
        }
    }
    for r in registry.iter_mut().flatten() {
        r.flush(FlushCause::Shutdown, stats, cache);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> Cover {
        Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover")
    }

    fn quick() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_request_matches_direct_eval() {
        let service = SimService::start(quick());
        let cover = adder();
        let id = service.register(cover.clone());
        for bits in 0..8u64 {
            assert_eq!(service.submit(id, bits).wait(), cover.eval_bits(bits));
        }
    }

    #[test]
    fn full_block_flushes_without_waiting_for_the_deadline() {
        // A generous deadline: if the 64th request did not trigger the
        // flush, this test would sit for 10 s and time out.
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for tag in 0..64u64 {
            service.submit_tagged(id, tag % 8, tag, &sink);
        }
        for _ in 0..64 {
            let reply = stream.recv();
            assert_eq!(reply.outputs, cover.eval_bits(reply.tag % 8));
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 64);
        assert_eq!(snap.full_flushes, 1);
        assert_eq!(snap.deadline_flushes, 0);
        assert_eq!(snap.lanes_filled, 64);
        assert!((snap.lane_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_block_flushes_at_the_deadline() {
        let service = SimService::start(quick());
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..5u64)
            .map(|bits| (bits, service.submit(id, bits)))
            .collect();
        for (bits, ticket) in tickets {
            assert_eq!(ticket.wait(), cover.eval_bits(bits), "bits {bits:03b}");
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 5);
        // ≥ 1, not == 1: a preempted submitter can split the five requests
        // over several deadline windows on a loaded machine.
        assert!(snap.deadline_flushes >= 1);
        assert_eq!(snap.full_flushes, 0);
        assert_eq!(snap.lanes_filled, 5);
        assert!(snap.p99_flush_ns >= 1_000_000, "waited at least max_wait");
    }

    #[test]
    fn repeated_blocks_hit_the_cache() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let cover = adder();
        let id = service.register(cover.clone());
        let (sink, stream) = reply_channel();
        for round in 0..3 {
            for tag in 0..64u64 {
                service.submit_tagged(id, tag % 8, tag, &sink);
            }
            for _ in 0..64 {
                let reply = stream.recv();
                assert_eq!(
                    reply.outputs,
                    cover.eval_bits(reply.tag % 8),
                    "round {round}"
                );
            }
        }
        let snap = service.stats();
        assert_eq!(snap.blocks, 3);
        assert_eq!(snap.cache_misses, 1, "first block populates");
        assert_eq!(snap.cache_hits, 2, "identical blocks reuse it");
        assert!(snap.cache_hit_rate > 0.6);
    }

    #[test]
    fn covers_are_batched_independently() {
        let service = SimService::start(quick());
        let xor = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let and = Cover::parse("11 1", 2, 1).expect("valid cover");
        let xid = service.register(xor.clone());
        let aid = service.register(and.clone());
        // Interleave submissions across the two covers.
        let pairs: Vec<_> = (0..10u64)
            .map(|bits| {
                let bits = bits % 4;
                (service.submit(xid, bits), service.submit(aid, bits), bits)
            })
            .collect();
        for (xt, at, bits) in pairs {
            assert_eq!(xt.wait(), xor.eval_bits(bits));
            assert_eq!(at.wait(), and.eval_bits(bits));
        }
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let service = SimService::start(ServeConfig {
            max_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let cover = adder();
        let id = service.register(cover.clone());
        let tickets: Vec<_> = (0..3u64)
            .map(|bits| (bits, service.submit(id, bits)))
            .collect();
        let snap = service.shutdown();
        assert_eq!(snap.shutdown_flushes, 1);
        for (bits, ticket) in tickets {
            assert_eq!(ticket.wait(), cover.eval_bits(bits));
        }
    }

    #[test]
    #[should_panic(expected = "unregistered cover id")]
    fn submitting_against_an_unknown_cover_panics() {
        let service = SimService::with_defaults();
        let forged = CoverId {
            slot: 3,
            service: service.nonce,
        };
        service.submit(forged, 0);
    }

    #[test]
    #[should_panic(expected = "issued by a different service")]
    fn cover_ids_do_not_transfer_between_services() {
        let a = SimService::with_defaults();
        let b = SimService::with_defaults();
        let id = a.register(adder());
        b.submit(id, 0);
    }

    #[test]
    fn concurrent_registration_binds_ids_to_the_right_covers() {
        // Regression: ids are allocated by an atomic counter on the handle
        // but Register messages from different threads can reach the
        // batcher out of id order — each thread must still get answers
        // from *its* cover.
        let service = SimService::start(quick());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let service = &service;
                s.spawn(move || {
                    // Recognizer of the 3-bit pattern `t`: output is 1 on
                    // exactly one assignment, different per thread.
                    let text: String = (0..3)
                        .map(|i| if t >> i & 1 == 1 { '1' } else { '0' })
                        .collect::<String>()
                        + " 1";
                    let cover = Cover::parse(&text, 3, 1).expect("valid cover");
                    let id = service.register(cover.clone());
                    for bits in 0..8u64 {
                        assert_eq!(
                            service.submit(id, bits).wait(),
                            vec![bits == t],
                            "thread {t} bits {bits:03b}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn dropped_tickets_do_not_wedge_the_service() {
        let service = SimService::start(quick());
        let id = service.register(adder());
        drop(service.submit(id, 1)); // client walks away
        let ticket = service.submit(id, 2);
        assert_eq!(ticket.wait(), adder().eval_bits(2));
    }
}
