//! Sharded LRU cache of block evaluation results.
//!
//! The batcher evaluates 64-lane input blocks; workloads dominated by
//! recurring assignments (exhaustive sweeps, BIST replay, regression
//! traffic) re-produce byte-identical blocks, so caching at block
//! granularity amortizes whole `eval_batch` calls, not single lookups.
//!
//! Keys are [`BlockKey`] — *(caller-supplied [`SimKey`], registration
//! epoch, packed 64-lane input sub-block)*. The `SimKey` identifies the
//! registered simulator, the epoch its current backend generation (bumped
//! by every `SimService::swap_sim`), and the block is one column-major
//! 64-lane word group (one `u64` per input signal). Keying on the epoch
//! is what makes hot-swap invalidation **exact**: entries written under a
//! superseded epoch can never be looked up again (their keys are
//! unconstructible after the bump) while every other `SimKey`'s entries —
//! and the swapped key's entries under its *new* epoch — stay live and
//! warm. Stale entries age out through normal LRU eviction. Multi-word
//! flushes (`ServeConfig::block_words > 1`) consult the cache once per
//! 64-lane sub-block with exactly these keys, so the hit semantics are
//! independent of the configured block width. Unused lanes are
//! zero-filled by the packer, so a partial block and a full block that
//! happen to pack to the same words are interchangeable — every lane's
//! output is correct for that lane's input. The value is the output lane
//! words.
//!
//! The map is split into shards, each behind its own mutex, so the online
//! batcher and any number of offline sweep threads can hit the cache
//! concurrently without serializing on one lock. Each shard is an LRU
//! over a slab-allocated intrusive list: O(1) lookup, promote, insert and
//! eviction. Hit / miss / eviction counters are global atomics.

use ambipla_core::cover_hash;
use ambipla_core::hash::{fnv1a, FNV_OFFSET};
use logic::Cover;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Caller-supplied stable identity of a registered simulator — the cache
/// half of every [`BlockKey`].
///
/// # Stability requirement (cache correctness)
///
/// The result cache assumes **one key ⇔ one Boolean function**: two
/// registrations sharing a `SimKey` are served each other's cached output
/// blocks. A caller therefore must guarantee
///
/// * **injectivity** — functionally different backends (a cover and its
///   faulty twin, two different defect maps, remapped networks) get
///   *different* keys, and
/// * **stability** — the same backend gets the *same* key across
///   registrations, processes and runs, or recurring traffic silently
///   stops hitting (a correctness-safe but throughput-killing mistake;
///   it also underpins the planned cache warm-start, where keys persist
///   to disk).
///
/// **Hot swaps do not weaken either rule, and do not require a new key.**
/// `SimService::swap_sim` replaces the backend *behind* an existing
/// `SimKey` and bumps the registration's epoch, which is a separate
/// [`BlockKey`] component — so a re-minimized cover or a re-injected
/// defect map keeps its caller-stable key, and the epoch (not the key)
/// fences off the old generation's cached blocks. Minting a fresh key per
/// swap would *work* but silently forfeits warm-start stability; the
/// injectivity rule only bites **across** registrations live at the same
/// time (two simultaneously registered, functionally different backends
/// must still differ in key, because they can sit at equal epochs).
///
/// [`SimKey::of_cover`] derives a conforming key from a cover's stable
/// structural hash ([`ambipla_core::cover_hash`]); for derived backends,
/// mix the underlying cover's key with a stable encoding of whatever was
/// changed (defect coordinates, mapping parameters, …) via
/// [`ambipla_core::hash::fnv1a`].
///
/// # Materialized tables follow the same rules
///
/// A registration promoted to the materialized tier (see the tiered
/// evaluation section of the `batcher` module docs) stops consulting the
/// cache, but its [`ambipla_core::TruthTable`] is bound to the same two
/// identities: it is built from **one backend generation** and is valid
/// for **exactly one epoch** of the registration. A hot swap therefore
/// drops the table and re-materializes from the incoming backend under
/// the new epoch — never reuses it across the bump — just as epoch-keyed
/// cache entries become unreachable. The `SimKey` itself stays stable
/// across swaps for materialized registrations too: the epoch, not the
/// key, is the generation fence in both tiers, and a slot that demotes
/// back to batched resumes hitting its key's still-warm current-epoch
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey(u64);

impl SimKey {
    /// Wrap a caller-chosen 64-bit key. The stability and injectivity
    /// obligations above are the caller's.
    pub const fn new(raw: u64) -> SimKey {
        SimKey(raw)
    }

    /// The canonical key of a plain cover backend: its stable structural
    /// hash ([`ambipla_core::cover_hash`]).
    pub fn of_cover(cover: &Cover) -> SimKey {
        SimKey(cover_hash(cover))
    }

    /// The raw 64-bit key.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Cache key: the registered simulator's [`SimKey`], the registration
/// epoch the block was evaluated under, and the packed 64-lane input
/// block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Identity of the registered simulator.
    pub sim: SimKey,
    /// Backend generation (0 at registration, +1 per hot swap). Entries
    /// from superseded epochs are unreachable — see the module docs.
    pub epoch: u64,
    /// Column-major input lane words (one `u64` per input column).
    pub block: Box<[u64]>,
}

impl BlockKey {
    /// Build a key from a simulator key, its epoch and packed input words.
    pub fn new(sim: SimKey, epoch: u64, block: &[u64]) -> BlockKey {
        BlockKey {
            sim,
            epoch,
            block: block.into(),
        }
    }

    /// Stable shard-selection hash (FNV-1a over the key; independent of
    /// the `std` `Hash` impl used inside shard maps).
    fn shard_hash(&self) -> u64 {
        let mut h = FNV_OFFSET ^ self.sim.raw();
        h = fnv1a(h, &self.epoch.to_le_bytes());
        for &w in self.block.iter() {
            h = fnv1a(h, &w.to_le_bytes());
        }
        h
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: BlockKey,
    value: Box<[u64]>,
    prev: usize,
    next: usize,
}

/// One LRU shard: hash map into a slab-backed intrusive MRU list.
struct Shard {
    map: HashMap<BlockKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &BlockKey) -> Option<Vec<u64>> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slab[i].value.to_vec())
    }

    /// Insert or refresh; returns true if an entry was evicted.
    fn insert(&mut self, key: BlockKey, value: Box<[u64]>) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old = std::mem::replace(
                &mut self.slab[victim].key,
                BlockKey {
                    sim: SimKey::new(0),
                    epoch: 0,
                    block: Box::new([]),
                },
            );
            self.map.remove(&old);
            self.free.push(victim);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot].key = key.clone();
                self.slab[slot].value = value;
                slot
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
        evicted
    }
}

/// Sharded LRU cache of `(cover hash, input block) → output block`.
///
/// A `capacity` of 0 disables the cache entirely (lookups miss for free,
/// inserts are dropped) — used to measure the cold path honestly.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    disabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache of roughly `capacity` blocks split over `shards`
    /// independently locked shards. Each shard holds
    /// `ceil(capacity / shards)` blocks, so the real bound rounds up to
    /// at most `capacity + shards − 1` — size `capacity` to a memory
    /// budget with that slack in mind.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(capacity: usize, shards: usize) -> BlockCache {
        assert!(shards > 0, "need at least one shard");
        let shards = shards.min(capacity.max(1));
        let per_shard = capacity.div_ceil(shards);
        BlockCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            disabled: capacity == 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &BlockKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// True if the cache is a no-op (capacity 0). Lock-free, so hot paths
    /// can branch around key construction and shard locking entirely.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Look up a block, promoting it to most-recently-used on hit.
    pub fn lookup(&self, key: &BlockKey) -> Option<Vec<u64>> {
        // Poison recovery: the LRU map stays structurally valid across a
        // panicking holder, and a stale entry only costs a recompute.
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a block's output words.
    pub fn insert(&self, key: BlockKey, value: Vec<u64>) {
        // Poison recovery: same argument as `lookup` — the shard map is
        // never left mid-mutation by a panicking holder.
        let mut shard = self
            .shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.capacity == 0 {
            return;
        }
        if shard.insert(key, value.into_boxed_slice()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            // Poison recovery: length reads tolerate a poisoned shard.
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found their block.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that did not.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sim: u64, a: u64, b: u64) -> BlockKey {
        BlockKey::new(SimKey::new(sim), 0, &[a, b])
    }

    #[test]
    fn epochs_partition_the_keyspace() {
        // Identical (SimKey, block) under different epochs are different
        // entries: an old epoch's value can never answer a new epoch's
        // lookup, and vice versa.
        let cache = BlockCache::new(8, 2);
        let old = BlockKey::new(SimKey::new(9), 0, &[5, 6]);
        let new = BlockKey::new(SimKey::new(9), 1, &[5, 6]);
        cache.insert(old.clone(), vec![1]);
        assert_eq!(cache.lookup(&new), None, "epoch 1 must not see epoch 0");
        cache.insert(new.clone(), vec![2]);
        assert_eq!(cache.lookup(&old), Some(vec![1]));
        assert_eq!(cache.lookup(&new), Some(vec![2]));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sim_key_of_cover_is_the_stable_cover_hash() {
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        assert_eq!(SimKey::of_cover(&f).raw(), cover_hash(&f));
        assert_eq!(SimKey::of_cover(&f), SimKey::of_cover(&f.clone()));
    }

    #[test]
    fn miss_then_hit_then_counters() {
        let cache = BlockCache::new(8, 2);
        let k = key(1, 10, 20);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(k.clone(), vec![7, 8]);
        assert_eq!(cache.lookup(&k), Some(vec![7, 8]));
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 1, 0));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_covers_do_not_collide() {
        let cache = BlockCache::new(8, 1);
        cache.insert(key(1, 5, 5), vec![1]);
        cache.insert(key(2, 5, 5), vec![2]);
        assert_eq!(cache.lookup(&key(1, 5, 5)), Some(vec![1]));
        assert_eq!(cache.lookup(&key(2, 5, 5)), Some(vec![2]));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Single shard of capacity 3 so the LRU order is fully observable.
        let cache = BlockCache::new(3, 1);
        for i in 0..3 {
            cache.insert(key(i, 0, 0), vec![i]);
        }
        // Touch 0 and 1; 2 becomes the LRU victim.
        assert!(cache.lookup(&key(0, 0, 0)).is_some());
        assert!(cache.lookup(&key(1, 0, 0)).is_some());
        cache.insert(key(9, 0, 0), vec![9]);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(&key(2, 0, 0)), None, "victim was the LRU");
        assert!(cache.lookup(&key(0, 0, 0)).is_some());
        assert!(cache.lookup(&key(1, 0, 0)).is_some());
        assert!(cache.lookup(&key(9, 0, 0)).is_some());
    }

    #[test]
    fn refresh_updates_value_without_eviction() {
        let cache = BlockCache::new(2, 1);
        let k = key(3, 1, 2);
        cache.insert(k.clone(), vec![1]);
        cache.insert(k.clone(), vec![2]);
        assert_eq!(cache.lookup(&k), Some(vec![2]));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_reuses_slab_slots() {
        let cache = BlockCache::new(2, 1);
        for i in 0..100u64 {
            cache.insert(key(i, i, i), vec![i]);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 98);
        // The two newest survive.
        assert!(cache.lookup(&key(99, 99, 99)).is_some());
        assert!(cache.lookup(&key(98, 98, 98)).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = BlockCache::new(0, 4);
        assert!(cache.is_disabled());
        let k = key(1, 2, 3);
        cache.insert(k.clone(), vec![1]);
        assert_eq!(cache.lookup(&k), None);
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn shards_split_the_keyspace() {
        // Per-shard capacity 32 over 8 shards: 64 keys cannot overflow a
        // shard unless the hash piles more than half of them onto one
        // shard, which the FNV mix does not do for this (fixed) pattern.
        let cache = BlockCache::new(256, 8);
        for i in 0..64u64 {
            cache.insert(key(i, i * 3, i * 7), vec![i]);
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
        for i in 0..64u64 {
            assert_eq!(cache.lookup(&key(i, i * 3, i * 7)), Some(vec![i]), "{i}");
        }
    }

    #[test]
    fn sharded_eviction_accounting_balances() {
        // Overload a small sharded cache: whatever the per-shard load
        // pattern, inserts − evictions must equal the surviving entries.
        let cache = BlockCache::new(16, 4);
        for i in 0..200u64 {
            cache.insert(key(i, i * 3, i * 7), vec![i]);
        }
        assert_eq!(cache.len() as u64 + cache.evictions(), 200);
        assert!(cache.len() <= 16);
        assert!(!cache.is_empty());
    }
}
