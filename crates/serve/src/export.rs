//! Snapshot → metric-family conversion for the exporters.
//!
//! [`metric_families`] flattens per-registration snapshots
//! ([`RegSnapshot`]) and the aggregate ([`StatsSnapshot`]) into the
//! `ambipla_obs` metric model, ready for
//! [`prometheus_text`](ambipla_obs::prometheus_text) or
//! [`json_text`](ambipla_obs::json_text). Per-registration series carry
//! `sim` (slot index) and — for flush-shaped counters — `epoch` labels,
//! so a scrape shows each `(SimId, epoch)` generation as its own series;
//! flush counts additionally split by `cause`
//! ([`FlushCause::label`](crate::stats::FlushCause::label)), and the
//! `ambipla_tier` gauge names each registration's live serving tier
//! through its `tier` label
//! ([`Tier::label`](crate::stats::Tier::label)).

use crate::stats::{FlushCause, HistogramSnapshot, RegSnapshot, StatsSnapshot};
use ambipla_obs::{MetricFamily, MetricKind, Sample};

fn l(pairs: &[(&str, String)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// Cumulative `le`-bucket samples (plus `_count` / `_sum`) of one
/// histogram, with the shared label set `base`. Only buckets through the
/// highest non-empty one are emitted (the `+Inf` bucket always is), so
/// idle series stay one line instead of 64.
fn histogram_samples(base: &[(&str, String)], hist: &HistogramSnapshot, out: &mut Vec<Sample>) {
    let mut cumulative = 0u64;
    let last = hist
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    for (b, &n) in hist.buckets.iter().enumerate().take(last) {
        cumulative += n;
        let mut labels = l(base);
        labels.push((
            "le".to_string(),
            HistogramSnapshot::bucket_bound(b).to_string(),
        ));
        out.push(Sample::suffixed("_bucket", labels, cumulative as f64));
    }
    let mut labels = l(base);
    labels.push(("le".to_string(), "+Inf".to_string()));
    out.push(Sample::suffixed("_bucket", labels, hist.count() as f64));
    out.push(Sample::suffixed("_count", l(base), hist.count() as f64));
    out.push(Sample::suffixed("_sum", l(base), hist.sum_ns as f64));
}

/// Build the full family list: per-registration lifetime counters and
/// gauges (`sim` label), per-`(sim, epoch)` flush/lane/cache series, the
/// per-epoch flush-latency histograms, and the aggregate-only counters
/// (cache evictions, total swaps). Registrations with no traffic still
/// contribute their zero-valued series — an idle backend is visible, not
/// absent.
pub fn metric_families(regs: &[RegSnapshot], aggregate: &StatsSnapshot) -> Vec<MetricFamily> {
    let mut requests = Vec::new();
    let mut queue_full = Vec::new();
    let mut queue_depth = Vec::new();
    let mut epoch_gauge = Vec::new();
    let mut tier_gauge = Vec::new();
    let mut blocks = Vec::new();
    let mut lanes = Vec::new();
    let mut capacity = Vec::new();
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    let mut latency = Vec::new();
    for reg in regs {
        let sim = reg.slot.to_string();
        requests.push(Sample::new(l(&[("sim", sim.clone())]), reg.requests as f64));
        queue_full.push(Sample::new(
            l(&[("sim", sim.clone())]),
            reg.queue_full as f64,
        ));
        queue_depth.push(Sample::new(
            l(&[("sim", sim.clone())]),
            reg.queue_depth as f64,
        ));
        epoch_gauge.push(Sample::new(l(&[("sim", sim.clone())]), reg.epoch as f64));
        tier_gauge.push(Sample::new(
            l(&[("sim", sim.clone()), ("tier", reg.tier.label().to_string())]),
            1.0,
        ));
        for e in &reg.epochs {
            let base = [("sim", sim.clone()), ("epoch", e.epoch.to_string())];
            for (cause, n) in [
                (FlushCause::Full, e.full_flushes),
                (FlushCause::Deadline, e.deadline_flushes),
                (FlushCause::Swap, e.swap_flushes),
                (FlushCause::Shutdown, e.shutdown_flushes),
            ] {
                let mut labels = l(&base);
                labels.push(("cause".to_string(), cause.label().to_string()));
                blocks.push(Sample::new(labels, n as f64));
            }
            lanes.push(Sample::new(l(&base), e.lanes_filled as f64));
            capacity.push(Sample::new(l(&base), e.lane_capacity as f64));
            hits.push(Sample::new(l(&base), e.cache_hits as f64));
            misses.push(Sample::new(l(&base), e.cache_misses as f64));
            histogram_samples(&base, &e.latency, &mut latency);
        }
    }
    vec![
        MetricFamily::new(
            "ambipla_requests_total",
            "Requests accepted, per registration.",
            MetricKind::Counter,
            requests,
        ),
        MetricFamily::new(
            "ambipla_queue_full_total",
            "Submissions rejected by backpressure, per registration.",
            MetricKind::Counter,
            queue_full,
        ),
        MetricFamily::new(
            "ambipla_queue_depth",
            "Live pending-request gauge, per registration.",
            MetricKind::Gauge,
            queue_depth,
        ),
        MetricFamily::new(
            "ambipla_epoch",
            "Current epoch (completed hot swaps), per registration.",
            MetricKind::Gauge,
            epoch_gauge,
        ),
        MetricFamily::new(
            "ambipla_tier",
            "Serving tier, per registration: the tier label names the \
             live tier (batched or materialized) and the sample is 1.",
            MetricKind::Gauge,
            tier_gauge,
        ),
        MetricFamily::new(
            "ambipla_flushed_blocks_total",
            "Blocks flushed, per (registration, epoch) and flush cause.",
            MetricKind::Counter,
            blocks,
        ),
        MetricFamily::new(
            "ambipla_lanes_filled_total",
            "Occupied lanes over flushed blocks, per (registration, epoch).",
            MetricKind::Counter,
            lanes,
        ),
        MetricFamily::new(
            "ambipla_lane_capacity_total",
            "Lane capacity of flushed blocks, per (registration, epoch).",
            MetricKind::Counter,
            capacity,
        ),
        MetricFamily::new(
            "ambipla_cache_hits_total",
            "Sub-block cache hits, per (registration, epoch).",
            MetricKind::Counter,
            hits,
        ),
        MetricFamily::new(
            "ambipla_cache_misses_total",
            "Sub-block cache misses, per (registration, epoch).",
            MetricKind::Counter,
            misses,
        ),
        MetricFamily::new(
            "ambipla_flush_latency_ns",
            "Flush queue latency in ns (log2 buckets), per (registration, epoch).",
            MetricKind::Histogram,
            latency,
        ),
        MetricFamily::new(
            "ambipla_cache_evictions_total",
            "Block-cache evictions (service-wide).",
            MetricKind::Counter,
            vec![Sample::new(vec![], aggregate.cache_evictions as f64)],
        ),
        MetricFamily::new(
            "ambipla_swaps_total",
            "Completed hot swaps (service-wide).",
            MetricKind::Counter,
            vec![Sample::new(vec![], aggregate.swaps as f64)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambipla_obs::{json_text, prometheus_text};

    #[test]
    fn zero_count_registration_renders_zero_series() {
        let reg = crate::stats::RegStats::new(0).snapshot(0);
        let agg = StatsSnapshot::fold(std::slice::from_ref(&reg), 0);
        let fams = metric_families(&[reg], &agg);
        let text = prometheus_text(&fams);
        // The idle registration is visible, all zeros.
        assert!(text.contains("ambipla_requests_total{sim=\"0\"} 0\n"));
        assert!(text.contains("ambipla_tier{sim=\"0\",tier=\"batched\"} 1\n"));
        assert!(
            text.contains("ambipla_flushed_blocks_total{sim=\"0\",epoch=\"0\",cause=\"full\"} 0\n")
        );
        // Its empty histogram is a single +Inf bucket.
        assert!(
            text.contains("ambipla_flush_latency_ns_bucket{sim=\"0\",epoch=\"0\",le=\"+Inf\"} 0\n")
        );
        assert!(text.contains("ambipla_flush_latency_ns_count{sim=\"0\",epoch=\"0\"} 0\n"));
        // The JSON renderer accepts the same families.
        assert!(json_text(&fams).contains("\"name\":\"ambipla_requests_total\""));
    }

    #[test]
    fn per_epoch_series_carry_both_labels() {
        let reg = crate::stats::RegStats::new(3);
        reg.record_request();
        reg.current_epoch()
            .record_flush(FlushCause::Full, 64, 1, 900, 1, 0);
        let e1 = reg.begin_epoch();
        e1.record_flush(FlushCause::Deadline, 5, 1, 70_000, 0, 1);
        let snap = reg.snapshot(2);
        let agg = StatsSnapshot::fold(std::slice::from_ref(&snap), 0);
        let text = prometheus_text(&metric_families(&[snap], &agg));
        assert!(text.contains("ambipla_requests_total{sim=\"3\"} 1\n"));
        assert!(text.contains("ambipla_queue_depth{sim=\"3\"} 2\n"));
        assert!(text.contains("ambipla_epoch{sim=\"3\"} 1\n"));
        assert!(
            text.contains("ambipla_flushed_blocks_total{sim=\"3\",epoch=\"0\",cause=\"full\"} 1\n")
        );
        assert!(text.contains(
            "ambipla_flushed_blocks_total{sim=\"3\",epoch=\"1\",cause=\"deadline\"} 1\n"
        ));
        assert!(text.contains("ambipla_cache_hits_total{sim=\"3\",epoch=\"0\"} 1\n"));
        assert!(text.contains("ambipla_cache_misses_total{sim=\"3\",epoch=\"1\"} 1\n"));
        // 900 ns lands in bucket 10 (le = 1024); the cumulative +Inf
        // bucket and _count agree.
        assert!(
            text.contains("ambipla_flush_latency_ns_bucket{sim=\"3\",epoch=\"0\",le=\"1024\"} 1\n")
        );
        assert!(
            text.contains("ambipla_flush_latency_ns_bucket{sim=\"3\",epoch=\"0\",le=\"+Inf\"} 1\n")
        );
        assert!(text.contains("ambipla_flush_latency_ns_sum{sim=\"3\",epoch=\"0\"} 900\n"));
        assert!(text.contains("ambipla_swaps_total 1\n"));
    }

    #[test]
    fn tier_series_track_the_live_tier_label() {
        let reg = crate::stats::RegStats::new(7);
        reg.set_tier(crate::stats::Tier::Materialized);
        let snap = reg.snapshot(0);
        let agg = StatsSnapshot::fold(std::slice::from_ref(&snap), 0);
        let fams = metric_families(&[snap], &agg);
        let text = prometheus_text(&fams);
        assert!(text.contains("ambipla_tier{sim=\"7\",tier=\"materialized\"} 1\n"));
        assert!(!text.contains("tier=\"batched\""));
        // The JSON exposition carries the same family and label.
        let json = json_text(&fams);
        assert!(json.contains("\"name\":\"ambipla_tier\""));
        assert!(json.contains("\"tier\":\"materialized\""));
    }
}
