//! MCNC-style benchmark functions and workload generators.
//!
//! Table 1 of the DAC 2008 paper prices three functions of the MCNC
//! two-level benchmark suite (Yang, MCNC 1991): `max46`, `apla` and `t2`.
//! The table depends on the benchmarks **only through the dimensions of
//! their ESPRESSO-minimized covers**:
//!
//! | name   | inputs | outputs | products |
//! |--------|--------|---------|----------|
//! | max46  | 9      | 1       | 46       |
//! | apla   | 10     | 12      | 25       |
//! | t2     | 17     | 16      | 52       |
//!
//! The original `.pla` files are not redistributable in this repository, so
//! [`max46`], [`apla`] and [`t2`] return **deterministic synthetic stand-ins
//! with exactly those dimensions**, constructed by [`disjoint_code_cover`]
//! to be *prime and irredundant by construction* — a fixed point of
//! ESPRESSO, so minimization provably keeps the product counts above (the
//! test-suite re-verifies this). If you have the real MCNC files, load them
//! with [`logic::parse_pla`] and the whole toolchain accepts them unchanged.
//!
//! The crate also provides seeded random-PLA workload generators
//! ([`RandomPla`]) and a parameter [`sweep_family`] used by the ablation
//! benches.

use logic::{Cover, Cube, Tri};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named benchmark function: ON-set plus optional don't-care set.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (MCNC name for the stand-ins).
    pub name: &'static str,
    /// What the function is / what it stands in for.
    pub description: &'static str,
    /// ON-set cover.
    pub on: Cover,
    /// Don't-care cover (empty for all stand-ins).
    pub dc: Cover,
}

impl Benchmark {
    /// `(inputs, outputs, products)` of the ON-set.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.on.n_inputs(), self.on.n_outputs(), self.on.len())
    }
}

/// Build a prime, irredundant cover with exact dimensions
/// `(n_inputs, n_outputs, products)`.
///
/// Construction: the first `k` inputs of every cube carry a distinct
/// **even-parity codeword**, so any two cubes conflict in at least two
/// variables (Hamming distance of an even-weight code is ≥ 2). Consequences:
///
/// * cubes are pairwise disjoint → every cube covers minterms nothing else
///   covers → the cover is **irredundant** per output;
/// * raising any literal keeps the cube disjoint from all others (distance
///   drops by at most one), so every added minterm is OFF → every cube is
///   **prime**;
/// * the same argument blocks output-part raising, so the cover is a fixed
///   point of the ESPRESSO EXPAND/IRREDUNDANT/REDUCE loop.
///
/// Remaining inputs get pseudo-random extra literals (seeded, deterministic)
/// for realistic literal densities, and outputs are assigned round-robin
/// plus pseudo-random extras so every output is driven.
///
/// # Panics
///
/// Panics if `products == 0`, `n_outputs == 0`, or `n_inputs` is too small
/// to host `products` distinct even-parity codewords
/// (`2^(n_inputs-1) >= products` is required, and the code needs at most
/// `n_inputs` bits).
pub fn disjoint_code_cover(n_inputs: usize, n_outputs: usize, products: usize, seed: u64) -> Cover {
    assert!(products > 0, "need at least one product term");
    assert!(n_outputs > 0, "need at least one output");
    // Smallest k with 2^(k-1) >= products.
    let mut k = 1;
    while (1usize << (k - 1)) < products {
        k += 1;
    }
    assert!(
        k <= n_inputs,
        "need {k} inputs to host {products} distance-2 codewords, have {n_inputs}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cubes = Vec::with_capacity(products);
    let mut emitted = 0usize;
    let mut word: u64 = 0;
    while emitted < products {
        // Even-parity filter over k bits.
        if (word.count_ones() & 1) == 0 {
            let mut tris = vec![Tri::DontCare; n_inputs];
            for (b, t) in tris.iter_mut().enumerate().take(k) {
                *t = if word >> b & 1 == 1 {
                    Tri::One
                } else {
                    Tri::Zero
                };
            }
            // Sprinkle extra literals on the free inputs (never all of them,
            // to keep cube sizes varied).
            for t in tris.iter_mut().skip(k) {
                match rng.gen_range(0..3u8) {
                    0 => *t = Tri::Zero,
                    1 => *t = Tri::One,
                    _ => {} // stays don't-care
                }
            }
            let mut outs = vec![false; n_outputs];
            outs[emitted % n_outputs] = true;
            // Extra outputs model PLA product-term sharing.
            for (j, o) in outs.iter_mut().enumerate() {
                if j != emitted % n_outputs && rng.gen_bool(0.25) {
                    *o = true;
                }
            }
            cubes.push(Cube::from_tris(&tris, &outs));
            emitted += 1;
        }
        word += 1;
    }
    Cover::from_cubes(n_inputs, n_outputs, cubes)
}

/// Stand-in for MCNC `max46`: 9 inputs, 1 output, 46 products.
///
/// The real `max46` is a single-output arithmetic-flavoured function whose
/// minimized cover has 46 product terms; only those dimensions enter
/// Table 1.
pub fn max46() -> Benchmark {
    let on = disjoint_code_cover(9, 1, 46, 0x6d61_7834);
    debug_assert_eq!((on.n_inputs(), on.n_outputs(), on.len()), (9, 1, 46));
    Benchmark {
        name: "max46",
        description: "synthetic stand-in for MCNC max46 (9 in, 1 out, 46 products)",
        on,
        dc: Cover::new(9, 1),
    }
}

/// Stand-in for MCNC `apla`: 10 inputs, 12 outputs, 25 products.
pub fn apla() -> Benchmark {
    let on = disjoint_code_cover(10, 12, 25, 0x6170_6c61);
    debug_assert_eq!((on.n_inputs(), on.n_outputs(), on.len()), (10, 12, 25));
    Benchmark {
        name: "apla",
        description: "synthetic stand-in for MCNC apla (10 in, 12 out, 25 products)",
        on,
        dc: Cover::new(10, 12),
    }
}

/// Stand-in for MCNC `t2`: 17 inputs, 16 outputs, 52 products.
pub fn t2() -> Benchmark {
    let on = disjoint_code_cover(17, 16, 52, 0x7432);
    debug_assert_eq!((on.n_inputs(), on.n_outputs(), on.len()), (17, 16, 52));
    Benchmark {
        name: "t2",
        description: "synthetic stand-in for MCNC t2 (17 in, 16 out, 52 products)",
        on,
        dc: Cover::new(17, 16),
    }
}

/// The three Table 1 benchmarks in paper order.
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![max46(), apla(), t2()]
}

/// Environment variable naming a directory that holds real MCNC `.pla`
/// files (`max46.pla`, `apla.pla`, `t2.pla`, …). The originals are not
/// redistributable in this repository, so the bench binaries accept them
/// through this escape hatch and fall back to the synthetic stand-ins.
pub const MCNC_DIR_ENV: &str = "AMBIPLA_MCNC_DIR";

/// Load the real `<name>.pla` from `dir`, logging a reason on stderr
/// when the file is missing or unparsable so callers can fall back to a
/// stand-in. The env-free core of [`load_real`] (kept free of process
/// globals so tests need not mutate the environment).
pub fn load_real_from(dir: &std::path::Path, name: &'static str) -> Option<Benchmark> {
    let path = dir.join(format!("{name}.pla"));
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("mcnc: cannot read {}: {err}", path.display());
            return None;
        }
    };
    match logic::parse_pla(&text) {
        Ok(pla) => Some(Benchmark {
            name,
            description: "real MCNC .pla (loaded via AMBIPLA_MCNC_DIR)",
            on: pla.on,
            dc: pla.dc,
        }),
        Err(err) => {
            eprintln!("mcnc: cannot parse {}: {err}", path.display());
            None
        }
    }
}

/// Load the real `<name>.pla` from [`MCNC_DIR_ENV`], if possible.
///
/// Returns `None` — silently when the variable is unset, with a logged
/// reason on stderr otherwise (see [`load_real_from`]).
pub fn load_real(name: &'static str) -> Option<Benchmark> {
    let dir = std::env::var(MCNC_DIR_ENV).ok()?;
    load_real_from(std::path::Path::new(&dir), name)
}

/// [`table1_benchmarks`], preferring real MCNC files from `dir` and
/// logging (stderr) each fallback to a synthetic stand-in. The env-free
/// core of [`table1_benchmarks_env`].
pub fn table1_benchmarks_from(dir: &std::path::Path) -> Vec<Benchmark> {
    table1_benchmarks()
        .into_iter()
        .map(|stand_in| match load_real_from(dir, stand_in.name) {
            Some(real) => {
                eprintln!(
                    "mcnc: using real {} ({} in, {} out, {} products)",
                    real.name,
                    real.on.n_inputs(),
                    real.on.n_outputs(),
                    real.on.len()
                );
                real
            }
            None => {
                eprintln!("mcnc: falling back to synthetic {}", stand_in.name);
                stand_in
            }
        })
        .collect()
}

/// [`table1_benchmarks`], preferring real MCNC files from
/// [`MCNC_DIR_ENV`]. The bench binaries use this variant; library code
/// and tests stay on the deterministic stand-ins.
pub fn table1_benchmarks_env() -> Vec<Benchmark> {
    match std::env::var(MCNC_DIR_ENV) {
        Err(_) => {
            eprintln!("mcnc: {MCNC_DIR_ENV} not set; using synthetic stand-ins");
            table1_benchmarks()
        }
        Ok(dir) => table1_benchmarks_from(std::path::Path::new(&dir)),
    }
}

/// Small classical functions for examples and unit-level experiments.
pub fn classics() -> Vec<Benchmark> {
    let xor2 = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let full_adder = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");
    let dec2 = Cover::parse("00 1000\n01 0100\n10 0010\n11 0001", 2, 4).expect("valid cover");
    vec![
        Benchmark {
            name: "xor2",
            description: "2-input EXOR (the paper's Section 3 example)",
            on: xor2,
            dc: Cover::new(2, 1),
        },
        Benchmark {
            name: "full_adder",
            description: "1-bit full adder (sum, carry)",
            on: full_adder,
            dc: Cover::new(3, 2),
        },
        Benchmark {
            name: "dec2to4",
            description: "2-to-4 line decoder",
            on: dec2,
            dc: Cover::new(2, 4),
        },
    ]
}

/// Additional MCNC-suite stand-ins (not used by Table 1, but handy for
/// wider sweeps). Same construction and caveats as the Table 1 stand-ins;
/// dimensions follow the published minimized covers.
pub fn extended() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "con1",
            description: "synthetic stand-in for MCNC con1 (7 in, 2 out, 9 products)",
            on: disjoint_code_cover(7, 2, 9, 0x636f_6e31),
            dc: Cover::new(7, 2),
        },
        Benchmark {
            name: "misex1",
            description: "synthetic stand-in for MCNC misex1 (8 in, 7 out, 12 products)",
            on: disjoint_code_cover(8, 7, 12, 0x6d69_7365),
            dc: Cover::new(8, 7),
        },
        Benchmark {
            name: "b12",
            description: "synthetic stand-in for MCNC b12 (15 in, 9 out, 43 products)",
            on: disjoint_code_cover(15, 9, 43, 0xb12_5eed),
            dc: Cover::new(15, 9),
        },
    ]
}

/// Every benchmark known to the suite (Table 1 stand-ins + classics +
/// extended stand-ins).
pub fn registry() -> Vec<Benchmark> {
    let mut v = table1_benchmarks();
    v.extend(classics());
    v.extend(extended());
    v
}

/// Seeded random-PLA workload generator.
///
/// Generates covers with controlled dimensions and literal density for
/// performance benches and Monte-Carlo experiments. Unlike
/// [`disjoint_code_cover`], the result is *not* guaranteed prime or
/// irredundant — that is the point: it exercises the minimizer.
///
/// # Example
///
/// ```
/// use mcnc::RandomPla;
///
/// let cover = RandomPla::new(8, 4, 30).seed(7).literal_density(0.5).build();
/// assert_eq!(cover.n_inputs(), 8);
/// assert_eq!(cover.len(), 30);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RandomPla {
    n_inputs: usize,
    n_outputs: usize,
    products: usize,
    seed: u64,
    literal_density: f64,
}

impl RandomPla {
    /// A generator for covers of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n_inputs: usize, n_outputs: usize, products: usize) -> RandomPla {
        assert!(n_inputs > 0 && n_outputs > 0 && products > 0);
        RandomPla {
            n_inputs,
            n_outputs,
            products,
            seed: 0,
            literal_density: 0.6,
        }
    }

    /// Set the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> RandomPla {
        self.seed = seed;
        self
    }

    /// Set the probability that an input position carries a literal
    /// (default 0.6).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < density <= 1.0`.
    pub fn literal_density(mut self, density: f64) -> RandomPla {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
        self.literal_density = density;
        self
    }

    /// Generate the cover.
    pub fn build(self) -> Cover {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cubes = Vec::with_capacity(self.products);
        for row in 0..self.products {
            let mut tris = vec![Tri::DontCare; self.n_inputs];
            let mut any = false;
            for t in tris.iter_mut() {
                if rng.gen_bool(self.literal_density) {
                    *t = if rng.gen_bool(0.5) {
                        Tri::One
                    } else {
                        Tri::Zero
                    };
                    any = true;
                }
            }
            if !any {
                // Avoid the full cube dominating everything.
                tris[row % self.n_inputs] = Tri::One;
            }
            let mut outs = vec![false; self.n_outputs];
            outs[row % self.n_outputs] = true;
            for (j, o) in outs.iter_mut().enumerate() {
                if j != row % self.n_outputs && rng.gen_bool(0.2) {
                    *o = true;
                }
            }
            cubes.push(Cube::from_tris(&tris, &outs));
        }
        Cover::from_cubes(self.n_inputs, self.n_outputs, cubes)
    }
}

/// A family of benchmarks with growing input count and proportional product
/// count, used to reproduce the paper's claim that the CNFET PLA wins for
/// functions with **many inputs** (the `max46` case) and loses slightly for
/// output-heavy functions (the `apla` case).
///
/// Returns prime covers with 2 outputs for `inputs` in `4..=max_inputs`.
pub fn sweep_family(max_inputs: usize, seed: u64) -> Vec<Benchmark> {
    let mut out = Vec::new();
    for n in 4..=max_inputs {
        let products = (1usize << (n - 1)).min(3 * n);
        let cover = disjoint_code_cover(n, 2, products, seed ^ n as u64);
        out.push(Benchmark {
            name: "sweep",
            description: "input-count sweep member",
            on: cover,
            dc: Cover::new(n, 2),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::espresso;

    #[test]
    fn table1_dims_are_exact() {
        assert_eq!(max46().dims(), (9, 1, 46));
        assert_eq!(apla().dims(), (10, 12, 25));
        assert_eq!(t2().dims(), (17, 16, 52));
    }

    #[test]
    fn stand_ins_are_espresso_fixed_points() {
        for b in table1_benchmarks() {
            let (min, stats) = espresso(&b.on);
            assert_eq!(
                min.len(),
                b.on.len(),
                "{} must be a fixed point of espresso",
                b.name
            );
            assert_eq!(stats.initial_cubes, stats.final_cubes);
        }
    }

    #[test]
    fn disjoint_cover_cubes_pairwise_distance_two() {
        let c = disjoint_code_cover(9, 3, 20, 42);
        for (i, a) in c.iter().enumerate() {
            for b in c.cubes().iter().skip(i + 1) {
                assert!(a.input_distance(b) >= 2, "cubes {a} and {b} too close");
            }
        }
    }

    #[test]
    fn every_output_is_driven() {
        for b in table1_benchmarks() {
            for j in 0..b.on.n_outputs() {
                assert!(
                    !b.on.output_slice(j).is_empty(),
                    "{} output {j} undriven",
                    b.name
                );
            }
        }
    }

    #[test]
    fn extended_stand_ins_have_declared_dims() {
        let e = extended();
        assert_eq!(e[0].dims(), (7, 2, 9));
        assert_eq!(e[1].dims(), (8, 7, 12));
        assert_eq!(e[2].dims(), (15, 9, 43));
        for b in &e {
            let (min, _) = espresso(&b.on);
            assert_eq!(min.len(), b.on.len(), "{} fixed point", b.name);
        }
    }

    #[test]
    fn stand_ins_are_deterministic() {
        let a = max46();
        let b = max46();
        assert_eq!(a.on, b.on);
    }

    #[test]
    fn escape_hatch_loads_real_pla_files() {
        // Exercises the env-free `_from` cores directly — mutating
        // MCNC_DIR_ENV here would race concurrent getenv calls in the
        // multi-threaded test harness.
        let dir = std::env::temp_dir().join(format!("ambipla_mcnc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp mcnc dir");
        // A tiny but genuine .pla standing in for the real max46 file.
        std::fs::write(dir.join("max46.pla"), ".i 2\n.o 1\n10 1\n01 1\n.e\n")
            .expect("write max46.pla");
        // Present file: loaded as-is.
        let real = load_real_from(&dir, "max46").expect("real file is picked up");
        assert_eq!(real.dims(), (2, 1, 2));
        assert!(real.dc.is_empty());
        // Absent file: logged fallback to the stand-in.
        assert!(load_real_from(&dir, "apla").is_none());
        let table = table1_benchmarks_from(&dir);
        assert_eq!(table[0].dims(), (2, 1, 2), "real max46 preferred");
        assert_eq!(table[1].dims(), (10, 12, 25), "apla falls back");
        assert_eq!(table[2].dims(), (17, 16, 52), "t2 falls back");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unset_env_means_no_override() {
        // Read-only env access (no set_var): the variable is not set in
        // the test environment, so the env entry points use stand-ins.
        if std::env::var(MCNC_DIR_ENV).is_err() {
            assert!(load_real("max46").is_none());
            assert_eq!(table1_benchmarks_env().len(), 3);
        }
    }

    #[test]
    fn random_pla_dims_and_determinism() {
        let a = RandomPla::new(8, 4, 30).seed(7).build();
        let b = RandomPla::new(8, 4, 30).seed(7).build();
        let c = RandomPla::new(8, 4, 30).seed(8).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.n_inputs(), 8);
        assert_eq!(a.n_outputs(), 4);
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn random_pla_minimizes_without_losing_function() {
        let f = RandomPla::new(6, 3, 20).seed(3).build();
        let (min, _) = espresso(&f);
        logic::eval::assert_equivalent(&f, &min);
    }

    #[test]
    fn sweep_family_grows() {
        let fam = sweep_family(8, 1);
        assert_eq!(fam.len(), 5);
        for (idx, b) in fam.iter().enumerate() {
            assert_eq!(b.on.n_inputs(), idx + 4);
            assert!(!b.on.is_empty());
        }
    }

    #[test]
    fn classics_are_well_formed() {
        for b in classics() {
            assert!(!b.on.is_empty(), "{} empty", b.name);
        }
        // Full adder sanity: 1+1+1 = 11b.
        let fa = &classics()[1];
        assert_eq!(fa.on.eval_bits(0b111), vec![true, true]);
        assert_eq!(fa.on.eval_bits(0b001), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_many_products_for_inputs_rejected() {
        let _ = disjoint_code_cover(3, 1, 100, 0);
    }
}
