//! Property tests for the analyzer's lexer: fed adversarial source
//! fragments — unterminated strings, nested block comments, raw
//! strings containing quotes, `//` inside strings, stray backslashes,
//! multibyte chars, lone `r`/`b` prefixes — the lexer must never panic
//! and its token spans must tile the input exactly (cover every byte,
//! in order, with no gaps or overlaps).

use ambipla_analyze::lexer::lex;
use proptest::collection::vec;
use proptest::prelude::*;

/// Adversarial fragments chosen to sit on every lexer state boundary.
const FRAGMENTS: &[&str] = &[
    "\"unterminated",
    "\"esc\\\"aped\" ",
    "\"// not a comment\"",
    "'\\''",
    "'a'",
    "'a",
    "'static",
    "'\\u{7f}'",
    "b'\\xff'",
    "r\"raw \\ no escapes\"",
    "r#\"quote \" inside\"#",
    "r##\"# fence \"# still open\"##",
    "br#\"bytes\"#",
    "r#ident",
    "radius",
    "r\"unterminated raw",
    "/* nested /* block */ comment */",
    "/* unterminated /* nested",
    "/** doc block */",
    "/*! inner doc */",
    "/**/",
    "// line comment\n",
    "/// doc\n",
    "//! inner doc\n",
    "////不是 doc\n",
    "λ_ident",
    "名前",
    "{ } ( ) [ ] ;",
    "#[cfg(test)]",
    "unsafe { x.unwrap() }",
    "Ordering::SeqCst",
    ".lock()",
    "\\",
    "\0",
    "\r\n",
    "\t ",
    "b\"byte str\"",
    "b\"open",
    "'",
    "r",
    "r#",
    "br##",
    "0x1f_u64",
    "let x = 1;",
];

/// Assert totality + tiling for one input. Returns the token count so
/// callers can also sanity-check non-emptiness.
fn assert_tiles(src: &str) -> usize {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover all of {src:?}");
    tokens.len()
}

#[test]
fn every_fragment_tiles_alone() {
    for f in FRAGMENTS {
        assert_tiles(f);
    }
    assert_eq!(assert_tiles(""), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random concatenations of adversarial fragments: an unterminated
    /// opener in one fragment swallows the rest, which must still end
    /// in a clean EOF token, never a panic or a gap.
    #[test]
    fn fragment_concatenations_tile(picks in vec(any::<u16>(), 0..12usize)) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i as usize % FRAGMENTS.len()])
            .collect();
        assert_tiles(&src);
    }

    /// Arbitrary bytes forced into UTF-8: no input panics the lexer.
    #[test]
    fn random_text_tiles(bytes in vec(any::<u8>(), 0..200usize)) {
        let src = String::from_utf8_lossy(&bytes);
        assert_tiles(&src);
    }
}
