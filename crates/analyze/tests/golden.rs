//! Golden test: the violation-seeded fixtures must produce exactly the
//! findings pinned in `fixtures/expected.txt`. This proves the gate can
//! actually fail — a rule silently going blind shows up here as a diff.

use std::path::{Path, PathBuf};

use ambipla_analyze::{analyze_paths, report};

fn workspace_root() -> PathBuf {
    // crates/analyze → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[test]
fn fixtures_produce_exactly_the_expected_findings() {
    let root = workspace_root();
    let dir = root.join("crates/analyze/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "expected the five seeded fixture files");

    let findings = analyze_paths(&root, &paths).expect("fixtures readable");
    assert!(!findings.is_empty(), "fixtures must trip the analyzer");

    let rendered = report::render(&findings);
    let expected =
        std::fs::read_to_string(dir.join("expected.txt")).expect("fixtures/expected.txt");
    assert_eq!(
        rendered, expected,
        "fixture findings diverged from fixtures/expected.txt; \
         if the rule change is intentional, regenerate it with \
         `cargo run -p ambipla-analyze --release -- --fixtures > crates/analyze/fixtures/expected.txt`"
    );

    // Every rule must be represented — a rule that stops firing on its
    // fixture has gone blind even if the diff above were regenerated.
    for rule in [
        "panic_freedom",
        "atomic_ordering",
        "lock_order",
        "unsafe_safety",
        "allow_syntax",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "rule {rule} produced no fixture finding"
        );
    }
}
