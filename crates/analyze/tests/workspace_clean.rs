//! Tier-1 enforcement: the analyzer must run clean over the real
//! workspace. Any new unjustified unwrap, naked unsafe, unexplained
//! ordering, or lock-order cycle fails `cargo test` itself — no CI
//! round trip needed.

use std::path::Path;

use ambipla_analyze::{analyze_workspace, report};

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    let findings = analyze_workspace(root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "static analysis findings on the workspace:\n{}",
        report::render(&findings)
    );
}
