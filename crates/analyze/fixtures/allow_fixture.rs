//! Fixture for the `analyze: allow(...)` escape hatch: a reasoned
//! allow suppresses, a reasonless or unknown-rule allow is itself a
//! finding (and suppresses nothing).

fn suppressed(v: Option<u32>) -> u32 {
    // analyze: allow(panic_freedom, reason = "fixture: invariant established by caller")
    v.unwrap()
}

fn reasonless(v: Option<u32>) -> u32 {
    // analyze: allow(panic_freedom)
    v.unwrap()
}

fn unknown_rule(v: Option<u32>) -> u32 {
    v.unwrap() // analyze: allow(no_such_rule, reason = "typo'd rule name")
}
