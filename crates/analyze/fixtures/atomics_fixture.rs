//! Violation-seeded fixture for the `atomic_ordering` rule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Fixture {
    naked: AtomicU64,
    commented: AtomicU64,
    policy_ok: AtomicU64,
    flag: AtomicBool,
    published: AtomicU64,
}

impl Fixture {
    fn sites(&self) {
        // Unjustified: no comment, no policy entry.
        self.naked.fetch_add(1, Ordering::Relaxed);

        // Relaxed: monotonic counter, no cross-thread ordering needed.
        self.commented.fetch_add(1, Ordering::Relaxed);

        // Covered by the policy table entry for this file.
        self.policy_ok.load(Ordering::Relaxed);

        // SeqCst is rejected even with an ordering-vocabulary comment.
        self.flag.store(true, Ordering::SeqCst);
    }

    fn broken_pairing(&self) -> u64 {
        // Release: publishes the payload written just before (ordering).
        self.published.store(7, Ordering::Release);
        // Relaxed: reader side — WRONG, cannot observe the publication;
        // flagged by the pairing heuristic despite the keyword comment.
        self.published.load(Ordering::Relaxed)
    }
}
