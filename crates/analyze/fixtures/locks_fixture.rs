//! Violation-seeded fixture for the `lock_order` rule: an AB/BA cycle
//! and a nested same-lock acquisition.

use std::sync::Mutex;

struct Fx {
    fx_alpha: Mutex<u32>,
    fx_beta: Mutex<u32>,
    fx_state: Mutex<u32>,
}

impl Fx {
    fn alpha_then_beta(&self) {
        let _a = self.fx_alpha.lock();
        let _b = self.fx_beta.lock();
    }

    fn beta_then_alpha(&self) {
        let _b = self.fx_beta.lock();
        let _a = self.fx_alpha.lock();
    }

    fn reentrant(&self) {
        let _first = self.fx_state.lock();
        let _second = self.fx_state.lock();
    }

    fn fine_sequential(&self) {
        {
            let _a = self.fx_alpha.lock();
        }
        let _b = self.fx_beta.lock();
    }
}
