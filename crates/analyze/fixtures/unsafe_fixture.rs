//! Violation-seeded fixture for the `unsafe_safety` rule.

struct Wrapper(*mut u8);

// SAFETY: the pointer is owned and never aliased; a comment above a
// group of consecutive `unsafe impl` items covers the whole group.
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}

struct Naked(*mut u8);

unsafe impl Send for Naked {}

fn blocks(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points at a live byte.
    let ok = unsafe { *p };
    let bad = unsafe { *p.add(1) };
    ok + bad
}
