//! Violation-seeded fixture for the `panic_freedom` rule. This file is
//! never compiled; the analyzer's golden test pins the exact findings.

fn hot_path(input: Option<u32>) -> u32 {
    let a = input.unwrap();
    let b = input.expect("always present");
    if a > b {
        panic!("inconsistent");
    }
    assert!(a <= b);
    // debug_assert compiles out of release builds and is permitted.
    debug_assert!(a <= b);
    a + b
}

fn not_a_method_call() {
    // A string mentioning x.unwrap() and panic!() must not fire.
    let _s = "x.unwrap(); panic!()";
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        let _ = v.unwrap();
        assert_eq!(v.expect("fine in tests"), 1);
    }
}
