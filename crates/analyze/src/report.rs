//! Findings and their rendering. Output is deterministic (sorted by
//! path, then line, then rule) so golden tests can diff it exactly.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (one of [`crate::source::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sort findings into their canonical order.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
            .then(a.message.cmp(&b.message))
    });
}

/// Render a report: one line per finding plus a trailing summary line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("analyze: no findings\n");
    } else {
        out.push_str(&format!("analyze: {} finding(s)\n", findings.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_order_and_render() {
        let mut fs = vec![
            Finding {
                rule: "panic_freedom",
                path: "b.rs".into(),
                line: 3,
                message: "x".into(),
            },
            Finding {
                rule: "atomic_ordering",
                path: "a.rs".into(),
                line: 9,
                message: "y".into(),
            },
        ];
        sort(&mut fs);
        let text = render(&fs);
        assert!(text.starts_with("a.rs:9: [atomic_ordering] y\n"));
        assert!(text.contains("b.rs:3: [panic_freedom] x\n"));
        assert!(text.ends_with("analyze: 2 finding(s)\n"));
        assert_eq!(render(&[]), "analyze: no findings\n");
    }
}
