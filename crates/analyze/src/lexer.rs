//! A hand-rolled Rust surface lexer.
//!
//! The analyzer needs to know, for every byte of a source file, whether
//! it sits in code, a comment, or a literal — and nothing more. So this
//! is not a full Rust lexer: it recognizes exactly the token classes
//! whose *boundaries* matter for lexical analysis (comments with
//! nesting, strings with escapes, raw strings with `#` fences, char
//! literals vs. lifetimes, identifiers, single-char punctuation) and
//! leaves everything else as [`TokenKind::Punct`]. No `syn`, no
//! `proc-macro2` — the build environment is offline, and the existing
//! shims set the precedent of hand-rolling the needed subset honestly.
//!
//! Two hard guarantees, both enforced by `tests/lexer_prop.rs` on
//! adversarial inputs:
//!
//! * **Totality** — [`lex`] never panics, whatever the input. Malformed
//!   input (unterminated strings or block comments, a lone `'`) still
//!   lexes: the unterminated literal runs to end of input.
//! * **Tiling** — the returned tokens cover the input exactly: the
//!   first token starts at byte 0, each token starts where the previous
//!   one ended, and the last token ends at `src.len()`. Every byte of
//!   the file belongs to exactly one token, so span queries ("is this
//!   offset inside a comment?") have a single well-defined answer.

/// What a [`Token`] is. See the module docs for the design altitude:
/// boundaries over grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// ...` to end of line (newline excluded). `doc` marks `///` and
    /// `//!` forms — doctest code inside them is comment text to the
    /// analyzer, which is exactly the discrimination the rules need.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* ... */`, nesting-aware; unterminated runs to end of input.
    BlockComment {
        /// Whether this is a doc comment (`/** */` or `/*! */`).
        doc: bool,
    },
    /// `"..."` or `b"..."` with escape handling; unterminated runs to
    /// end of input.
    Str,
    /// `r"..."` / `r#"..."#` / `br##"..."##`: no escapes, closed only by
    /// a quote followed by the opening number of `#`s.
    RawStr,
    /// A character or byte literal: `'x'`, `b'\n'`, `'\u{7f}'`.
    Char,
    /// A lifetime or loop label: `'a` with no closing quote.
    Lifetime,
    /// An identifier, keyword, or raw identifier (`r#match`).
    Ident,
    /// Any single character not covered above.
    Punct,
}

/// One lexed span: `kind` over `src[start..end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification of the span.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The text of this token within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether the token carries code (not whitespace or a comment).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether the token is any comment form.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Cursor over the source's `char_indices`, so multi-byte characters
/// are consumed whole and token boundaries always land on char
/// boundaries.
struct Cursor<'s> {
    src: &'s str,
    /// Byte offset of the next unconsumed char.
    pos: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a tiling token stream (see the module docs for the
/// totality and tiling guarantees).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let kind = next_kind(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

/// Consume one token starting at `c` and return its kind.
fn next_kind(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek2() {
            Some('/') => return line_comment(cur),
            Some('*') => return block_comment(cur),
            _ => {
                cur.bump();
                return TokenKind::Punct;
            }
        }
    }
    // Raw strings / byte strings / raw identifiers all start from `r`
    // or `b`; fall through to a plain identifier when the quote shape
    // doesn't materialize.
    if c == 'r' || c == 'b' {
        if let Some(kind) = raw_or_byte_prefix(cur) {
            return kind;
        }
    }
    if c == '"' {
        return string(cur);
    }
    if c == '\'' {
        return char_or_lifetime(cur);
    }
    if is_ident_start(c) {
        cur.bump();
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    cur.bump();
    TokenKind::Punct
}

fn line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // /
    cur.bump(); // /
                // `///` is doc unless it is `////...` (treated like rustc: plain);
                // `//!` is inner doc.
    let doc = match (cur.peek(), cur.peek2()) {
        (Some('/'), Some('/')) => false,
        (Some('/'), _) | (Some('!'), _) => true,
        _ => false,
    };
    cur.eat_while(|c| c != '\n');
    TokenKind::LineComment { doc }
}

fn block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // /
    cur.bump(); // *
                // `/**` is doc unless `/***` or the degenerate `/**/`; `/*!` is doc.
    let doc = match (cur.peek(), cur.peek2()) {
        (Some('*'), Some('*')) | (Some('*'), Some('/')) => false,
        (Some('*'), _) | (Some('!'), _) => true,
        _ => false,
    };
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (None, _) => break, // unterminated: runs to end of input
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            _ => {
                cur.bump();
            }
        }
    }
    TokenKind::BlockComment { doc }
}

/// Handle the `r` / `b` prefixed families: `r"..."`, `r#"..."#`,
/// `b"..."`, `br#"..."#`, `b'x'`, and raw identifiers `r#ident`.
/// Returns `None` when the prefix turns out to start a plain
/// identifier (`radius`, `bits`, ...), consuming nothing.
fn raw_or_byte_prefix(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let c = cur.peek()?;
    // How many prefix chars before a possible quote: `r`, `b`, `br`.
    let after = |cur: &Cursor<'_>, n: usize| cur.peek_at(n);
    let (prefix_len, raw) = match (c, after(cur, 1)) {
        ('b', Some('r')) => (2, true),
        ('b', _) => (1, false),
        ('r', _) => (1, true),
        _ => return None,
    };
    if raw {
        // Count `#`s after the prefix; a quote must follow for this to
        // be a raw string. `r#ident` (zero quotes, one `#`) is a raw
        // identifier.
        let mut hashes = 0usize;
        while after(cur, prefix_len + hashes) == Some('#') {
            hashes += 1;
        }
        match after(cur, prefix_len + hashes) {
            Some('"') => {
                for _ in 0..prefix_len + hashes + 1 {
                    cur.bump();
                }
                raw_string_body(cur, hashes);
                return Some(TokenKind::RawStr);
            }
            Some(ch) if hashes == 1 && prefix_len == 1 && is_ident_start(ch) => {
                // Raw identifier `r#match`.
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return Some(TokenKind::Ident);
            }
            _ => return None,
        }
    }
    // Byte string `b"..."` or byte char `b'x'`.
    match after(cur, 1) {
        Some('"') => {
            cur.bump(); // b
            Some(string(cur))
        }
        Some('\'') => {
            cur.bump(); // b
            Some(char_or_lifetime(cur))
        }
        _ => None,
    }
}

/// Consume a raw-string body after the opening quote: closed only by
/// `"` followed by `fence` `#`s; unterminated runs to end of input.
fn raw_string_body(cur: &mut Cursor<'_>, fence: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut matched = 0usize;
            while matched < fence && cur.peek() == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == fence {
                return;
            }
        }
    }
}

/// Consume a `"..."` string starting at the opening quote. A `\`
/// always consumes the following char, so `\"` and `\\` behave.
fn string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // "
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            _ => {}
        }
    }
    TokenKind::Str
}

/// Disambiguate `'a'` (char) from `'a` (lifetime/label) from `'\n'`
/// (escaped char), starting at the `'`.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        // Escape: consume `\`, then the escaped char blindly, then the
        // rest of the literal up to the closing quote or end of line
        // (`'\u{1F600}'` has a braced body; a newline means the literal
        // was malformed and we stop rather than swallow the file).
        Some('\\') => {
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                if c == '\'' {
                    cur.bump();
                    break;
                }
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // An identifier run: `'a'` is a char only if a quote closes
            // it immediately; otherwise it is a lifetime (`'a`, `'static`).
            cur.bump();
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        // Any other single char closed by a quote: `' '`, `'('`, `'0'`
        // is handled above (digits are ident_continue but not start) —
        // so take one char and the closing quote if present.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        // Lone trailing `'` at end of input.
        None => TokenKind::Punct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0usize;
        for t in &toks {
            assert_eq!(t.start, at, "gap before token {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?}");
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        assert_tiles(src);
        let k = kinds(src);
        assert_eq!(
            k[2],
            (TokenKind::BlockComment { doc: false }, "/* x /* y */ z */")
        );
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let src = "code /* open";
        assert_tiles(src);
        assert_eq!(
            lex(src).last().unwrap().kind,
            TokenKind::BlockComment { doc: false }
        );
    }

    #[test]
    fn line_comment_excludes_newline() {
        let src = "x // note\ny";
        assert_tiles(src);
        let k = kinds(src);
        assert_eq!(k[2], (TokenKind::LineComment { doc: false }, "// note"));
        assert_eq!(k[3], (TokenKind::Whitespace, "\n"));
    }

    #[test]
    fn doc_comment_flags() {
        assert_eq!(kinds("/// d")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("//! d")[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(kinds("//// d")[0].0, TokenKind::LineComment { doc: false });
        assert_eq!(
            kinds("/** d */")[0].0,
            TokenKind::BlockComment { doc: true }
        );
        assert_eq!(kinds("/**/")[0].0, TokenKind::BlockComment { doc: false });
    }

    #[test]
    fn comment_markers_inside_strings_are_inert() {
        let src = r#"let s = "// not a comment /* nor this";"#;
        assert_tiles(src);
        assert!(lex(src).iter().all(|t| !t.is_comment()));
    }

    #[test]
    fn raw_strings_with_quotes_and_fences() {
        let src = r##"r#"she said "hi""# tail"##;
        assert_tiles(src);
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::RawStr, r##"r#"she said "hi""#"##));
        assert_eq!(k[2].1, "tail");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(kinds(r#"b"x""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r###"br##"x"##"###)[0].0, TokenKind::RawStr);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
    }

    #[test]
    fn r_and_b_identifiers_are_not_strings() {
        assert_eq!(kinds("radius")[0], (TokenKind::Ident, "radius"));
        assert_eq!(kinds("bits")[0], (TokenKind::Ident, "bits"));
        assert_eq!(kinds("r#match")[0], (TokenKind::Ident, "r#match"));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'a")[0].0, TokenKind::Lifetime);
        assert_eq!(kinds("'static>")[0].0, TokenKind::Lifetime);
        assert_eq!(kinds(r"'\''")[0].0, TokenKind::Char);
        assert_eq!(kinds(r"'\u{7f}'")[0].0, TokenKind::Char);
        assert_eq!(kinds("' '")[0].0, TokenKind::Char);
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let src = "let s = \"open\nmore";
        assert_tiles(src);
        // The string swallows the newline (Rust strings may span lines).
        assert!(lex(src).iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(lex("").is_empty());
        assert_tiles("{}();,.::->=>#![]&&||");
    }

    #[test]
    fn multibyte_chars_stay_whole() {
        let src = "let α = \"λ\"; // ∞ ≥ 0";
        assert_tiles(src);
    }
}
