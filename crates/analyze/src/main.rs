//! CLI for the workspace static analyzer.
//!
//! ```text
//! ambipla-analyze --workspace          # analyze every crate, exit 1 on findings
//! ambipla-analyze --fixtures           # analyze the violation-seeded fixtures
//! ambipla-analyze path/to/file.rs ...  # analyze explicit files or directories
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ambipla_analyze::{analyze_paths, collect_rust_files, find_workspace_root, report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ambipla-analyze --workspace | --fixtures | <paths...>\n\
             exits 0 when no findings, 1 when findings, 2 on usage/io errors"
        );
        return ExitCode::from(2);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("analyze: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    let paths: Vec<PathBuf> = if args.iter().any(|a| a == "--workspace") {
        match collect_rust_files(&root) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("analyze: walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.iter().any(|a| a == "--fixtures") {
        let dir = root.join("crates/analyze/fixtures");
        match std::fs::read_dir(&dir) {
            Ok(rd) => {
                let mut v: Vec<PathBuf> = rd
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
                    .collect();
                v.sort();
                v
            }
            Err(e) => {
                eprintln!("analyze: cannot read {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut v = Vec::new();
        for a in &args {
            let p = PathBuf::from(a);
            if p.is_dir() {
                match collect_rust_files(&p) {
                    Ok(mut files) => v.append(&mut files),
                    Err(e) => {
                        eprintln!("analyze: walk failed for {a}: {e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                v.push(p);
            }
        }
        v
    };

    match analyze_paths(&root, &paths) {
        Ok(findings) => {
            print!("{}", report::render(&findings));
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("analyze: {e}");
            ExitCode::from(2)
        }
    }
}
