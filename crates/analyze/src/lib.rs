//! `ambipla-analyze` — a dependency-free static analyzer for the
//! workspace's hand-rolled concurrency and untrusted-input paths.
//!
//! The compiler cannot check the invariants these layers rest on: the
//! SAFETY argument of an `unsafe impl`, the pairing of a Release store
//! with its Acquire load, the global order of nested lock
//! acquisitions, or the promise that the wire-parsing path never
//! panics. This crate lexes the workspace's Rust sources (no `syn`;
//! offline-honest like the rest of the shims) and enforces four rules
//! driven by the declarative policy table in [`policy`]:
//!
//! 1. `panic_freedom` — no `unwrap`/`expect`/`panic!`-family macros in
//!    non-test code of designated modules ([`policy::PANIC_POLICIES`]).
//! 2. `atomic_ordering` — every `Ordering::` site justified by comment
//!    or policy; `SeqCst` banned outside an allowlist; Release stores
//!    paired against Relaxed loads of the same field are flagged.
//! 3. `lock_order` — nested `.lock()`/`.read()`/`.write()`
//!    acquisitions form a cross-function lock-order graph; cycles fail.
//! 4. `unsafe_safety` — every `unsafe` needs `// SAFETY:` attached.
//!
//! Suppression is explicit and audited: `// analyze: allow(<rule>,
//! reason = "...")` — the reason is mandatory, and a malformed allow is
//! itself a finding (`allow_syntax`).

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Finding;
use source::SourceFile;

/// Directory names never descended into when walking the workspace.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures", "node_modules"];

/// Recursively collect `.rs` files under `root`, skipping build
/// output, VCS metadata, and the analyzer's violation-seeded fixtures.
/// Deterministic (sorted) order.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative display path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Load and analyze an explicit set of files; `root` anchors the
/// relative paths in findings and policy matching.
pub fn analyze_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for p in paths {
        let text = fs::read_to_string(p)?;
        files.push(SourceFile::new(p.clone(), rel_path(root, p), text));
    }
    Ok(analyze_sources(&files))
}

/// Analyze every Rust source under `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let paths = collect_rust_files(root)?;
    analyze_paths(root, &paths)
}

/// Run all rules over an in-memory file set.
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        rules::run_file_rules(f, &mut findings);
    }
    rules::locks::check(files, &mut findings);
    report::sort(&mut findings);
    findings
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_pipeline_end_to_end() {
        let src = "\
fn f() {\n\
    let x = y.unwrap();\n\
    unsafe { boom() };\n\
}\n";
        let files = vec![SourceFile::new(
            PathBuf::from("crates/net/src/protocol.rs"),
            "crates/net/src/protocol.rs".into(),
            src.into(),
        )];
        let findings = analyze_sources(&files);
        assert_eq!(findings.len(), 2, "{:?}", findings);
        assert_eq!(findings[0].rule, "panic_freedom");
        assert_eq!(findings[1].rule, "unsafe_safety");
    }
}
