//! The rule engine: each rule takes a [`SourceFile`] (plus, for the
//! lock-order rule, the whole set) and emits [`Finding`]s. A shared
//! pass also validates the `analyze: allow(...)` annotations
//! themselves — a suppression without a reason is a finding.

pub mod atomics;
pub mod locks;
pub mod panics;
pub mod unsafety;

use crate::report::Finding;
use crate::source::{SourceFile, RULES};

/// Run the per-file rules over one file.
pub fn run_file_rules(file: &SourceFile, findings: &mut Vec<Finding>) {
    check_allows(file, findings);
    panics::check(file, findings);
    atomics::check(file, findings);
    unsafety::check(file, findings);
}

/// Validate the allow annotations: the rule name must be known and a
/// non-empty reason is mandatory.
fn check_allows(file: &SourceFile, findings: &mut Vec<Finding>) {
    for a in &file.allows {
        if !RULES.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: "allow_syntax",
                path: file.rel.clone(),
                line: a.line,
                message: format!(
                    "unknown rule `{}` in analyze: allow(...); known rules: {}",
                    a.rule,
                    RULES.join(", ")
                ),
            });
        } else if !a.has_reason {
            findings.push(Finding {
                rule: "allow_syntax",
                path: file.rel.clone(),
                line: a.line,
                message: format!(
                    "analyze: allow({}) is missing the required reason = \"...\"",
                    a.rule
                ),
            });
        }
    }
}
