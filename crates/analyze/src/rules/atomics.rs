//! Rule `atomic_ordering`: every `Ordering::<variant>` site in
//! non-test code must be justified — by an attached comment containing
//! an ordering-vocabulary keyword, or by a policy-table entry for that
//! file/field. Two sharper checks ride on top:
//!
//! * `SeqCst` is rejected unless the site is on the (currently empty)
//!   SeqCst allowlist — sequential consistency is never needed in this
//!   workspace and usually papers over missing reasoning;
//! * a `store(.., Release)` whose same-field `load` elsewhere in the
//!   file is `Relaxed` is flagged: the Release publication is only
//!   observable through an Acquire load.

use crate::policy::{
    atomic_policy_allows, comment_justifies_ordering, path_matches, SEQCST_ALLOWED,
};
use crate::report::Finding;
use crate::source::SourceFile;

const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

struct Site {
    field: String,
    method: String,
    variant: &'static str,
    line: usize,
    policy_ok: bool,
    allowed: bool,
}

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_test_file() {
        return;
    }
    let sig: Vec<usize> = file.significant().collect();
    let mut sites: Vec<Site> = Vec::new();
    for s in 0..sig.len() {
        // Pattern: `Ordering` `:` `:` `<variant>`.
        if !file.is_ident(sig[s], "Ordering")
            || s + 3 >= sig.len()
            || file.text_of(sig[s + 1]) != ":"
            || file.text_of(sig[s + 2]) != ":"
        {
            continue;
        }
        let Some(&variant) = VARIANTS.iter().find(|v| file.is_ident(sig[s + 3], v)) else {
            continue; // std::cmp::Ordering::{Less,Equal,Greater} etc.
        };
        let offset = file.tokens[sig[s]].start;
        if file.is_test_code(offset) {
            continue;
        }
        let line = file.line_of(offset);
        let (field, method) = receiver_of(file, &sig, s);
        let policy_ok = atomic_policy_allows(&file.rel, &field, variant);
        let allowed = file.is_allowed("atomic_ordering", line);
        sites.push(Site {
            field,
            method,
            variant,
            line,
            policy_ok,
            allowed,
        });
    }

    for site in &sites {
        if site.allowed {
            continue;
        }
        if site.variant == "SeqCst" {
            let excused = SEQCST_ALLOWED.iter().any(|p| {
                path_matches(&file.rel, p.path_suffix) && (p.field == "*" || p.field == site.field)
            });
            if !excused {
                findings.push(Finding {
                    rule: "atomic_ordering",
                    path: file.rel.clone(),
                    line: site.line,
                    message: format!(
                        "SeqCst on `{}` is outside the SeqCst allowlist; \
                         use the weakest ordering that is correct and document it",
                        site.field
                    ),
                });
                continue;
            }
        } else if !site.policy_ok && !comment_justifies_ordering(&file.attached_comments(site.line))
        {
            findings.push(Finding {
                rule: "atomic_ordering",
                path: file.rel.clone(),
                line: site.line,
                message: format!(
                    "Ordering::{} on `{}`.{} has neither a justification comment nor a policy entry",
                    site.variant, site.field, site.method
                ),
            });
        }
    }

    // Release-store / Relaxed-load pairing heuristic.
    for store in sites
        .iter()
        .filter(|s| s.method == "store" && s.variant == "Release" && !s.allowed)
    {
        for load in sites.iter().filter(|l| {
            l.method == "load"
                && l.variant == "Relaxed"
                && l.field == store.field
                && l.field != "?"
                && !l.policy_ok
                && !l.allowed
        }) {
            findings.push(Finding {
                rule: "atomic_ordering",
                path: file.rel.clone(),
                line: store.line,
                message: format!(
                    "Release store to `{}` but its load at line {} is Relaxed; \
                     the publication is only visible through an Acquire load",
                    store.field, load.line
                ),
            });
        }
    }
}

/// Walk back from the `Ordering` token to the atomic method call it is
/// an argument of, and from there to the receiver field name. Returns
/// `("?", "?")` when the shape is unrecognized (forcing a comment).
fn receiver_of(file: &SourceFile, sig: &[usize], s: usize) -> (String, String) {
    let mut depth = 0i32;
    let mut t = s;
    while t > 0 {
        t -= 1;
        match file.text_of(sig[t]) {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    // sig[t] is the call's open paren; method before it.
                    if t >= 1 {
                        let m = t - 1;
                        let name = file.text_of(sig[m]);
                        if ATOMIC_METHODS.contains(&name)
                            && m >= 2
                            && file.text_of(sig[m - 1]) == "."
                        {
                            let recv = file.text_of(sig[m - 2]);
                            if file.tokens[sig[m - 2]].kind == crate::lexer::TokenKind::Ident {
                                return (recv.to_string(), name.to_string());
                            }
                        }
                    }
                    return ("?".to_string(), "?".to_string());
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => return ("?".to_string(), "?".to_string()),
            _ => {}
        }
    }
    ("?".to_string(), "?".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::new(PathBuf::from(rel), rel.to_string(), src.to_string());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn policy_and_comment_justifications() {
        let src = "\
fn f(&self) {\n\
    self.seq.store(1, Ordering::Release);\n\
    // Relaxed: monotonic counter, no ordering needed.\n\
    self.other.fetch_add(1, Ordering::Relaxed);\n\
    self.naked.load(Ordering::Acquire);\n\
}\n";
        let out = run("crates/obs/src/ring.rs", src);
        assert_eq!(out.len(), 1, "{:?}", out);
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("naked"));
    }

    #[test]
    fn seqcst_rejected_even_with_comment() {
        let src = "\
fn f(&self) {\n\
    // SeqCst: because reasons, with atomic keywords galore.\n\
    self.flag.store(true, Ordering::SeqCst);\n\
}\n";
        let out = run("crates/x/src/lib.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("SeqCst"));
    }

    #[test]
    fn release_store_relaxed_load_pairing() {
        let src = "\
fn f(&self) {\n\
    // Release: publishes the buffer (ordering comment).\n\
    self.epoch.store(1, Ordering::Release);\n\
    // Relaxed: observed speculative reads are fine (ordering comment).\n\
    let _ = self.epoch.load(Ordering::Relaxed);\n\
}\n";
        let out = run("crates/x/src/lib.rs", src);
        assert_eq!(out.len(), 1, "{:?}", out);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("line 5"));
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let src = "fn f() { match a.cmp(&b) { std::cmp::Ordering::Less => {} _ => {} } }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn compare_exchange_both_orderings_resolve_receiver() {
        let src = "\
fn f(&self) {\n\
    let _ = self.head.compare_exchange_weak(h, h + 1, Ordering::Relaxed, Ordering::Relaxed);\n\
}\n";
        let out = run("crates/obs/src/ring.rs", src);
        assert!(out.is_empty(), "{:?}", out);
    }

    #[test]
    fn test_code_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t(&self) { self.x.load(Ordering::SeqCst); }\n\
}\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }
}
