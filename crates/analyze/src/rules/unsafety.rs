//! Rule `unsafe_safety`: every `unsafe` keyword — block, fn, impl, or
//! trait — must have a `// SAFETY:` comment attached immediately above
//! (trailing on the same line also counts). A single comment above a
//! *group* of consecutive `unsafe impl` items covers the whole group,
//! matching the existing idiom in `crates/obs/src/ring.rs`.
//!
//! This rule intentionally also covers test code: an unsound test is
//! still unsound.

use crate::report::Finding;
use crate::source::SourceFile;

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let sig: Vec<usize> = file.significant().collect();
    for &i in &sig {
        if !file.is_ident(i, "unsafe") {
            continue;
        }
        let line = file.line_of(file.tokens[i].start);
        if file.is_allowed("unsafe_safety", line) {
            continue;
        }
        let comments = file.attached_comments_over_unsafe_group(line);
        if !comments.contains("SAFETY:") {
            findings.push(Finding {
                rule: "unsafe_safety",
                path: file.rel.clone(),
                line,
                message: "unsafe without a `// SAFETY:` comment immediately above".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::new(PathBuf::from("x.rs"), "x.rs".into(), src.to_string());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn documented_block_passes_naked_block_fails() {
        let src = "\
fn f() {\n\
    // SAFETY: index bounds-checked above.\n\
    unsafe { ptr.read() };\n\
    unsafe { ptr.read() };\n\
}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn group_comment_covers_stacked_unsafe_impls() {
        let src = "\
// SAFETY: the slot protocol makes cross-thread access race free.\n\
unsafe impl<T: Send> Send for Ring<T> {}\n\
unsafe impl<T: Send> Sync for Ring<T> {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "fn f() { let s = \"unsafe {\"; /* unsafe */ }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_escape_hatch() {
        let src = "\
// analyze: allow(unsafe_safety, reason = \"documented at module level\")\n\
unsafe fn raw() {}\n";
        assert!(run(src).is_empty());
    }
}
