//! Rule `panic_freedom`: no panicking constructs in non-test code of
//! the modules named by [`crate::policy::PANIC_POLICIES`].
//!
//! Banned: `.unwrap()`, `.expect(...)`, and the macros `panic!`,
//! `unreachable!`, `assert!`, `assert_eq!`, `assert_ne!`, `todo!`,
//! `unimplemented!`. `debug_assert*` is deliberately permitted: it
//! compiles out of release builds, which is what production runs.

use crate::policy::panic_policy_for;
use crate::report::Finding;
use crate::source::{fn_spans, SourceFile};

const BANNED_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
    "todo",
    "unimplemented",
];

const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let Some(policy) = panic_policy_for(&file.rel) else {
        return;
    };
    if file.is_test_file() {
        return;
    }
    // When the policy is function-scoped, compute the covered byte
    // ranges; lexically nested helpers are covered automatically.
    let covered: Option<Vec<std::ops::Range<usize>>> = if policy.functions.is_empty() {
        None
    } else {
        let spans = fn_spans(file);
        Some(
            spans
                .iter()
                .filter(|s| policy.functions.contains(&s.name.as_str()))
                .map(|s| s.body.clone())
                .collect(),
        )
    };
    let in_scope = |offset: usize| match &covered {
        None => true,
        Some(ranges) => ranges.iter().any(|r| r.start <= offset && offset < r.end),
    };

    let sig: Vec<usize> = file.significant().collect();
    for (s, &i) in sig.iter().enumerate() {
        let tok = &file.tokens[i];
        if !in_scope(tok.start) || file.is_test_code(tok.start) {
            continue;
        }
        let text = file.text_of(i);
        let line = file.line_of(tok.start);
        // `.unwrap()` / `.expect(` — require the leading dot so free
        // functions named `unwrap` in scope don't trip the rule.
        if BANNED_METHODS.contains(&text)
            && s > 0
            && file.text_of(sig[s - 1]) == "."
            && s + 1 < sig.len()
            && file.text_of(sig[s + 1]) == "("
            && !file.is_allowed("panic_freedom", line)
        {
            findings.push(Finding {
                rule: "panic_freedom",
                path: file.rel.clone(),
                line,
                message: format!(
                    ".{}() in non-test code ({}); return a typed error instead",
                    text, policy.reason
                ),
            });
            continue;
        }
        // `panic!(...)` and friends — an identifier followed by `!`.
        if BANNED_MACROS.contains(&text)
            && s + 1 < sig.len()
            && file.text_of(sig[s + 1]) == "!"
            && (s == 0 || file.text_of(sig[s - 1]) != ".")
            && !file.is_allowed("panic_freedom", line)
        {
            findings.push(Finding {
                rule: "panic_freedom",
                path: file.rel.clone(),
                line,
                message: format!(
                    "{}! in non-test code ({}); handle the case or return an error",
                    text, policy.reason
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::new(PathBuf::from(rel), rel.to_string(), src.to_string());
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_macros_outside_tests() {
        let src = "\
fn f() {\n\
    let x = y.unwrap();\n\
    let z = y.expect(\"msg\");\n\
    panic!(\"no\");\n\
    debug_assert!(x > 0);\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { a.unwrap(); assert_eq!(1, 1); }\n\
}\n";
        let out = run("crates/net/src/protocol.rs", src);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn unpoliced_files_are_ignored() {
        assert!(run("crates/core/src/lib.rs", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn function_scoped_policy() {
        let src = "\
fn flush() { a.unwrap(); }\n\
fn other() { b.unwrap(); }\n";
        let out = run("crates/serve/src/batcher.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "\
fn f() {\n\
    // analyze: allow(panic_freedom, reason = \"init-time invariant\")\n\
    let x = y.unwrap();\n\
    let z = y.unwrap();\n\
}\n";
        let out = run("crates/net/src/protocol.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() { let s = \"x.unwrap()\"; /* panic!() */ }\n";
        assert!(run("crates/net/src/protocol.rs", src).is_empty());
    }
}
