//! Rule `lock_order`: extract every `.lock()` / `.read()` / `.write()`
//! acquisition (empty argument lists only, so `io::Read::read(&mut
//! buf)` never matches), keyed by receiver field name, model how long
//! each guard is held, add cross-function edges via a call-graph
//! fixpoint, and fail on cycles in the resulting lock-order graph.
//!
//! ## Guard-extent model (approximation, documented)
//!
//! * `let g = x.lock()...;` — held to the end of the enclosing block
//!   (or an explicit `drop(g)`).
//! * `if let` / `while let` / `match` scrutinee — held through the
//!   statement's block *including* the `else` chain (Rust's temporary
//!   lifetime for scrutinees), released after it.
//! * any other expression statement — held to the end of the statement.
//!
//! Receivers are keyed by field *name* only; same-named fields in
//! different types merge. That over-approximates the graph (safe
//! direction: may report a cycle that spans two unrelated types), and
//! a false merge can be silenced with `// analyze: allow(lock_order,
//! reason = "...")` on the reported line.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::{fn_spans, SourceFile};

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "let", "for", "loop", "return", "fn", "move", "mut", "ref",
    "in", "as", "break", "continue", "unsafe", "async", "await", "dyn", "impl", "pub", "where",
    "struct", "enum", "use", "mod", "const", "static", "type", "true", "false", "self", "Self",
    "super", "crate", "Some", "Ok", "Err", "None", "Box", "Vec",
];

/// Callee names excluded from cross-function resolution. The call graph
/// is keyed by bare name, and these collide with std methods on every
/// other type (`Vec::push`, `HashMap::insert`, ...) — resolving them
/// would merge unrelated code into the lock graph and report phantom
/// cycles. The cost is a missed edge through a workspace function that
/// happens to share one of these names; that trade (precision over an
/// already-approximate recall) is deliberate and documented in the
/// README.
const COMMON_CALLEES: &[&str] = &[
    "new",
    "len",
    "is_empty",
    "insert",
    "push",
    "pop",
    "get",
    "get_mut",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "iter",
    "into_iter",
    "next",
    "clone",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "default",
    "send",
    "recv",
    "try_recv",
    "extend",
    "drain",
    "take",
    "replace",
    "min",
    "max",
];

/// One observed lock-order edge `from` → `to`, with its evidence.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    path: String,
    line: usize,
    via: String,
}

#[derive(Debug)]
struct FnFacts {
    /// Locks acquired directly in the body.
    direct: BTreeSet<String>,
    /// Names of functions called from the body.
    calls: BTreeSet<String>,
    /// Call sites made while at least one guard was held.
    held_calls: Vec<(String, Vec<String>, String, usize)>, // callee, held, path, line
    /// Direct lexical nesting edges.
    edges: Vec<Edge>,
}

enum HeldKind {
    /// `let`-bound guard: held until brace depth drops below `depth`.
    Let { var: Option<String> },
    /// Scrutinee guard: held until the statement's block chain closes
    /// back to `depth` with no trailing `else`.
    Cond,
    /// Plain statement temporary: held until `;` at `depth`.
    Stmt,
}

struct Held {
    key: String,
    depth: i32,
    kind: HeldKind,
}

/// Run the lock-order analysis over the whole file set.
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut all_edges: Vec<Edge> = Vec::new();

    for file in files {
        if file.is_test_file() {
            continue;
        }
        let spans = fn_spans(file);
        for span in &spans {
            if file.is_test_code(span.body.start) {
                continue;
            }
            let f = scan_fn(file, span.body_tokens.clone());
            all_edges.extend(f.edges.iter().cloned());
            let entry = facts.entry(span.name.clone()).or_insert_with(|| FnFacts {
                direct: BTreeSet::new(),
                calls: BTreeSet::new(),
                held_calls: Vec::new(),
                edges: Vec::new(),
            });
            entry.direct.extend(f.direct);
            entry.calls.extend(f.calls);
            entry.held_calls.extend(f.held_calls);
        }
    }

    // Fixpoint: transitive lock set per function name.
    let mut locks: BTreeMap<String, BTreeSet<String>> = facts
        .iter()
        .map(|(name, f)| (name.clone(), f.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &facts {
            let mut acc = locks[name].clone();
            for callee in &f.calls {
                if let Some(set) = locks.get(callee) {
                    for k in set {
                        if acc.insert(k.clone()) {
                            changed = true;
                        }
                    }
                }
            }
            locks.insert(name.clone(), acc);
        }
        if !changed {
            break;
        }
    }

    // Cross-function edges: guard held across a call that (transitively)
    // acquires other locks.
    for f in facts.values() {
        for (callee, held, path, line) in &f.held_calls {
            if let Some(set) = locks.get(callee) {
                for to in set {
                    for from in held {
                        all_edges.push(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            path: path.clone(),
                            line: *line,
                            via: format!(" via call to `{}`", callee),
                        });
                    }
                }
            }
        }
    }

    // Deduplicate: keep the lexicographically first example per (from, to).
    all_edges.sort_by(|a, b| {
        (&a.from, &a.to, &a.path, a.line, &a.via).cmp(&(&b.from, &b.to, &b.path, b.line, &b.via))
    });
    let mut edge_map: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for e in all_edges {
        edge_map.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }

    report_cycles(files, &edge_map, findings);
}

fn report_cycles(
    files: &[SourceFile],
    edge_map: &BTreeMap<(String, String), Edge>,
    findings: &mut Vec<Finding>,
) {
    let allowed = |path: &str, line: usize| {
        files
            .iter()
            .find(|f| f.rel == path)
            .is_some_and(|f| f.is_allowed("lock_order", line))
    };

    // Self-loops first (nested acquisition of the same key).
    for ((from, to), e) in edge_map {
        if from == to && !allowed(&e.path, e.line) {
            findings.push(Finding {
                rule: "lock_order",
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "`{}` acquired while already held{} (self-deadlock risk)",
                    from, e.via
                ),
            });
        }
    }

    // Strongly connected components over the remaining graph.
    let nodes: BTreeSet<&String> = edge_map.keys().flat_map(|(a, b)| [a, b]).collect();
    let nodes: Vec<&String> = nodes.into_iter().collect();
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to) in edge_map.keys() {
        if from != to {
            adj[index_of[from]].push(index_of[to]);
        }
    }
    for scc in tarjan(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let mut names: Vec<&str> = scc.iter().map(|&i| nodes[i].as_str()).collect();
        names.sort_unstable();
        // Evidence: every edge internal to the SCC, sorted.
        let mut evidence: Vec<&Edge> = edge_map
            .iter()
            .filter(|((f, t), _)| {
                f != t && members.contains(&index_of[f]) && members.contains(&index_of[t])
            })
            .map(|(_, e)| e)
            .collect();
        evidence.sort_by_key(|e| (&e.path, e.line));
        if evidence.iter().any(|e| allowed(&e.path, e.line)) {
            continue;
        }
        let detail = evidence
            .iter()
            .map(|e| {
                format!(
                    "`{}` -> `{}` at {}:{}{}",
                    e.from, e.to, e.path, e.line, e.via
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        let first = evidence[0];
        findings.push(Finding {
            rule: "lock_order",
            path: first.path.clone(),
            line: first.line,
            message: format!(
                "lock-order cycle among {{{}}}: {}",
                names.join(", "),
                detail
            ),
        });
    }
}

/// Iterative Tarjan SCC; returns components (each a list of node ids).
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    // Explicit DFS stack: (node, next-child-offset).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&mut (p, _)) = dfs.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap_or(v);
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Scan one function body for acquisitions, calls, and nesting edges.
fn scan_fn(file: &SourceFile, body_tokens: std::ops::Range<usize>) -> FnFacts {
    let sig: Vec<usize> = file.significant().collect();
    let toks: Vec<usize> = sig[body_tokens.start..body_tokens.end].to_vec();
    let mut facts = FnFacts {
        direct: BTreeSet::new(),
        calls: BTreeSet::new(),
        held_calls: Vec::new(),
        edges: Vec::new(),
    };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_first: Option<String> = None;
    let mut let_var: Option<String> = None;

    let text_at = |t: usize| file.text_of(toks[t]);
    let mut t = 0usize;
    while t < toks.len() {
        let tok = text_at(t);
        match tok {
            "{" => {
                depth += 1;
                stmt_first = None;
                let_var = None;
            }
            "}" => {
                depth -= 1;
                let next_is_else = t + 1 < toks.len() && text_at(t + 1) == "else";
                held.retain(|h| match h.kind {
                    HeldKind::Let { .. } => depth >= h.depth,
                    HeldKind::Cond => depth > h.depth || (depth == h.depth && next_is_else),
                    HeldKind::Stmt => depth >= h.depth,
                });
                stmt_first = None;
                let_var = None;
            }
            ";" => {
                held.retain(|h| !(matches!(h.kind, HeldKind::Stmt) && h.depth == depth));
                stmt_first = None;
                let_var = None;
            }
            _ => {
                if stmt_first.is_none() {
                    stmt_first = Some(tok.to_string());
                }
                if tok == "let" && t + 1 < toks.len() && let_var.is_none() {
                    // `let [mut] name` — capture the binding name for drop().
                    let mut v = t + 1;
                    if text_at(v) == "mut" {
                        v += 1;
                    }
                    if v < toks.len() && file.tokens[toks[v]].kind == TokenKind::Ident {
                        let_var = Some(text_at(v).to_string());
                    }
                }
                // drop(var) releases a let-bound guard.
                if tok == "drop"
                    && t + 3 < toks.len()
                    && text_at(t + 1) == "("
                    && text_at(t + 3) == ")"
                {
                    let var = text_at(t + 2).to_string();
                    held.retain(
                        |h| !matches!(&h.kind, HeldKind::Let { var: Some(v) } if *v == var),
                    );
                }
                // Acquisition: `.lock()` / `.read()` / `.write()` with
                // EMPTY parens (io::Read/Write take arguments).
                let is_acq = LOCK_METHODS.contains(&tok)
                    && t >= 1
                    && text_at(t - 1) == "."
                    && t + 2 < toks.len()
                    && text_at(t + 1) == "("
                    && text_at(t + 2) == ")";
                if is_acq {
                    let key = receiver_key(file, &toks, t);
                    if key == "?" {
                        // Unkeyable receiver: skipping it is safer than
                        // merging unrelated locks into one node.
                        t += 3;
                        continue;
                    }
                    let line = file.line_of(file.tokens[toks[t]].start);
                    for h in &held {
                        facts.edges.push(Edge {
                            from: h.key.clone(),
                            to: key.clone(),
                            path: file.rel.clone(),
                            line,
                            via: String::new(),
                        });
                    }
                    facts.direct.insert(key.clone());
                    let kind = match stmt_first.as_deref() {
                        Some("let") => HeldKind::Let {
                            var: let_var.clone(),
                        },
                        Some("if") | Some("while") | Some("match") => HeldKind::Cond,
                        _ => HeldKind::Stmt,
                    };
                    held.push(Held { key, depth, kind });
                    t += 3; // past `(` `)`
                    continue;
                }
                // Call: ident followed by `(` (macros have `!` between,
                // so they never match).
                if file.tokens[toks[t]].kind == TokenKind::Ident
                    && !KEYWORDS.contains(&tok)
                    && !COMMON_CALLEES.contains(&tok)
                    && t + 1 < toks.len()
                    && text_at(t + 1) == "("
                {
                    facts.calls.insert(tok.to_string());
                    if !held.is_empty() {
                        let line = file.line_of(file.tokens[toks[t]].start);
                        facts.held_calls.push((
                            tok.to_string(),
                            held.iter().map(|h| h.key.clone()).collect(),
                            file.rel.clone(),
                            line,
                        ));
                    }
                }
            }
        }
        t += 1;
    }
    facts
}

/// Receiver key for the acquisition at `toks[t]` (the method ident):
/// the field/variable before the dot, or `name()` for a method-call
/// receiver like `self.shard(k).lock()`.
fn receiver_key(file: &SourceFile, toks: &[usize], t: usize) -> String {
    if t < 2 {
        return "?".to_string();
    }
    let prev = file.text_of(toks[t - 2]);
    if prev == ")" {
        // Walk back over the argument list to the method name.
        let mut depth = 0i32;
        let mut u = t - 2;
        loop {
            match file.text_of(toks[u]) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        if u >= 1 && file.tokens[toks[u - 1]].kind == TokenKind::Ident {
                            return format!("{}()", file.text_of(toks[u - 1]));
                        }
                        return "?".to_string();
                    }
                }
                _ => {}
            }
            if u == 0 {
                return "?".to_string();
            }
            u -= 1;
        }
    }
    if file.tokens[toks[t - 2]].kind == TokenKind::Ident {
        return prev.to_string();
    }
    "?".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::new(PathBuf::from(rel), rel.to_string(), src.to_string()))
            .collect();
        let mut out = Vec::new();
        check(&files, &mut out);
        out
    }

    #[test]
    fn direct_cycle_detected() {
        let src = "\
fn ab(&self) {\n\
    let a = self.alpha.lock();\n\
    let b = self.beta.lock();\n\
}\n\
fn ba(&self) {\n\
    let b = self.beta.lock();\n\
    let a = self.alpha.lock();\n\
}\n";
        let out = run(&[("x.rs", src)]);
        assert_eq!(out.len(), 1, "{:?}", out);
        assert!(out[0].message.contains("cycle"));
        assert!(out[0].message.contains("alpha"));
        assert!(out[0].message.contains("beta"));
    }

    #[test]
    fn sequential_acquisitions_are_fine() {
        let src = "\
fn f(&self) {\n\
    { let a = self.alpha.lock(); }\n\
    { let b = self.beta.lock(); }\n\
}\n\
fn g(&self) {\n\
    { let b = self.beta.lock(); }\n\
    { let a = self.alpha.lock(); }\n\
}\n";
        assert!(run(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn if_let_scrutinee_releases_after_else_chain() {
        // The read guard in the scrutinee must NOT be considered held
        // at the later write() — no self-edge.
        let src = "\
fn get_or_create(&self) {\n\
    if let Some(t) = self.tenants.read().get(id) {\n\
        return t;\n\
    } else {\n\
        noop();\n\
    }\n\
    let mut w = self.tenants.write();\n\
}\n";
        let out = run(&[("x.rs", src)]);
        assert!(out.is_empty(), "{:?}", out);
    }

    #[test]
    fn nested_same_key_is_a_self_deadlock() {
        let src = "\
fn f(&self) {\n\
    let a = self.state.lock();\n\
    let b = self.state.lock();\n\
}\n";
        let out = run(&[("x.rs", src)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("already held"));
    }

    #[test]
    fn cross_function_cycle_via_call() {
        let src = "\
fn outer(&self) {\n\
    let a = self.alpha.lock();\n\
    helper(self);\n\
}\n\
fn helper(&self) {\n\
    let b = self.beta.lock();\n\
}\n\
fn other(&self) {\n\
    let b = self.beta.lock();\n\
    let a = self.alpha.lock();\n\
}\n";
        let out = run(&[("x.rs", src)]);
        assert_eq!(out.len(), 1, "{:?}", out);
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn drop_releases_let_guard() {
        let src = "\
fn f(&self) {\n\
    let a = self.alpha.lock();\n\
    drop(a);\n\
    let b = self.beta.lock();\n\
}\n\
fn g(&self) {\n\
    let b = self.beta.lock();\n\
    drop(b);\n\
    let a = self.alpha.lock();\n\
}\n";
        assert!(run(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn io_read_write_with_args_ignored() {
        let src = "\
fn f(&mut self) {\n\
    let g = self.state.lock();\n\
    self.stream.read(&mut buf);\n\
    self.stream.write(&buf);\n\
}\n";
        assert!(run(&[("x.rs", src)]).is_empty());
    }

    #[test]
    fn allow_suppresses_cycle() {
        let src = "\
fn ab(&self) {\n\
    let a = self.alpha.lock();\n\
    // analyze: allow(lock_order, reason = \"false merge: different registries\")\n\
    let b = self.beta.lock();\n\
}\n\
fn ba(&self) {\n\
    let b = self.beta.lock();\n\
    let a = self.alpha.lock();\n\
}\n";
        assert!(run(&[("x.rs", src)]).is_empty());
    }
}
