//! The declarative policy table driving the rule engine.
//!
//! Policies match files by workspace-relative path *suffix* (forward
//! slashes), so the same table works whether the analyzer runs from the
//! workspace root or a fixture directory. Every entry carries a reason
//! string: the table is documentation as much as configuration.

/// Where the panic-freedom rule applies.
#[derive(Debug, Clone)]
pub struct PanicPolicy {
    /// Path suffix the policy applies to.
    pub path_suffix: &'static str,
    /// If non-empty, only these functions (and functions lexically
    /// nested in them) are covered; if empty, the whole file is.
    pub functions: &'static [&'static str],
    /// Why this module must not panic.
    pub reason: &'static str,
}

/// Files/fields where a given set of atomic orderings is pre-justified,
/// so individual sites don't each need a comment.
#[derive(Debug, Clone)]
pub struct AtomicPolicy {
    /// Path suffix the policy applies to.
    pub path_suffix: &'static str,
    /// Receiver field/variable name the ordering is used on, or `"*"`
    /// for any receiver in the file.
    pub field: &'static str,
    /// Orderings this entry justifies (`Relaxed`, `Acquire`, ...).
    pub orderings: &'static [&'static str],
    /// Why these orderings are sound here.
    pub reason: &'static str,
}

/// Panic-freedom coverage. The untrusted/hot paths named in the design
/// docs: the wire codec, the client, the server dispatch path, the
/// batcher flush path, and the lock-free event ring.
pub const PANIC_POLICIES: &[PanicPolicy] = &[
    PanicPolicy {
        path_suffix: "crates/net/src/protocol.rs",
        functions: &[],
        reason: "parses untrusted bytes from the wire; a panic is a remote DoS",
    },
    PanicPolicy {
        path_suffix: "crates/net/src/client.rs",
        functions: &[],
        reason: "library code embedded in user processes; errors must be typed",
    },
    PanicPolicy {
        path_suffix: "crates/net/src/server.rs",
        functions: &[],
        reason:
            "dispatch path serves every tenant; one panic kills the listener or a scheduler thread",
    },
    PanicPolicy {
        path_suffix: "crates/net/src/tenant.rs",
        functions: &[],
        reason: "quota accounting runs on every request on the dispatch path",
    },
    PanicPolicy {
        path_suffix: "crates/serve/src/batcher.rs",
        functions: &["flush", "promote", "batcher_loop"],
        reason: "the flush path drains every registered sim; a panic wedges the batcher thread",
    },
    PanicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        functions: &[],
        reason: "the event ring is called from every hot path; it must never unwind",
    },
    // Fixture: exercises the rule in golden tests.
    PanicPolicy {
        path_suffix: "fixtures/panic_fixture.rs",
        functions: &[],
        reason: "violation-seeded fixture for the golden findings test",
    },
    PanicPolicy {
        path_suffix: "fixtures/allow_fixture.rs",
        functions: &[],
        reason: "fixture exercising the allow() escape hatch",
    },
];

/// Pre-justified atomic orderings. Entries cover whole families of
/// monotonic counters so each site doesn't need a comment; anything not
/// covered here needs a justification comment at the site.
pub const ATOMIC_POLICIES: &[AtomicPolicy] = &[
    AtomicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        field: "seq",
        orderings: &["Acquire", "Release"],
        reason: "Vyukov slot protocol: seq Release-publishes the slot payload, Acquire observes it",
    },
    AtomicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        field: "head",
        orderings: &["Relaxed"],
        reason: "cursors race benignly; the per-slot seq provides the synchronization",
    },
    AtomicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        field: "tail",
        orderings: &["Relaxed"],
        reason: "cursors race benignly; the per-slot seq provides the synchronization",
    },
    AtomicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        field: "pushed",
        orderings: &["Relaxed"],
        reason: "monotonic statistics counter; no ordering dependency",
    },
    AtomicPolicy {
        path_suffix: "crates/obs/src/ring.rs",
        field: "dropped",
        orderings: &["Relaxed"],
        reason: "monotonic statistics counter; no ordering dependency",
    },
    AtomicPolicy {
        path_suffix: "crates/net/src/tenant.rs",
        field: "*",
        orderings: &["Relaxed"],
        reason: "per-tenant monotonic counters and gauges; snapshots tolerate tearing",
    },
    AtomicPolicy {
        path_suffix: "crates/serve/src/stats.rs",
        field: "*",
        orderings: &["Relaxed"],
        reason: "metrics counters only; readers tolerate stale or torn snapshots",
    },
    AtomicPolicy {
        path_suffix: "crates/serve/src/cache.rs",
        field: "*",
        orderings: &["Relaxed"],
        reason: "hit/miss/eviction counters; no cross-field ordering requirement",
    },
    AtomicPolicy {
        path_suffix: "crates/serve/src/batcher.rs",
        field: "pending",
        orderings: &["Relaxed"],
        reason: "in-flight lane gauge; admission reads it as a hint, the channel orders the work",
    },
    AtomicPolicy {
        path_suffix: "crates/serve/src/batcher.rs",
        field: "epoch",
        orderings: &["Acquire", "Release"],
        reason: "Release-publishes the swapped-in backend's epoch; readers Acquire to observe it",
    },
    AtomicPolicy {
        path_suffix: "crates/serve/src/batcher.rs",
        field: "NEXT_SERVICE",
        orderings: &["Relaxed"],
        reason: "monotonic service-id allocator; ids need uniqueness, not ordering",
    },
    AtomicPolicy {
        path_suffix: "crates/net/src/server.rs",
        field: "stop",
        orderings: &["Relaxed"],
        reason: "cooperative shutdown flag; thread joins provide the synchronization",
    },
    AtomicPolicy {
        path_suffix: "crates/net/src/server.rs",
        field: "conn_seq",
        orderings: &["Relaxed"],
        reason: "monotonic connection-id allocator",
    },
    // Fixture: exercises the policy-match path in golden tests.
    AtomicPolicy {
        path_suffix: "fixtures/atomics_fixture.rs",
        field: "policy_ok",
        orderings: &["Relaxed"],
        reason: "fixture entry proving policy-listed sites are accepted",
    },
];

/// Keywords whose presence in an attached comment counts as an
/// ordering justification. Case-insensitive substring match.
pub const ORDERING_JUSTIFICATION_KEYWORDS: &[&str] = &[
    "ordering",
    "acquire",
    "release",
    "relaxed",
    "seqcst",
    "acqrel",
    "atomic",
    "monotonic",
    "synchroniz",
    "happens-before",
];

/// `SeqCst` is disallowed everywhere except sites listed here (none in
/// the real tree: total order is never needed, and it hides missing
/// reasoning). Fixtures exercise the failure mode.
pub const SEQCST_ALLOWED: &[AtomicPolicy] = &[];

/// Does `rel` (workspace-relative, forward slashes) match `suffix`?
/// Matches whole path segments so `ring.rs` does not match `string.rs`.
pub fn path_matches(rel: &str, suffix: &str) -> bool {
    if let Some(prefix) = rel.strip_suffix(suffix) {
        prefix.is_empty() || prefix.ends_with('/')
    } else {
        false
    }
}

/// The panic policy (if any) covering `rel`.
pub fn panic_policy_for(rel: &str) -> Option<&'static PanicPolicy> {
    PANIC_POLICIES
        .iter()
        .find(|p| path_matches(rel, p.path_suffix))
}

/// All atomic policy entries covering `rel`.
pub fn atomic_policies_for(rel: &str) -> Vec<&'static AtomicPolicy> {
    ATOMIC_POLICIES
        .iter()
        .filter(|p| path_matches(rel, p.path_suffix))
        .collect()
}

/// Whether an atomic policy entry justifies `ordering` on `field`.
pub fn atomic_policy_allows(rel: &str, field: &str, ordering: &str) -> bool {
    atomic_policies_for(rel)
        .iter()
        .any(|p| (p.field == "*" || p.field == field) && p.orderings.contains(&ordering))
}

/// Whether a comment blob justifies an ordering choice.
pub fn comment_justifies_ordering(comment: &str) -> bool {
    let lower = comment.to_lowercase();
    ORDERING_JUSTIFICATION_KEYWORDS
        .iter()
        .any(|k| lower.contains(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_suffix_matches_whole_segments() {
        assert!(path_matches(
            "crates/obs/src/ring.rs",
            "crates/obs/src/ring.rs"
        ));
        assert!(path_matches(
            "/abs/root/crates/obs/src/ring.rs",
            "crates/obs/src/ring.rs"
        ));
        assert!(!path_matches("crates/obs/src/string.rs", "ring.rs"));
        assert!(path_matches("crates/obs/src/ring.rs", "ring.rs"));
    }

    #[test]
    fn atomic_policy_wildcards() {
        assert!(atomic_policy_allows(
            "crates/net/src/tenant.rs",
            "admitted",
            "Relaxed"
        ));
        assert!(!atomic_policy_allows(
            "crates/net/src/tenant.rs",
            "admitted",
            "SeqCst"
        ));
        assert!(atomic_policy_allows(
            "crates/obs/src/ring.rs",
            "seq",
            "Acquire"
        ));
        assert!(!atomic_policy_allows(
            "crates/obs/src/ring.rs",
            "seq",
            "Relaxed"
        ));
    }

    #[test]
    fn justification_keywords() {
        assert!(comment_justifies_ordering(
            "// Relaxed: counter only, no ordering needed"
        ));
        assert!(!comment_justifies_ordering("// bump the number"));
    }
}
