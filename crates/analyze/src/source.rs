//! Per-file source model: the lexed token stream plus the derived
//! facts every rule needs — line numbers, test-code regions, function
//! spans, `// analyze: allow(...)` annotations, and comment lookups.
//!
//! ## Test-code discrimination
//!
//! A span is *test code* (exempt from the panic-freedom and
//! atomic-ordering rules) when any of these hold:
//!
//! * the file lives under a `tests/` or `benches/` directory
//!   (integration tests and benches),
//! * the item is annotated `#[test]`, `#[cfg(test)]` or
//!   `#[cfg(all(test, ...))]` — the annotated item's full extent
//!   (through its matching closing brace or terminating `;`) is a test
//!   region. `#[cfg(not(test))]` deliberately does **not** count: that
//!   code ships.
//!
//! Doctests need no special casing: code inside `///` comments is part
//! of a single comment token, so rules scanning significant tokens
//! never see it.

use std::ops::Range;
use std::path::PathBuf;

use crate::lexer::{lex, Token, TokenKind};

/// The rules a finding can belong to (also the names accepted by the
/// `analyze: allow(...)` annotation).
pub const RULES: &[&str] = &[
    "panic_freedom",
    "atomic_ordering",
    "lock_order",
    "unsafe_safety",
    "allow_syntax",
];

/// One parsed `// analyze: allow(<rule>, reason = "...")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Whether a non-empty reason string was supplied (required).
    pub has_reason: bool,
    /// Line the comment sits on (1-based).
    pub line: usize,
    /// Line the annotation applies to: the comment's own line for a
    /// trailing comment, the next code-bearing line for a standalone
    /// comment line.
    pub target_line: usize,
}

/// A lexed source file plus derived per-line facts.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as discovered on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes — what findings and
    /// the policy table match against.
    pub rel: String,
    /// Full text.
    pub text: String,
    /// The tiling token stream.
    pub tokens: Vec<Token>,
    /// Byte offset where each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
    /// Byte ranges of test code (see module docs), sorted, merged.
    test_regions: Vec<Range<usize>>,
    /// Whether the whole file is test code by path.
    test_file: bool,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lex `text` and precompute the derived facts. `rel` is the
    /// workspace-relative path with forward slashes.
    pub fn new(path: PathBuf, rel: String, text: String) -> SourceFile {
        let tokens = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_file = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
        let mut file = SourceFile {
            path,
            rel,
            text,
            tokens,
            line_starts,
            test_regions: Vec::new(),
            test_file,
            allows: Vec::new(),
        };
        file.test_regions = file.compute_test_regions();
        file.allows = file.parse_allows();
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `offset` falls in test code (file-level or region-level).
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.test_file
            || self
                .test_regions
                .iter()
                .any(|r| r.start <= offset && offset < r.end)
    }

    /// Whether the whole file is test code by path (`tests/`, `benches/`).
    pub fn is_test_file(&self) -> bool {
        self.test_file
    }

    /// Indexes of significant (non-trivia) tokens, in order.
    pub fn significant(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].is_significant())
    }

    /// The next significant token index strictly after `i`.
    pub fn next_significant(&self, i: usize) -> Option<usize> {
        ((i + 1)..self.tokens.len()).find(|&j| self.tokens[j].is_significant())
    }

    /// The previous significant token index strictly before `i`.
    pub fn prev_significant(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.tokens[j].is_significant())
    }

    /// Token text helper.
    pub fn text_of(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Whether token `i` is the identifier `word`.
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.tokens[i].kind == TokenKind::Ident && self.text_of(i) == word
    }

    /// All comment text attached to `line`: trailing comments on the
    /// line itself plus the contiguous run of comment-only lines
    /// directly above it, concatenated. Attribute-only lines (starting
    /// with `#`) are skipped while walking up, so a comment above
    /// `#[inline]` still attaches to the item below.
    pub fn attached_comments(&self, line: usize) -> String {
        let mut out = String::new();
        for t in self.tokens_on_line(line) {
            if self.tokens[t].is_comment() {
                out.push_str(self.text_of(t));
                out.push('\n');
            }
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.line_class(l) {
                LineClass::CommentOnly => {
                    for t in self.tokens_on_line(l) {
                        if self.tokens[t].is_comment() {
                            out.push_str(self.text_of(t));
                            out.push('\n');
                        }
                    }
                }
                LineClass::AttributeOnly | LineClass::Blank => continue,
                LineClass::Code => break,
            }
        }
        out
    }

    /// Like [`attached_comments`](Self::attached_comments), but while
    /// walking up also skips over lines whose first significant token
    /// is `unsafe` (the "comment above a group" rule for stacked
    /// `unsafe impl` items).
    pub fn attached_comments_over_unsafe_group(&self, line: usize) -> String {
        let mut out = String::new();
        for t in self.tokens_on_line(line) {
            if self.tokens[t].is_comment() {
                out.push_str(self.text_of(t));
                out.push('\n');
            }
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.line_class(l) {
                LineClass::CommentOnly => {
                    for t in self.tokens_on_line(l) {
                        if self.tokens[t].is_comment() {
                            out.push_str(self.text_of(t));
                            out.push('\n');
                        }
                    }
                }
                LineClass::AttributeOnly | LineClass::Blank => continue,
                LineClass::Code => {
                    // Only stacked `unsafe impl` items share one
                    // comment; any other code line ends the walk.
                    let sig: Vec<usize> = self
                        .tokens_on_line(l)
                        .into_iter()
                        .filter(|&t| self.tokens[t].is_significant())
                        .collect();
                    match sig.as_slice() {
                        [first, second, ..]
                            if self.is_ident(*first, "unsafe")
                                && self.is_ident(*second, "impl") =>
                        {
                            continue;
                        }
                        _ => break,
                    }
                }
            }
        }
        out
    }

    /// Token indexes whose span starts on `line` (1-based).
    pub fn tokens_on_line(&self, line: usize) -> Vec<usize> {
        // Lines are short; a scan keyed off the precomputed line starts
        // is plenty. Find the byte range of the line first.
        if line == 0 || line > self.line_starts.len() {
            return Vec::new();
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.text.len());
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.start >= start && t.start < end)
            .map(|(i, _)| i)
            .collect()
    }

    fn line_class(&self, line: usize) -> LineClass {
        let toks = self.tokens_on_line(line);
        let mut saw_comment = false;
        let mut first_sig: Option<usize> = None;
        for t in toks {
            match self.tokens[t].kind {
                TokenKind::Whitespace => {}
                TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } => {
                    saw_comment = true
                }
                _ => {
                    if first_sig.is_none() {
                        first_sig = Some(t);
                    }
                }
            }
        }
        match first_sig {
            Some(t) if self.text_of(t) == "#" => LineClass::AttributeOnly,
            Some(_) => LineClass::Code,
            None if saw_comment => LineClass::CommentOnly,
            None => LineClass::Blank,
        }
    }

    /// First code-bearing line at or after `line`.
    fn next_code_line(&self, line: usize) -> Option<usize> {
        (line..=self.line_starts.len()).find(|&l| {
            matches!(
                self.line_class(l),
                LineClass::Code | LineClass::AttributeOnly
            )
        })
    }

    // ---- test regions ---------------------------------------------------

    /// Byte ranges covered by `#[test]` / `#[cfg(test)]` items.
    fn compute_test_regions(&self) -> Vec<Range<usize>> {
        let mut regions: Vec<Range<usize>> = Vec::new();
        let sig: Vec<usize> = self.significant().collect();
        let mut s = 0usize;
        while s < sig.len() {
            let i = sig[s];
            if self.text_of(i) == "#" {
                // Parse one attribute: `#[ ... ]` (outer only; `#![...]`
                // is a crate attribute and never marks a test item).
                if let Some((attr_text, after)) = self.parse_attr(&sig, s) {
                    if is_test_attr(&attr_text) {
                        // Skip any further attributes, then swallow the item.
                        let mut t = after;
                        while t < sig.len() && self.text_of(sig[t]) == "#" {
                            match self.parse_attr(&sig, t) {
                                Some((_, next)) => t = next,
                                None => break,
                            }
                        }
                        if let Some((end_offset, next)) = self.item_extent(&sig, t) {
                            regions.push(self.tokens[i].start..end_offset);
                            s = next;
                            continue;
                        }
                    }
                    s = after;
                    continue;
                }
            }
            s += 1;
        }
        regions
    }

    /// Parse the attribute starting at significant index `s` (whose
    /// token is `#`). Returns the attribute's source text (whitespace
    /// stripped) and the significant index just past the closing `]`.
    fn parse_attr(&self, sig: &[usize], s: usize) -> Option<(String, usize)> {
        let mut t = s + 1;
        // Optional `!` for inner attributes.
        let mut text = String::from("#");
        if t < sig.len() && self.text_of(sig[t]) == "!" {
            text.push('!');
            t += 1;
        }
        if t >= sig.len() || self.text_of(sig[t]) != "[" {
            return None;
        }
        let mut depth = 0i32;
        while t < sig.len() {
            let tok = self.text_of(sig[t]);
            text.push_str(tok);
            match tok {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((text, t + 1));
                    }
                }
                _ => {}
            }
            t += 1;
        }
        None
    }

    /// The extent of the item starting at significant index `s`:
    /// returns (byte offset one past its end, significant index after
    /// it). An item ends at the `}` matching its first open brace, or
    /// at a `;` with all brackets closed (e.g. `#[cfg(test)] mod t;`).
    fn item_extent(&self, sig: &[usize], s: usize) -> Option<(usize, usize)> {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut entered_brace = false;
        let mut t = s;
        while t < sig.len() {
            match self.text_of(sig[t]) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => {
                    brace += 1;
                    entered_brace = true;
                }
                "}" => {
                    brace -= 1;
                    if entered_brace && brace == 0 {
                        return Some((self.tokens[sig[t]].end, t + 1));
                    }
                }
                ";" if !entered_brace && paren == 0 && bracket == 0 && brace == 0 => {
                    return Some((self.tokens[sig[t]].end, t + 1));
                }
                _ => {}
            }
            t += 1;
        }
        None
    }

    // ---- allow annotations ----------------------------------------------

    fn parse_allows(&self) -> Vec<Allow> {
        let mut out = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            // Doc comments never carry annotations: they are prose (and
            // the analyzer's own docs quote the grammar).
            let plain_comment = matches!(
                tok.kind,
                TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
            );
            if !plain_comment {
                continue;
            }
            let text = tok.text(&self.text);
            let Some(at) = text.find("analyze: allow(") else {
                continue;
            };
            let line = self.line_of(tok.start);
            let body = &text[at + "analyze: allow(".len()..];
            let (rule, has_reason) = parse_allow_body(body);
            // Standalone comment line → applies to the next code line;
            // trailing comment → applies to its own line.
            let target_line = match self.line_class(line) {
                LineClass::CommentOnly => self.next_code_line(line + 1).unwrap_or(line),
                _ => line,
            };
            let _ = i;
            out.push(Allow {
                rule,
                has_reason,
                line,
                target_line,
            });
        }
        out
    }

    /// Whether a finding of `rule` on `line` is suppressed by a
    /// well-formed allow annotation.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.has_reason && a.rule == rule && a.target_line == line)
    }
}

/// Parse the inside of `allow( ... )`: rule name, then a required
/// `reason = "non-empty"`. The reason string may itself contain
/// parentheses; only the quotes delimit it.
fn parse_allow_body(body: &str) -> (String, bool) {
    let rule_end = body.find([',', ')']).unwrap_or(body.len());
    let rule = body[..rule_end].trim().to_string();
    let has_reason = if body[rule_end..].starts_with(',') {
        let rest = body[rule_end + 1..].trim_start();
        match rest.strip_prefix("reason") {
            Some(tail) => match tail.trim_start().strip_prefix('=') {
                Some(v) => {
                    let v = v.trim_start();
                    // Non-empty double-quoted string.
                    v.strip_prefix('"')
                        .and_then(|q| q.find('"'))
                        .is_some_and(|len| len > 0)
                }
                None => false,
            },
            None => false,
        }
    } else {
        false
    };
    (rule, has_reason)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineClass {
    Blank,
    CommentOnly,
    AttributeOnly,
    Code,
}

/// A function's extent within one file, for rules scoped to specific
/// functions and for the per-function lock analysis.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte range of the body (from `{` to its matching `}`).
    pub body: Range<usize>,
    /// Significant-token index range of the body, inclusive of braces.
    pub body_tokens: Range<usize>,
}

/// Extract every `fn name ... { ... }` span in the file (trait-method
/// declarations without bodies are skipped). Nested functions yield
/// nested spans; [`enclosing_fn`] picks the innermost.
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let sig: Vec<usize> = file.significant().collect();
    let mut out = Vec::new();
    let mut s = 0usize;
    while s < sig.len() {
        if file.is_ident(sig[s], "fn") && s + 1 < sig.len() {
            let name = file.text_of(sig[s + 1]).to_string();
            // Find the body's `{`, skipping the signature. A `;` first
            // means a bodyless declaration.
            let mut t = s + 2;
            let mut angle = 0i32;
            let mut body_open: Option<usize> = None;
            while t < sig.len() {
                match file.text_of(sig[t]) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ";" if angle <= 0 => break,
                    "{" => {
                        body_open = Some(t);
                        break;
                    }
                    _ => {}
                }
                t += 1;
            }
            if let Some(open) = body_open {
                let mut depth = 0i32;
                let mut u = open;
                while u < sig.len() {
                    match file.text_of(sig[u]) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                out.push(FnSpan {
                                    name,
                                    body: file.tokens[sig[open]].start..file.tokens[sig[u]].end,
                                    body_tokens: open..u + 1,
                                });
                                break;
                            }
                        }
                        _ => {}
                    }
                    u += 1;
                }
            }
        }
        s += 1;
    }
    out
}

/// The innermost function span containing `offset`, if any.
pub fn enclosing_fn(spans: &[FnSpan], offset: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|f| f.body.start <= offset && offset < f.body.end)
        .min_by_key(|f| f.body.end - f.body.start)
}

fn is_test_attr(attr: &str) -> bool {
    attr == "#[test]" || attr.starts_with("#[cfg(test") || attr.starts_with("#[cfg(all(test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = sf(src);
        let prod = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        let prod2 = src.find("prod2").unwrap();
        assert!(!f.is_test_code(prod));
        assert!(f.is_test_code(test));
        assert!(!f.is_test_code(prod2));
    }

    #[test]
    fn test_attr_with_more_attrs_between() {
        let src = "#[test]\n#[ignore]\nfn t() { boom.unwrap(); }\nfn p() {}\n";
        let f = sf(src);
        assert!(f.is_test_code(src.find("boom").unwrap()));
        assert!(!f.is_test_code(src.find("fn p").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn ships() { x.unwrap(); }\n";
        let f = sf(src);
        assert!(!f.is_test_code(src.find("x.unwrap").unwrap()));
    }

    #[test]
    fn cfg_test_semicolon_item() {
        let src = "#[cfg(test)]\nmod tests;\nfn p() {}\n";
        let f = sf(src);
        assert!(f.is_test_code(src.find("mod tests").unwrap()));
        assert!(!f.is_test_code(src.find("fn p").unwrap()));
    }

    #[test]
    fn tests_dir_files_are_all_test_code() {
        let f = SourceFile::new(
            PathBuf::from("crates/x/tests/flow.rs"),
            "crates/x/tests/flow.rs".into(),
            "fn anything() { x.unwrap(); }".into(),
        );
        assert!(f.is_test_code(5));
    }

    #[test]
    fn allow_parsing_trailing_and_standalone() {
        let src = "\
let a = x.unwrap(); // analyze: allow(panic_freedom, reason = \"startup only\")\n\
// analyze: allow(lock_order, reason = \"established order: a then b\")\n\
let b = y.lock();\n\
// analyze: allow(panic_freedom)\n\
let c = z.unwrap();\n";
        let f = sf(src);
        assert!(f.is_allowed("panic_freedom", 1));
        assert!(f.is_allowed("lock_order", 3));
        // Missing reason → not a valid suppression.
        assert!(!f.is_allowed("panic_freedom", 5));
        let bad = f.allows.iter().find(|a| !a.has_reason).unwrap();
        assert_eq!(bad.line, 4);
    }

    #[test]
    fn attached_comments_walks_contiguous_block_and_attrs() {
        let src = "\
// Relaxed: counter only.\n\
// Second line.\n\
#[inline]\n\
fn f() {}\n";
        let f = sf(src);
        let c = f.attached_comments(4);
        assert!(c.contains("counter only"));
        assert!(c.contains("Second line"));
        assert!(f.attached_comments(1).contains("counter only"));
    }

    #[test]
    fn unsafe_group_comment_lookup() {
        let src = "\
// SAFETY: the protocol makes this race free.\n\
unsafe impl Send for X {}\n\
unsafe impl Sync for X {}\n";
        let f = sf(src);
        assert!(f.attached_comments_over_unsafe_group(3).contains("SAFETY:"));
        // The plain walk stops at the Send impl.
        assert!(!f.attached_comments(3).contains("SAFETY:"));
    }

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "\
fn outer() {\n\
    let x = 1;\n\
    fn inner() { nested(); }\n\
    done();\n\
}\n\
fn sig_only<T: Fn() -> u8>(f: T) -> u8 { f() }\n\
trait T { fn decl(&self); }\n";
        let f = sf(src);
        let spans = fn_spans(&f);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "sig_only"]);
        let at = src.find("nested").unwrap();
        assert_eq!(enclosing_fn(&spans, at).unwrap().name, "inner");
        let at = src.find("done").unwrap();
        assert_eq!(enclosing_fn(&spans, at).unwrap().name, "outer");
    }
}
