//! The [`Recorder`] sink trait and its disabled-path contract.

use crate::event::Event;

/// A sink for structured [`Event`]s.
///
/// Instrumented subsystems hold an `Option<Arc<dyn Recorder>>` and emit
/// events only through it. The contract has two halves:
///
/// * **Disabled path** (`None` installed): recording is a *no-op before
///   it starts*. Producers must not construct the [`Event`], must not
///   read the clock ([`monotonic_ns`](crate::monotonic_ns)), and must
///   not gather per-event payloads whose only consumer is the recorder.
///   The entire cost of an uninstalled recorder is one branch on the
///   `Option` — this is what makes it safe to leave instrumentation in
///   hot paths like the batcher's flush loop, and what the
///   `serve_bench` overhead floor (instrumented within 5% of
///   recorder-disabled) is measured against.
/// * **Enabled path**: [`record`](Recorder::record) must be cheap,
///   non-blocking, and safe to call from any thread concurrently. It
///   must never panic and never block the caller on a slow consumer —
///   sinks with bounded storage (like [`EventRing`](crate::EventRing))
///   drop and count rather than wait.
///
/// The canonical producer shape:
///
/// ```
/// use ambipla_obs::{Event, EventKind, Recorder};
/// use std::sync::Arc;
///
/// fn on_queue_full(recorder: &Option<Arc<dyn Recorder>>, slot: u32) {
///     // Event construction and timestamping happen inside the branch:
///     // with no recorder installed this is a single `is_some` check.
///     if let Some(r) = recorder {
///         r.record(Event::now(EventKind::QueueFull { slot }));
///     }
/// }
///
/// on_queue_full(&None, 7); // no clock read, no event built
/// ```
pub trait Recorder: Send + Sync {
    /// Deliver one event to the sink. Must be non-blocking and
    /// panic-free; bounded sinks drop (and account for) events rather
    /// than stall the producer.
    fn record(&self, event: Event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Counting(AtomicU64);
    impl Recorder for Counting {
        fn record(&self, _event: Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn custom_sinks_receive_events_through_dyn_dispatch() {
        let sink = Arc::new(Counting(AtomicU64::new(0)));
        let recorder: Arc<dyn Recorder> = Arc::clone(&sink) as _;
        recorder.record(Event::now(EventKind::Register { slot: 0 }));
        recorder.record(Event::now(EventKind::QueueFull { slot: 0 }));
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }
}
