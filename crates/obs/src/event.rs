//! Structured event vocabulary and monotonic timestamps.
//!
//! Events are small `Copy` records — fixed-size by construction so the
//! [`EventRing`](crate::EventRing) can store them inline without
//! allocation. The vocabulary covers the serve layer's state transitions
//! (registrations, epoch-bumping hot swaps, block flushes with their
//! cache hit/miss burst, backpressure rejections, truth-table tier
//! promotions) and the net front
//! end's connection lifecycle (accepts, disconnects, tenant quota
//! rejections); producers stamp each
//! event with [`monotonic_ns`] **at the record site**, and only when a
//! recorder is actually installed (see [`Recorder`](crate::Recorder) for
//! the disabled-path contract).

use std::sync::OnceLock;
use std::time::Instant;

/// Why a block left a pending queue. Shared vocabulary between the
/// `ambipla_serve` batcher (its stats counters and flush path) and the
/// event layer, defined here so both sides agree on one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// All `block_words × 64` lanes filled.
    Full,
    /// The oldest queued request hit the configured `max_wait`.
    Deadline,
    /// A hot swap drained the queue under the outgoing epoch before
    /// installing the new backend.
    Swap,
    /// Service shutdown drained the queue.
    Shutdown,
}

impl FlushCause {
    /// Stable lowercase label (Prometheus `cause` label value).
    pub const fn label(self) -> &'static str {
        match self {
            FlushCause::Full => "full",
            FlushCause::Deadline => "deadline",
            FlushCause::Swap => "swap",
            FlushCause::Shutdown => "shutdown",
        }
    }
}

/// Nanoseconds since the process's first call into the observability
/// layer — a monotonic, strictly non-decreasing clock shared by every
/// producer thread, cheap enough to stamp on each recorded event.
pub fn monotonic_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One structured telemetry event: what happened ([`EventKind`]) and when
/// ([`monotonic_ns`] at the record site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic timestamp ([`monotonic_ns`]) taken when the event was
    /// recorded.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Stamp `kind` with the current [`monotonic_ns`].
    pub fn now(kind: EventKind) -> Event {
        Event {
            ts_ns: monotonic_ns(),
            kind,
        }
    }
}

/// The event vocabulary. Every variant is scalar-only so [`Event`] stays
/// `Copy` and ring slots need no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A backend was registered into `slot` (epoch 0 begins).
    Register {
        /// Registration slot index (`SimId` slot in the serve layer).
        slot: u32,
    },
    /// A hot swap completed on `slot`: the backend serving `from_epoch`
    /// was replaced and `to_epoch` (`from_epoch + 1`) began.
    Swap {
        /// Registration slot index.
        slot: u32,
        /// The superseded epoch.
        from_epoch: u64,
        /// The newly installed epoch.
        to_epoch: u64,
        /// Lanes the drain flush answered under the outgoing epoch (0 if
        /// the queue was empty when the swap landed).
        drained_lanes: u32,
    },
    /// A block flush on `slot` under `epoch`, with its cache hit/miss
    /// burst (per 64-lane sub-block lookups of this one flush).
    Flush {
        /// Registration slot index.
        slot: u32,
        /// Epoch whose backend evaluated the block.
        epoch: u64,
        /// Why the block flushed.
        cause: FlushCause,
        /// Occupied lanes.
        lanes: u32,
        /// Lane words the flush evaluated.
        words: u32,
        /// Queue latency (first enqueue → flush) in ns.
        latency_ns: u64,
        /// Sub-block cache hits of this flush.
        cache_hits: u32,
        /// Sub-block cache misses of this flush.
        cache_misses: u32,
    },
    /// A bounded submission was rejected by backpressure.
    QueueFull {
        /// Registration slot index.
        slot: u32,
    },
    /// A registration was promoted to the materialized tier: its backend
    /// was swept exhaustively into a packed truth table, and every
    /// subsequent flush under `epoch` answers by indexed load (serve
    /// layer's auto-tiering, or a forced-tier configuration).
    TierPromote {
        /// Registration slot index.
        slot: u32,
        /// Epoch whose backend was materialized (a hot swap drops the
        /// table and re-materializes under the new epoch).
        epoch: u64,
        /// The backend's input count (`2^inputs` assignments were swept).
        inputs: u32,
        /// Wall-clock cost of the exhaustive sweep in ns.
        build_ns: u64,
    },
    /// A network connection completed its hello handshake and was
    /// admitted (net layer).
    Accept {
        /// Authenticated tenant id (raw `TenantId`).
        tenant: u64,
        /// Connection slot index assigned by the listener.
        slot: u32,
    },
    /// A network connection closed — peer hangup, protocol violation or
    /// server shutdown (net layer).
    Disconnect {
        /// Authenticated tenant id (raw `TenantId`).
        tenant: u64,
        /// Connection slot index the listener had assigned.
        slot: u32,
    },
    /// A request was rejected by its tenant's token-bucket quota before
    /// reaching the batcher (net layer).
    QuotaReject {
        /// Tenant whose bucket was empty.
        tenant: u64,
        /// Target registration slot of the rejected request.
        slot: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_never_decreases() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn events_are_stamped_in_order() {
        let a = Event::now(EventKind::Register { slot: 0 });
        let b = Event::now(EventKind::QueueFull { slot: 0 });
        assert!(b.ts_ns >= a.ts_ns);
    }

    #[test]
    fn flush_cause_labels_are_stable() {
        assert_eq!(FlushCause::Full.label(), "full");
        assert_eq!(FlushCause::Deadline.label(), "deadline");
        assert_eq!(FlushCause::Swap.label(), "swap");
        assert_eq!(FlushCause::Shutdown.label(), "shutdown");
    }
}
