//! Bounded lock-free event ring.
//!
//! [`EventRing`] is a fixed-capacity multi-producer/multi-consumer queue
//! in the style of Dmitry Vyukov's bounded MPMC queue: each slot carries
//! a sequence number that encodes whether it is free for the producer or
//! ready for the consumer at the current lap, so both `push` and `pop`
//! are a single CAS on the respective cursor plus one release store —
//! no locks, no allocation after construction. A full ring never blocks
//! a producer: the event is discarded and counted in
//! [`EventRing::dropped`], which is what lets consumers assert "no
//! events lost below capacity".

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::Event;
use crate::recorder::Recorder;

struct Slot {
    /// Vyukov sequence: `index` when free for the producer of lap
    /// `index / cap`, `index + 1` once the event is published.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Event>>,
}

/// Fixed-capacity lock-free event queue with drop-on-full semantics.
///
/// Producers never block and never allocate: when the ring is full the
/// event is discarded and [`dropped`](EventRing::dropped) is
/// incremented. Capacity is rounded up to the next power of two.
///
/// ```
/// use ambipla_obs::{Event, EventKind, EventRing};
///
/// let ring = EventRing::with_capacity(8);
/// for slot in 0..3 {
///     ring.push(Event::now(EventKind::Register { slot }));
/// }
/// assert_eq!(ring.drain().len(), 3);
/// assert_eq!(ring.dropped(), 0);
/// ```
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slots are only written by the producer that won the tail CAS
// for that sequence value and only read by the consumer that won the
// head CAS after the matching release store of `seq`; the sequence
// protocol makes the accesses data-race free.
unsafe impl Send for EventRing {}
// SAFETY: same argument as `Send` above — shared references only reach
// slot memory through the CAS-guarded sequence protocol.
unsafe impl Sync for EventRing {}

impl EventRing {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count (the power of two `with_capacity` rounded up to).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueue `event`. Returns `true` if stored, `false` if the ring was
    /// full (the event is discarded and counted in [`dropped`](Self::dropped)).
    pub fn push(&self, event: Event) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free at this lap: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` gives this
                        // thread exclusive write access to the slot until
                        // the release store below publishes it.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.pushed.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if (seq as isize).wrapping_sub(pos as isize) < 0 {
                // Slot still holds an unconsumed event from the previous
                // lap: the ring is full. Drop, never block.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer advanced past us; reload and retry.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                // Slot published at this lap: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` gives this
                        // thread exclusive read access; the acquire load
                        // of `seq` ordered the producer's write before us.
                        let event = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(cur) => pos = cur,
                }
            } else if (seq as isize).wrapping_sub(expected as isize) < 0 {
                // Slot not yet published: ring is empty.
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every currently queued event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }

    /// Total events successfully enqueued over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Total events discarded because the ring was full. Zero here means
    /// the event log is complete: every recorded event was (or still can
    /// be) observed by a consumer.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Recorder for EventRing {
    fn record(&self, event: Event) {
        self.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(slot: u32) -> Event {
        Event::now(EventKind::Register { slot })
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(1).capacity(), 2);
        assert_eq!(EventRing::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn fifo_below_capacity_loses_nothing() {
        let ring = EventRing::with_capacity(16);
        for i in 0..16 {
            assert!(ring.push(ev(i)));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 16);
        for (i, event) in drained.iter().enumerate() {
            assert_eq!(event.kind, EventKind::Register { slot: i as u32 });
        }
        assert_eq!(ring.pushed(), 16);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = EventRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)));
        assert!(!ring.push(ev(100)));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.pushed(), 4);
        // The original four survive untouched.
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].kind, EventKind::Register { slot: 0 });
        assert_eq!(drained[3].kind, EventKind::Register { slot: 3 });
    }

    #[test]
    fn ring_reuses_slots_across_laps() {
        let ring = EventRing::with_capacity(4);
        for lap in 0..10u32 {
            for i in 0..4 {
                assert!(ring.push(ev(lap * 4 + i)));
            }
            let drained = ring.drain();
            assert_eq!(drained.len(), 4);
            assert_eq!(
                drained[0].kind,
                EventKind::Register { slot: lap * 4 },
                "lap {lap}"
            );
        }
        assert_eq!(ring.pushed(), 40);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_account_for_every_event() {
        let ring = Arc::new(EventRing::with_capacity(128));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        ring.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        // Concurrent consumer drains while producers run.
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match ring.pop() {
                        Some(event) => seen.push(event),
                        None if seen.len() as u64 + ring.dropped() >= 4000 => break,
                        None => std::thread::yield_now(),
                    }
                }
                seen
            })
        };
        for t in threads {
            t.join().unwrap();
        }
        let seen = consumer.join().unwrap();
        // Every push either landed (and was drained) or was counted dropped.
        assert_eq!(seen.len() as u64 + ring.dropped(), 4000);
        assert_eq!(ring.pushed(), seen.len() as u64);
        // Per-producer order is preserved.
        let mut last = [None::<u32>; 4];
        for event in &seen {
            let EventKind::Register { slot } = event.kind else {
                panic!("unexpected event kind");
            };
            let t = (slot / 1000) as usize;
            if let Some(prev) = last[t] {
                assert!(slot > prev, "producer {t} order violated");
            }
            last[t] = Some(slot);
        }
    }
}
