//! # ambipla_obs — the observability layer
//!
//! The serving and synthesis subsystems emit structured telemetry through
//! this crate: a fixed-capacity lock-free event ring for high-frequency
//! structured events, the [`Recorder`] trait that keeps recording a no-op
//! unless a sink is installed, and text renderers (Prometheus exposition
//! format and JSON) for metric snapshots. Everything is hand-rolled on
//! `std` — the offline build environment has no `tracing`, `prometheus`
//! or `serde` crates — and nothing here depends on any other workspace
//! crate, so every layer (logic, fpga, serve, bench) can emit into it.
//!
//! * [`event`] — the [`Event`] / [`EventKind`] vocabulary (flush, swap,
//!   queue-full, registration) with monotonic [`monotonic_ns`] timestamps,
//! * [`ring`] — the [`EventRing`], a bounded lock-free multi-producer
//!   queue of events with loss accounting ([`EventRing::dropped`]),
//! * [`recorder`] — the [`Recorder`] trait and its disabled-path
//!   contract (see the trait docs: producers skip event construction
//!   entirely when no recorder is installed),
//! * [`export`] — [`MetricFamily`] / [`Sample`] plus
//!   [`prometheus_text`] and [`json_text`] renderers with full label and
//!   string escaping.
//!
//! ## Quickstart
//!
//! ```
//! use ambipla_obs::{Event, EventKind, EventRing, FlushCause, Recorder};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(EventRing::with_capacity(1024));
//! let sink: Arc<dyn Recorder> = Arc::clone(&ring) as _;
//! sink.record(Event::now(EventKind::QueueFull { slot: 3 }));
//! let drained = ring.drain();
//! assert!(matches!(drained[0].kind, EventKind::QueueFull { slot: 3 }));
//! assert_eq!(ring.dropped(), 0);
//! ```

// Every `unsafe` in this crate (the ring's slot protocol) must carry a
// written SAFETY argument; `ambipla-analyze` enforces the same rule
// workspace-wide, clippy backs it up at compile time here.
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod event;
pub mod export;
pub mod recorder;
pub mod ring;

pub use event::{monotonic_ns, Event, EventKind, FlushCause};
pub use export::{json_text, prometheus_text, MetricFamily, MetricKind, Sample};
pub use recorder::Recorder;
pub use ring::EventRing;
